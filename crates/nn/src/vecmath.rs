//! Flat-vector kernels for the model-agnostic learning frameworks.
//!
//! Domain Negotiation, Domain Regularization, PCGrad and the meta-learning
//! baselines all manipulate whole-model parameter vectors. These are the
//! only operations they need.

/// `y += alpha * x`.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Inner product `<a, b>`, accumulated in f64 for stability.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f32]) -> f64 {
    dot(a, a).sqrt()
}

/// `out = a - b` into a fresh vector.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// `out = a + b` into a fresh vector.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Scales in place.
pub fn scale(a: &mut [f32], s: f32) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Linear interpolation toward a target: `theta += beta * (target - theta)`.
///
/// This is the Reptile-style outer update used by Domain Negotiation
/// (paper Eq. 3) and Domain Regularization (paper Eq. 8).
pub fn lerp_toward(theta: &mut [f32], target: &[f32], beta: f32) {
    debug_assert_eq!(theta.len(), target.len());
    for (t, &g) in theta.iter_mut().zip(target) {
        *t += beta * (g - *t);
    }
}

/// Cosine similarity between two vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Projects `g` onto the normal plane of `other` when they conflict
/// (inner product < 0), as in PCGrad: `g -= (<g,o>/<o,o>) * o`.
///
/// No-op when the gradients agree or `other` is zero.
pub fn project_conflict(g: &mut [f32], other: &[f32]) {
    let ip = dot(g, other);
    if ip >= 0.0 {
        return;
    }
    let denom = dot(other, other);
    if denom == 0.0 {
        return;
    }
    let coeff = (ip / denom) as f32;
    for (gi, &oi) in g.iter_mut().zip(other) {
        *gi -= coeff * oi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_dot_norm() {
        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 2.0, &[3.0, 4.0]);
        assert_eq!(y, vec![7.0, 10.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_toward_endpoints() {
        let mut theta = vec![0.0, 10.0];
        let target = vec![10.0, 0.0];
        let mut half = theta.clone();
        lerp_toward(&mut half, &target, 0.5);
        assert_eq!(half, vec![5.0, 5.0]);
        // beta = 1 lands exactly on the target (DN degrades to Alternate).
        lerp_toward(&mut theta, &target, 1.0);
        assert_eq!(theta, target);
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn project_conflict_removes_negative_component() {
        // Anti-parallel becomes zero.
        let mut g = vec![-1.0, 0.0];
        project_conflict(&mut g, &[2.0, 0.0]);
        assert!(norm(&g) < 1e-9);
        // Conflicting gradients become orthogonal.
        let mut g = vec![1.0, -1.0];
        let o = vec![0.0, 2.0];
        project_conflict(&mut g, &o);
        assert!(dot(&g, &o).abs() < 1e-9);
        assert_eq!(g[0], 1.0);
        // Agreeing gradients untouched.
        let mut g = vec![1.0, 1.0];
        project_conflict(&mut g, &[1.0, 0.0]);
        assert_eq!(g, vec![1.0, 1.0]);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        let mut v = vec![2.0, -4.0];
        scale(&mut v, 0.5);
        assert_eq!(v, vec![1.0, -2.0]);
    }
}
