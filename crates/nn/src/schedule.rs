//! Learning-rate schedules.
//!
//! The paper's industry deployment uses "a dynamical learning rate ranging
//! from 0.1 to 1" for the outer loop (§V-C); these schedules provide that
//! and the common alternatives. A schedule is a pure function of the epoch
//! index — callers apply it with [`Optimizer::set_learning_rate`] at epoch
//! boundaries.

use crate::optim::Optimizer;

/// A learning-rate schedule: maps an epoch index to a rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f32),
    /// Multiply by `factor` every `every` epochs: `lr · factor^(epoch/every)`.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Decay multiplier per step (0 < factor ≤ 1).
        factor: f32,
        /// Epochs between decays (≥ 1).
        every: usize,
    },
    /// Cosine annealing from `max_lr` down to `min_lr` over `total` epochs.
    Cosine {
        /// Peak rate (epoch 0).
        max_lr: f32,
        /// Floor rate (epoch ≥ total).
        min_lr: f32,
        /// Annealing horizon in epochs (≥ 1).
        total: usize,
    },
    /// Linear warmup from `start_lr` to `peak_lr` over `warmup` epochs, then
    /// constant — the "0.1 to 1" ramp of the industry configuration.
    Warmup {
        /// Rate at epoch 0.
        start_lr: f32,
        /// Rate reached after `warmup` epochs.
        peak_lr: f32,
        /// Ramp length in epochs (≥ 1).
        warmup: usize,
    },
}

impl LrSchedule {
    /// The rate at `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { lr, factor, every } => {
                let steps = epoch / every.max(1);
                lr * factor.powi(steps as i32)
            }
            LrSchedule::Cosine { max_lr, min_lr, total } => {
                let t = (epoch as f32 / total.max(1) as f32).min(1.0);
                min_lr + 0.5 * (max_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup { start_lr, peak_lr, warmup } => {
                if epoch >= warmup {
                    peak_lr
                } else {
                    start_lr + (peak_lr - start_lr) * epoch as f32 / warmup.max(1) as f32
                }
            }
        }
    }

    /// Applies the epoch's rate to an optimizer.
    pub fn apply(&self, epoch: usize, opt: &mut dyn Optimizer) {
        opt.set_learning_rate(self.at(epoch));
    }
}

/// Clips a gradient vector to a maximum L2 norm, in place; returns the
/// pre-clip norm. Standard protection for the embedding-heavy models when
/// a sparse domain produces an outlier batch.
pub fn clip_grad_norm(grad: &mut [f32], max_norm: f32) -> f64 {
    let norm = crate::vecmath::norm(grad);
    if norm > max_norm as f64 && norm > 0.0 {
        let scale = (max_norm as f64 / norm) as f32;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(100), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { lr: 0.8, factor: 0.5, every: 3 };
        assert_eq!(s.at(0), 0.8);
        assert_eq!(s.at(2), 0.8);
        assert_eq!(s.at(3), 0.4);
        assert_eq!(s.at(6), 0.2);
    }

    #[test]
    fn cosine_hits_endpoints_and_is_monotone() {
        let s = LrSchedule::Cosine { max_lr: 1.0, min_lr: 0.1, total: 10 };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(10) - 0.1).abs() < 1e-6);
        assert!((s.at(25) - 0.1).abs() < 1e-6, "clamped past the horizon");
        for e in 0..10 {
            assert!(s.at(e) >= s.at(e + 1) - 1e-6, "not monotone at {}", e);
        }
    }

    #[test]
    fn warmup_ramps_then_holds() {
        // The industry "0.1 to 1" outer-loop ramp.
        let s = LrSchedule::Warmup { start_lr: 0.1, peak_lr: 1.0, warmup: 5 };
        assert_eq!(s.at(0), 0.1);
        assert!((s.at(5) - 1.0).abs() < 1e-6);
        assert_eq!(s.at(50), 1.0);
        assert!(s.at(2) > s.at(1));
    }

    #[test]
    fn apply_updates_optimizer() {
        let mut opt = Sgd::new(0.5, 0.0, 1);
        LrSchedule::Constant(0.125).apply(3, &mut opt);
        assert_eq!(opt.learning_rate(), 0.125);
    }

    #[test]
    fn clip_grad_norm_behaviour() {
        let mut g = vec![3.0, 4.0]; // norm 5
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-9);
        assert!((crate::vecmath::norm(&g) - 1.0).abs() < 1e-6);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6, "direction preserved");
        // under the cap: untouched
        let mut g = vec![0.3, 0.4];
        clip_grad_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }
}
