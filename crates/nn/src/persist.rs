//! Model persistence: binary save/load of a [`ParamStore`]'s values.
//!
//! The trained artifact of every framework is a flat parameter vector (or
//! one per domain); serving needs those to survive the training process.
//! The format stores shapes alongside values so loading validates that the
//! checkpoint matches the model that reads it.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "MAMDRNN1"
//! u32 n_tensors
//! n_tensors × ( u16 name_len, name bytes (utf-8),
//!               u8 rank, rank × u32 dims,
//!               numel × f32 )
//! ```

use crate::store::ParamStore;
use std::io::{Read, Write};

/// The shared FNV-1a digest (re-exported from `mamdr-util`, the one home of
/// the workspace's binary-format primitives).
pub use mamdr_util::Checksum;

const MAGIC: &[u8; 8] = b"MAMDRNN1";

/// Writes a little-endian f32 section (values only, caller frames lengths).
///
/// Thin wrapper over [`mamdr_util::write_f32_section`] that keeps this
/// module's historical `PersistError` signature.
pub fn write_f32_section(w: impl Write, values: &[f32]) -> Result<(), PersistError> {
    Ok(mamdr_util::write_f32_section(w, values)?)
}

/// Reads `n` little-endian f32 values written by [`write_f32_section`].
pub fn read_f32_section(r: impl Read, n: usize) -> Result<Vec<f32>, PersistError> {
    Ok(mamdr_util::read_f32_section(r, n)?)
}

/// A persistence error.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a valid snapshot, or does not match the store.
    Mismatch(String),
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Mismatch(m) => write!(f, "snapshot mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Writes every parameter tensor (names, shapes, values).
pub fn save_params(store: &ParamStore, mut w: impl Write) -> Result<(), PersistError> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.n_tensors() as u32).to_le_bytes())?;
    for (_, spec, tensor) in store.iter() {
        let name = spec.name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(PersistError::Mismatch(format!("name too long: {}", spec.name)));
        }
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
        let dims = tensor.shape();
        if dims.len() > u8::MAX as usize {
            return Err(PersistError::Mismatch("rank too large".into()));
        }
        w.write_all(&[dims.len() as u8])?;
        for &d in dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        write_f32_section(&mut w, tensor.data())?;
    }
    Ok(())
}

/// Loads a snapshot into an existing store.
///
/// The store must have been built from the same model (same tensor names,
/// order and shapes); any divergence is an error, never a silent partial
/// load.
pub fn load_params(store: &mut ParamStore, mut r: impl Read) -> Result<(), PersistError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::Mismatch("bad magic".into()));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4) as usize;
    if n != store.n_tensors() {
        return Err(PersistError::Mismatch(format!(
            "snapshot has {} tensors, store has {}",
            n,
            store.n_tensors()
        )));
    }
    for idx in 0..n {
        let mut b2 = [0u8; 2];
        r.read_exact(&mut b2)?;
        let name_len = u16::from_le_bytes(b2) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| PersistError::Mismatch("non-utf8 name".into()))?;
        let expected = &store.spec(idx).name;
        if &name != expected {
            return Err(PersistError::Mismatch(format!(
                "tensor {idx}: snapshot has {name:?}, store expects {expected:?}"
            )));
        }
        let mut b1 = [0u8; 1];
        r.read_exact(&mut b1)?;
        let rank = b1[0] as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut b4)?;
            dims.push(u32::from_le_bytes(b4) as usize);
        }
        if dims != store.spec(idx).shape {
            return Err(PersistError::Mismatch(format!(
                "tensor {name}: snapshot shape {:?} vs store {:?}",
                dims,
                store.spec(idx).shape
            )));
        }
        let numel: usize = dims.iter().product::<usize>().max(1);
        let numel = if dims.is_empty() { 1 } else { numel };
        let values = read_f32_section(&mut r, numel)?;
        store.get_mut(idx).data_mut().copy_from_slice(&values);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ParamStoreBuilder;
    use mamdr_tensor::init::Init;
    use mamdr_tensor::rng::seeded;

    fn store(seed: u64) -> ParamStore {
        let mut b = ParamStoreBuilder::new();
        b.register("layer/w", &[3, 4], Init::XavierNormal);
        b.register("layer/b", &[4], Init::Zeros);
        b.register("emb", &[5, 2], Init::Normal(0.01));
        b.build(&mut seeded(seed))
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = store(2); // different init values, same layout
        assert_ne!(dst.to_flat(), src.to_flat());
        load_params(&mut dst, buf.as_slice()).unwrap();
        assert_eq!(dst.to_flat(), src.to_flat());
    }

    #[test]
    fn rejects_layout_mismatch() {
        let src = store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // A store with a different tensor name must refuse the snapshot.
        let mut b = ParamStoreBuilder::new();
        b.register("layer/w", &[3, 4], Init::Zeros);
        b.register("layer/bias", &[4], Init::Zeros);
        b.register("emb", &[5, 2], Init::Zeros);
        let mut other = b.build(&mut seeded(3));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)), "{err}");
        // A store with a different shape must refuse too.
        let mut b = ParamStoreBuilder::new();
        b.register("layer/w", &[4, 3], Init::Zeros);
        b.register("layer/b", &[4], Init::Zeros);
        b.register("emb", &[5, 2], Init::Zeros);
        let mut other = b.build(&mut seeded(3));
        assert!(load_params(&mut other, buf.as_slice()).is_err());
    }

    #[test]
    fn checksum_is_order_sensitive_and_incremental() {
        // Known FNV-1a 64 vector: empty input hashes to the offset basis.
        assert_eq!(Checksum::of(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(Checksum::of(b"ab"), Checksum::of(b"ba"));
        let mut inc = Checksum::new();
        inc.update(b"hel");
        inc.update(b"lo");
        assert_eq!(inc.digest(), Checksum::of(b"hello"));
    }

    #[test]
    fn f32_section_roundtrip_is_exact() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0];
        let mut buf = Vec::new();
        write_f32_section(&mut buf, &values).unwrap();
        assert_eq!(buf.len(), 4 * values.len());
        let back = read_f32_section(buf.as_slice(), values.len()).unwrap();
        // Bit-exact, including the negative-zero sign.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&values));
        assert!(read_f32_section(buf.as_slice(), values.len() + 1).is_err());
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        let src = store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut dst = store(2);
        assert!(load_params(&mut dst, buf.as_slice()).is_err());
        assert!(load_params(&mut dst, &b"JUNKJUNK"[..]).is_err());
    }
}
