//! Named parameter storage with flat-vector views.

use mamdr_tensor::init::Init;
use mamdr_tensor::{pool, Tensor};
use rand::Rng;
use std::collections::HashMap;

/// Minimum scalars per worker chunk when copying between tensor and flat
/// storage; copies below this stay serial (dispatch would beat memcpy).
const FLAT_COPY_GRAIN: usize = 1 << 16;

/// Metadata for one parameter tensor.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Human-readable name (unique within a store), e.g. `"layer0/w"`.
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Initialization scheme used by [`ParamStoreBuilder::build`].
    pub init: Init,
}

/// Builder collecting parameter registrations before materialization.
///
/// Layers register their parameters here during model construction; the
/// returned indices are stable and used at forward time to fetch tensors.
#[derive(Default)]
pub struct ParamStoreBuilder {
    specs: Vec<ParamSpec>,
}

impl ParamStoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its index.
    ///
    /// Panics if `name` is already registered — duplicate names almost
    /// always indicate a miswired model.
    pub fn register(&mut self, name: impl Into<String>, shape: &[usize], init: Init) -> usize {
        let name = name.into();
        assert!(!self.specs.iter().any(|s| s.name == name), "duplicate parameter name {:?}", name);
        self.specs.push(ParamSpec { name, shape: shape.to_vec(), init });
        self.specs.len() - 1
    }

    /// Materializes every registered parameter using the supplied RNG.
    pub fn build(self, rng: &mut impl Rng) -> ParamStore {
        let tensors: Vec<Tensor> = self.specs.iter().map(|s| s.init.build(rng, &s.shape)).collect();
        ParamStore::from_parts(self.specs, tensors)
    }
}

/// A model's complete parameter set: named tensors plus a flat view.
///
/// The flat view concatenates every tensor's storage in registration order,
/// which is what the model-agnostic learning frameworks operate on.
#[derive(Clone)]
pub struct ParamStore {
    specs: Vec<ParamSpec>,
    tensors: Vec<Tensor>,
    offsets: Vec<usize>,
    total: usize,
    by_name: HashMap<String, usize>,
}

impl ParamStore {
    fn from_parts(specs: Vec<ParamSpec>, tensors: Vec<Tensor>) -> Self {
        let mut offsets = Vec::with_capacity(specs.len());
        let mut total = 0usize;
        for t in &tensors {
            offsets.push(total);
            total += t.numel();
        }
        let by_name = specs.iter().enumerate().map(|(i, s)| (s.name.clone(), i)).collect();
        ParamStore { specs, tensors, offsets, total, by_name }
    }

    /// Number of parameter tensors.
    pub fn n_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Total number of scalar parameters.
    pub fn n_scalars(&self) -> usize {
        self.total
    }

    /// The tensor at `idx`.
    pub fn get(&self, idx: usize) -> &Tensor {
        &self.tensors[idx]
    }

    /// Mutable access to the tensor at `idx`.
    pub fn get_mut(&mut self, idx: usize) -> &mut Tensor {
        &mut self.tensors[idx]
    }

    /// The spec of the tensor at `idx`.
    pub fn spec(&self, idx: usize) -> &ParamSpec {
        &self.specs[idx]
    }

    /// Looks a parameter up by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Flat offset of tensor `idx` within the flat vector.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// The length of the flat view ([`ParamStore::to_flat`] /
    /// [`ParamStore::write_flat`]); an alias of [`ParamStore::n_scalars`]
    /// named for the buffer-reuse API.
    pub fn flat_len(&self) -> usize {
        self.total
    }

    /// Copies every tensor into one contiguous vector (registration order).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut flat = vec![0.0f32; self.total];
        self.write_flat(&mut flat);
        flat
    }

    /// Writes every tensor into a caller-owned flat buffer (registration
    /// order), letting hot loops reuse one allocation across steps.
    ///
    /// Large stores split the copy across the kernel worker pool; each flat
    /// element is written by exactly one worker, so the result never depends
    /// on the thread count.
    pub fn write_flat(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.total, "flat vector length mismatch");
        pool::for_each_row_block(out, 1, FLAT_COPY_GRAIN, |range, block| {
            let mut ti = self.offsets.partition_point(|&o| o <= range.start).saturating_sub(1);
            let mut pos = range.start;
            while pos < range.end {
                let off = self.offsets[ti];
                let t = &self.tensors[ti];
                let tend = off + t.numel();
                if tend > pos {
                    let end = tend.min(range.end);
                    block[pos - range.start..end - range.start]
                        .copy_from_slice(&t.data()[pos - off..end - off]);
                    pos = end;
                }
                ti += 1;
            }
        });
    }

    /// Overwrites every tensor from a flat vector produced by
    /// [`ParamStore::to_flat`] / [`ParamStore::write_flat`].
    ///
    /// Large stores split the copy across the kernel worker pool (see
    /// [`ParamStore::write_flat`] for the determinism argument).
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.total, "flat vector length mismatch");
        // Raw views of each tensor's storage: `(ptr, len, offset)`. The
        // ranges are disjoint, so concurrent chunk writes never alias.
        let parts: Vec<(pool::SendMutPtr<f32>, usize, usize)> = self
            .tensors
            .iter_mut()
            .zip(&self.offsets)
            .map(|(t, &off)| {
                let d = t.data_mut();
                (pool::SendMutPtr(d.as_mut_ptr()), d.len(), off)
            })
            .collect();
        pool::for_each_chunk(self.total, FLAT_COPY_GRAIN, |range| {
            let mut ti = parts.partition_point(|p| p.2 <= range.start).saturating_sub(1);
            let mut pos = range.start;
            while pos < range.end {
                let (ref ptr, len, off) = parts[ti];
                let tend = off + len;
                if tend > pos {
                    let end = tend.min(range.end);
                    // SAFETY: chunk ranges are disjoint and `parts` outlives
                    // the dispatch (`for_each_chunk` blocks until done).
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(ptr.get().add(pos - off), end - pos)
                    };
                    dst.copy_from_slice(&flat[pos..end]);
                    pos = end;
                }
                ti += 1;
            }
        });
    }

    /// Converts a sparse per-tensor gradient map (as returned by
    /// `Tape::backward`) into a dense flat gradient vector; untouched
    /// parameters contribute zeros.
    pub fn grads_to_flat(&self, grads: &HashMap<usize, Tensor>) -> Vec<f32> {
        let mut flat = vec![0.0f32; self.total];
        self.grads_write_flat(grads, &mut flat);
        flat
    }

    /// Like [`ParamStore::grads_to_flat`] but scattering into a caller-owned
    /// buffer (cleared first), so per-step training loops stop allocating.
    pub fn grads_write_flat(&self, grads: &HashMap<usize, Tensor>, out: &mut [f32]) {
        assert_eq!(out.len(), self.total, "flat vector length mismatch");
        out.fill(0.0);
        for (&idx, g) in grads {
            let off = self.offsets[idx];
            let n = g.numel();
            assert_eq!(
                n,
                self.tensors[idx].numel(),
                "gradient shape mismatch for param {} ({})",
                idx,
                self.specs[idx].name
            );
            out[off..off + n].copy_from_slice(g.data());
        }
    }

    /// A zero vector with the flat length of this store.
    pub fn zeros_flat(&self) -> Vec<f32> {
        vec![0.0f32; self.total]
    }

    /// Iterates over `(index, spec, tensor)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ParamSpec, &Tensor)> {
        self.specs.iter().zip(&self.tensors).enumerate().map(|(i, (s, t))| (i, s, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_tensor::rng::seeded;

    fn sample_store() -> ParamStore {
        let mut b = ParamStoreBuilder::new();
        b.register("w1", &[2, 3], Init::Constant(1.0));
        b.register("b1", &[3], Init::Zeros);
        b.register("emb", &[4, 2], Init::Constant(2.0));
        b.build(&mut seeded(0))
    }

    #[test]
    fn registration_and_lookup() {
        let s = sample_store();
        assert_eq!(s.n_tensors(), 3);
        assert_eq!(s.n_scalars(), 6 + 3 + 8);
        assert_eq!(s.index_of("b1"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.spec(0).shape, vec![2, 3]);
        assert_eq!(s.offset(1), 6);
        assert_eq!(s.offset(2), 9);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut b = ParamStoreBuilder::new();
        b.register("w", &[1], Init::Zeros);
        b.register("w", &[1], Init::Zeros);
    }

    #[test]
    fn flat_roundtrip() {
        let mut s = sample_store();
        let flat = s.to_flat();
        assert_eq!(flat.len(), s.n_scalars());
        assert_eq!(&flat[0..6], &[1.0; 6]);
        assert_eq!(&flat[6..9], &[0.0; 3]);
        let modified: Vec<f32> = flat.iter().map(|x| x + 0.5).collect();
        s.load_flat(&modified);
        assert_eq!(s.get(1).data(), &[0.5, 0.5, 0.5]);
        assert_eq!(s.to_flat(), modified);
    }

    #[test]
    fn grads_to_flat_fills_zeros_for_untouched() {
        let s = sample_store();
        let mut grads = HashMap::new();
        grads.insert(1usize, Tensor::from_vec([3], vec![1., 2., 3.]));
        let flat = s.grads_to_flat(&grads);
        assert_eq!(&flat[0..6], &[0.0; 6]);
        assert_eq!(&flat[6..9], &[1., 2., 3.]);
        assert_eq!(&flat[9..], &[0.0; 8]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_flat_rejects_wrong_length() {
        let mut s = sample_store();
        s.load_flat(&[0.0; 3]);
    }

    #[test]
    fn write_flat_matches_to_flat_and_reuses_buffer() {
        let s = sample_store();
        assert_eq!(s.flat_len(), s.n_scalars());
        let mut buf = vec![42.0f32; s.flat_len()];
        s.write_flat(&mut buf);
        assert_eq!(buf, s.to_flat());
    }

    #[test]
    fn grads_write_flat_clears_previous_contents() {
        let s = sample_store();
        let mut buf = vec![99.0f32; s.flat_len()];
        let mut grads = HashMap::new();
        grads.insert(1usize, Tensor::from_vec([3], vec![1., 2., 3.]));
        s.grads_write_flat(&grads, &mut buf);
        assert_eq!(buf, s.grads_to_flat(&grads));
        assert_eq!(&buf[0..6], &[0.0; 6], "stale buffer contents must be cleared");
    }

    #[test]
    fn flat_roundtrip_survives_parallel_copy_threshold() {
        // A store big enough to cross FLAT_COPY_GRAIN and take the pooled
        // copy path; the round trip must still be exact.
        let mut b = ParamStoreBuilder::new();
        b.register("big", &[600, 300], Init::Constant(0.5));
        b.register("tail", &[7], Init::Zeros);
        let mut s = b.build(&mut seeded(1));
        let flat: Vec<f32> = (0..s.flat_len()).map(|i| i as f32 * 0.25).collect();
        s.load_flat(&flat);
        assert_eq!(s.to_flat(), flat);
        assert_eq!(s.get(1).data()[0], (600 * 300) as f32 * 0.25);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = sample_store();
        let b = a.clone();
        a.get_mut(0).data_mut()[0] = 99.0;
        assert_eq!(b.get(0).data()[0], 1.0);
    }
}
