//! # mamdr-nn
//!
//! Neural-network building blocks for the MAMDR reproduction: a named
//! parameter store with flat-vector views, the layer primitives the CTR
//! model zoo is assembled from, and the optimizers the paper uses (SGD,
//! Adam, Adagrad).
//!
//! ## Why flat vectors?
//!
//! MAMDR's learning frameworks (Domain Negotiation, Domain Regularization,
//! PCGrad, Reptile, ...) are *model agnostic*: they treat the whole model as
//! an opaque parameter vector Θ and only perform vector algebra on it —
//! Θ ← Θ + β(Θ̃ − Θ), Θ = θS + θi, gradient inner products. The
//! [`store::ParamStore`] therefore exposes every registered tensor through a
//! single contiguous `Vec<f32>` ([`store::ParamStore::to_flat`] /
//! [`store::ParamStore::load_flat`]), and [`vecmath`] provides the
//! axpy/dot/lerp kernels the frameworks run on those vectors.

pub mod layers;
pub mod optim;
pub mod persist;
pub mod schedule;
pub mod store;
pub mod vecmath;

pub use layers::{Activation, Dense, Embedding, ForwardCtx, Mlp};
pub use optim::{Adagrad, Adam, Optimizer, OptimizerKind, Sgd};
pub use schedule::LrSchedule;
pub use store::{ParamStore, ParamStoreBuilder};
