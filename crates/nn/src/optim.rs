//! First-order optimizers over flat parameter vectors.
//!
//! The paper configures inner- and outer-loop optimizers independently
//! (§IV-E): Adam for the benchmark datasets, SGD inner + Adagrad outer for
//! the industry deployment. All three are provided; each owns its state
//! vectors and can be `reset` when a framework re-enters an inner loop.

/// A first-order optimizer updating `params` in place from `grads`.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
    /// Clears accumulated state (moments, history).
    fn reset(&mut self);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Replaces the learning rate.
    fn set_learning_rate(&mut self, lr: f32);
}

/// Which optimizer to instantiate — lets experiment configs stay declarative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent (optionally with momentum).
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables).
        momentum: f32,
    },
    /// Adam with standard betas.
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad.
    Adagrad {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Materializes the optimizer for a parameter vector of length `n`.
    pub fn build(self, n: usize) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd { lr, momentum } => Box::new(Sgd::new(lr, momentum, n)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr, n)),
            OptimizerKind::Adagrad { lr } => Box::new(Adagrad::new(lr, n)),
        }
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// A new SGD optimizer for `n` parameters.
    pub fn new(lr: f32, momentum: f32, n: usize) -> Self {
        Sgd { lr, momentum, velocity: if momentum > 0.0 { vec![0.0; n] } else { Vec::new() } }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.momentum > 0.0 {
            for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
                *v = self.momentum * *v + g;
                *p -= self.lr * *v;
            }
        } else {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
        }
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// A new Adam optimizer for `n` parameters with standard betas
    /// (0.9, 0.999).
    pub fn new(lr: f32, n: usize) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, &g), m), v) in params.iter_mut().zip(grads).zip(&mut self.m).zip(&mut self.v) {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad (Duchi et al.), the paper's outer-loop optimizer on the industry
/// dataset.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    acc: Vec<f32>,
}

impl Adagrad {
    /// A new Adagrad optimizer for `n` parameters.
    pub fn new(lr: f32, n: usize) -> Self {
        Adagrad { lr, eps: 1e-8, acc: vec![0.0; n] }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for ((p, &g), a) in params.iter_mut().zip(grads).zip(&mut self.acc) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.acc.iter_mut().for_each(|x| *x = 0.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gradient of the convex quadratic `0.5 * ||p - target||²`.
    fn quad_grad(p: &[f32], target: &[f32]) -> Vec<f32> {
        p.iter().zip(target).map(|(&x, &t)| x - t).collect()
    }

    fn converges(mut opt: Box<dyn Optimizer>, steps: usize) -> f32 {
        let target = [1.0f32, -2.0, 3.0];
        let mut p = vec![0.0f32; 3];
        for _ in 0..steps {
            let g = quad_grad(&p, &target);
            opt.step(&mut p, &g);
        }
        p.iter().zip(&target).map(|(&x, &t)| (x - t).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(OptimizerKind::Sgd { lr: 0.1, momentum: 0.0 }.build(3), 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(converges(OptimizerKind::Sgd { lr: 0.05, momentum: 0.9 }.build(3), 300) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(OptimizerKind::Adam { lr: 0.1 }.build(3), 500) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(converges(OptimizerKind::Adagrad { lr: 1.0 }.build(3), 500) < 1e-2);
    }

    #[test]
    fn plain_sgd_step_is_exact() {
        let mut opt = Sgd::new(0.5, 0.0, 2);
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, vec![0.0, 3.0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(0.1, 2);
        let mut p = vec![0.0, 0.0];
        adam.step(&mut p, &[1.0, 1.0]);
        assert!(adam.t == 1 && adam.m[0] != 0.0);
        adam.reset();
        assert!(adam.t == 0 && adam.m[0] == 0.0 && adam.v[0] == 0.0);
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Adagrad::new(0.3, 1);
        assert_eq!(opt.learning_rate(), 0.3);
        opt.set_learning_rate(0.7);
        assert_eq!(opt.learning_rate(), 0.7);
    }
}
