//! Layer primitives assembled into the CTR model zoo.
//!
//! A layer registers its parameters in a [`ParamStoreBuilder`] at
//! construction and replays its computation onto a [`Tape`] at forward time,
//! reading current parameter values from the [`ParamStore`]. Layers hold
//! only parameter *indices*, never the tensors themselves — the learning
//! frameworks own and mutate the store.

use crate::store::{ParamStore, ParamStoreBuilder};
use mamdr_autodiff::{Tape, Var};
use mamdr_tensor::init::Init;
use mamdr_tensor::{Act, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl From<Activation> for Act {
    fn from(a: Activation) -> Act {
        match a {
            Activation::Linear => Act::Linear,
            Activation::Relu => Act::Relu,
            Activation::Sigmoid => Act::Sigmoid,
            Activation::Tanh => Act::Tanh,
        }
    }
}

/// Per-batch forward context: training mode and the RNG driving dropout.
pub struct ForwardCtx<'a> {
    /// True during training (enables dropout).
    pub training: bool,
    /// RNG for dropout masks.
    pub rng: &'a mut StdRng,
}

impl<'a> ForwardCtx<'a> {
    /// A training-mode context.
    pub fn train(rng: &'a mut StdRng) -> Self {
        ForwardCtx { training: true, rng }
    }

    /// An evaluation-mode context (dropout disabled).
    pub fn eval(rng: &'a mut StdRng) -> Self {
        ForwardCtx { training: false, rng }
    }
}

/// A fully connected layer `act(x W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: usize,
    b: usize,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Registers a dense layer's parameters.
    ///
    /// He initialization before ReLU, Xavier otherwise — the DeepCTR
    /// defaults the paper's baselines use.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        let init = match activation {
            Activation::Relu => Init::HeNormal,
            _ => Init::XavierNormal,
        };
        let w = builder.register(format!("{name}/w"), &[in_dim, out_dim], init);
        let b = builder.register(format!("{name}/b"), &[out_dim], Init::Zeros);
        Dense { w, b, activation, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter index of the weight matrix.
    pub fn weight_index(&self) -> usize {
        self.w
    }

    /// Parameter index of the bias vector.
    pub fn bias_index(&self) -> usize {
        self.b
    }

    /// Applies the layer to `[batch, in_dim]`, producing `[batch, out_dim]`.
    ///
    /// Records one fused `Tape::dense` node — bit-identical to the former
    /// matmul → bias-add → activation chain but one pass over the output.
    pub fn forward(&self, ps: &ParamStore, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w, ps.get(self.w).clone());
        let b = tape.param(self.b, ps.get(self.b).clone());
        tape.dense(x, w, Some(b), self.activation.into())
    }

    /// Like [`Dense::forward`] but with externally supplied weight/bias
    /// nodes — used by STAR, which composes shared ⊙ specific weights before
    /// the matmul.
    pub fn forward_with(&self, tape: &mut Tape, x: Var, w: Var, b: Var) -> Var {
        tape.dense(x, w, Some(b), self.activation.into())
    }
}

/// Applies an [`Activation`] to a tape node.
pub fn apply_activation(tape: &mut Tape, x: Var, activation: Activation) -> Var {
    match activation {
        Activation::Linear => x,
        Activation::Relu => tape.relu(x),
        Activation::Sigmoid => tape.sigmoid(x),
        Activation::Tanh => tape.tanh(x),
    }
}

/// A stack of dense layers with optional inverted dropout between them.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    dropout: f32,
}

impl Mlp {
    /// Builds a stack with the given hidden widths; every hidden layer uses
    /// ReLU and the final layer `out_activation`.
    ///
    /// `dims = [in, h1, h2, ..., out]` must have at least two entries.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        dims: &[usize],
        out_activation: Activation,
        dropout: f32,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0,1)");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() { out_activation } else { Activation::Relu };
            layers.push(Dense::new(builder, &format!("{name}/l{i}"), dims[i], dims[i + 1], act));
        }
        Mlp { layers, dropout }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Forward pass through every layer, with inverted dropout after each
    /// hidden activation during training.
    pub fn forward(&self, ps: &ParamStore, tape: &mut Tape, ctx: &mut ForwardCtx, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(ps, tape, h);
            if i != last && self.dropout > 0.0 && ctx.training {
                h = apply_dropout(tape, ctx, h, self.dropout);
            }
        }
        h
    }
}

/// Applies inverted dropout with probability `p` to a tape node.
pub fn apply_dropout(tape: &mut Tape, ctx: &mut ForwardCtx, x: Var, p: f32) -> Var {
    debug_assert!(ctx.training, "dropout should only run in training mode");
    let shape = tape.value(x).shape().to_vec();
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    let n: usize = shape.iter().product();
    let mask_data: Vec<f32> =
        (0..n).map(|_| if ctx.rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
    tape.dropout(x, Tensor::from_vec(shape, mask_data))
}

/// An embedding table with gather-based lookup.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: usize,
    rows: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a `rows × dim` table, initialized `N(0, 0.01)` as in
    /// DeepCTR.
    pub fn new(builder: &mut ParamStoreBuilder, name: &str, rows: usize, dim: usize) -> Self {
        let table = builder.register(name, &[rows, dim], Init::Normal(0.01));
        Embedding { table, rows, dim }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (vocabulary size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Parameter index of the table.
    pub fn table_index(&self) -> usize {
        self.table
    }

    /// Looks up `ids`, producing `[ids.len, dim]`.
    pub fn forward(&self, ps: &ParamStore, tape: &mut Tape, ids: &[u32]) -> Var {
        tape.gather_param(self.table, ps.get(self.table), ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_tensor::rng::seeded;

    #[test]
    fn dense_shapes_and_activation() {
        let mut b = ParamStoreBuilder::new();
        let layer = Dense::new(&mut b, "d", 3, 2, Activation::Relu);
        let ps = b.build(&mut seeded(0));
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec([4, 3], vec![1.0; 12]));
        let y = layer.forward(&ps, &mut tape, x);
        assert_eq!(tape.value(y).shape(), &[4, 2]);
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0), "relu output must be >= 0");
    }

    #[test]
    fn mlp_builds_correct_stack() {
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::new(&mut b, "m", &[8, 4, 2, 1], Activation::Linear, 0.0);
        let ps = b.build(&mut seeded(1));
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(ps.n_tensors(), 6);
        let mut rng = seeded(2);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&mut rng, [5, 8], 0.0, 1.0));
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y = mlp.forward(&ps, &mut tape, &mut ctx, x);
        assert_eq!(tape.value(y).shape(), &[5, 1]);
    }

    #[test]
    fn dropout_only_in_training() {
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::new(&mut b, "m", &[4, 16, 1], Activation::Linear, 0.5);
        let ps = b.build(&mut seeded(3));
        let x_t = Tensor::ones([2, 4]);
        let mut rng = seeded(4);

        // Eval is deterministic regardless of RNG state.
        let mut tape1 = Tape::new();
        let x1 = tape1.leaf(x_t.clone());
        let mut ctx = ForwardCtx::eval(&mut rng);
        let y1 = mlp.forward(&ps, &mut tape1, &mut ctx, x1);
        let mut tape2 = Tape::new();
        let x2 = tape2.leaf(x_t.clone());
        let mut rng2 = seeded(99);
        let mut ctx2 = ForwardCtx::eval(&mut rng2);
        let y2 = mlp.forward(&ps, &mut tape2, &mut ctx2, x2);
        assert_eq!(tape1.value(y1), tape2.value(y2));

        // Training with different RNG states differs (dropout active).
        let mut rng_a = seeded(5);
        let mut tape3 = Tape::new();
        let x3 = tape3.leaf(x_t.clone());
        let mut ctx3 = ForwardCtx::train(&mut rng_a);
        let y3 = mlp.forward(&ps, &mut tape3, &mut ctx3, x3);
        let mut rng_b = seeded(6);
        let mut tape4 = Tape::new();
        let x4 = tape4.leaf(x_t);
        let mut ctx4 = ForwardCtx::train(&mut rng_b);
        let y4 = mlp.forward(&ps, &mut tape4, &mut ctx4, x4);
        assert_ne!(tape3.value(y3), tape4.value(y4));
    }

    #[test]
    fn embedding_lookup() {
        let mut b = ParamStoreBuilder::new();
        let emb = Embedding::new(&mut b, "e", 10, 4);
        let ps = b.build(&mut seeded(7));
        let mut tape = Tape::new();
        let out = emb.forward(&ps, &mut tape, &[3, 3, 9]);
        assert_eq!(tape.value(out).shape(), &[3, 4]);
        assert_eq!(tape.value(out).row(0), tape.value(out).row(1));
        assert_eq!(tape.value(out).row(0), ps.get(emb.table_index()).row(3));
    }

    #[test]
    fn mlp_gradient_reaches_all_layers() {
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::new(&mut b, "m", &[3, 4, 1], Activation::Linear, 0.0);
        let ps = b.build(&mut seeded(8));
        let mut rng = seeded(9);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::randn(&mut rng, [6, 3], 0.0, 1.0));
        let mut ctx = ForwardCtx::train(&mut rng);
        let y = mlp.forward(&ps, &mut tape, &mut ctx, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        // 2 layers × (w, b) = 4 parameter tensors, all touched
        assert_eq!(grads.len(), 4);
        for layer in mlp.layers() {
            assert!(grads.contains_key(&layer.weight_index()));
            assert!(grads.contains_key(&layer.bias_index()));
        }
    }
}
