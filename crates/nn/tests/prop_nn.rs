//! Property-based tests of the parameter store and the flat-vector algebra
//! the learning frameworks rely on.

use mamdr_nn::store::ParamStoreBuilder;
use mamdr_nn::vecmath;
use mamdr_tensor::init::Init;
use mamdr_tensor::rng::seeded;
use proptest::prelude::*;

fn vecs(n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (proptest::collection::vec(-5.0f32..5.0, n), proptest::collection::vec(-5.0f32..5.0, n))
}

proptest! {
    #[test]
    fn flat_roundtrip_arbitrary_shapes(
        shapes in proptest::collection::vec((1usize..5, 1usize..5), 1..6),
        seed in 0u64..1000,
    ) {
        let mut b = ParamStoreBuilder::new();
        for (i, &(r, c)) in shapes.iter().enumerate() {
            b.register(format!("p{i}"), &[r, c], Init::XavierNormal);
        }
        let mut store = b.build(&mut seeded(seed));
        let flat = store.to_flat();
        prop_assert_eq!(flat.len(), store.n_scalars());
        // load a permlike transform and read it back
        let doubled: Vec<f32> = flat.iter().map(|x| 2.0 * x + 1.0).collect();
        store.load_flat(&doubled);
        prop_assert_eq!(store.to_flat(), doubled);
        // per-tensor offsets are consistent with the flat layout
        for (i, _, t) in store.iter() {
            let off = store.offset(i);
            prop_assert_eq!(&store.to_flat()[off..off + t.numel()], t.data());
        }
    }

    #[test]
    fn dot_is_symmetric_and_bilinear((a, b) in vecs(16), alpha in -3.0f32..3.0) {
        let ab = vecmath::dot(&a, &b);
        let ba = vecmath::dot(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        let scaled: Vec<f32> = a.iter().map(|x| alpha * x).collect();
        prop_assert!((vecmath::dot(&scaled, &b) - alpha as f64 * ab).abs() < 1e-2);
    }

    #[test]
    fn cauchy_schwarz((a, b) in vecs(16)) {
        let lhs = vecmath::dot(&a, &b).abs();
        let rhs = vecmath::norm(&a) * vecmath::norm(&b);
        prop_assert!(lhs <= rhs + 1e-4);
        prop_assert!(vecmath::cosine(&a, &b).abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn lerp_full_beta_reaches_target((mut theta, target) in vecs(12)) {
        vecmath::lerp_toward(&mut theta, &target, 1.0);
        for (t, g) in theta.iter().zip(&target) {
            prop_assert!((t - g).abs() < 1e-5);
        }
    }

    #[test]
    fn lerp_zero_beta_is_identity((theta, target) in vecs(12)) {
        let mut moved = theta.clone();
        vecmath::lerp_toward(&mut moved, &target, 0.0);
        prop_assert_eq!(moved, theta);
    }

    #[test]
    fn project_conflict_never_increases_conflict((mut g, other) in vecs(16)) {
        // After projection, <g, other> >= 0 whenever other != 0:
        // PCGrad's defining guarantee.
        vecmath::project_conflict(&mut g, &other);
        prop_assert!(vecmath::dot(&g, &other) >= -1e-3);
    }

    #[test]
    fn project_conflict_preserves_agreeing_gradients((g, other) in vecs(16)) {
        prop_assume!(vecmath::dot(&g, &other) >= 0.0);
        let mut projected = g.clone();
        vecmath::project_conflict(&mut projected, &other);
        prop_assert_eq!(projected, g);
    }

    #[test]
    fn optimizer_moves_against_gradient(lr in 0.001f32..0.1, g in -2.0f32..2.0) {
        prop_assume!(g.abs() > 1e-3);
        for kind in [
            mamdr_nn::OptimizerKind::Sgd { lr, momentum: 0.0 },
            mamdr_nn::OptimizerKind::Adam { lr },
            mamdr_nn::OptimizerKind::Adagrad { lr },
        ] {
            let mut opt = kind.build(1);
            let mut p = vec![0.0f32];
            opt.step(&mut p, &[g]);
            prop_assert!(
                p[0] * g <= 0.0 && p[0] != 0.0,
                "{:?}: step {} against gradient {}",
                kind, p[0], g
            );
        }
    }
}
