//! Property-based tests of the model persistence format: round trips are
//! bit-identical, and corrupted or truncated snapshots fail with an error —
//! never a panic, never a silent partial load. The `mamdr-serve` snapshot
//! format builds on these primitives, so their contract is load-bearing.

use mamdr_nn::persist::{load_params, save_params, PersistError};
use mamdr_nn::store::{ParamStore, ParamStoreBuilder};
use mamdr_tensor::init::Init;
use mamdr_tensor::rng::seeded;
use proptest::prelude::*;

/// Builds a store with arbitrary small shapes, deterministic in `seed`.
fn build_store(shapes: &[(usize, usize)], seed: u64) -> ParamStore {
    let mut b = ParamStoreBuilder::new();
    for (i, &(r, c)) in shapes.iter().enumerate() {
        // Mix ranks: every third tensor is a vector, the rest matrices.
        if i % 3 == 2 {
            b.register(format!("t{i}/v"), &[r * c], Init::Normal(0.5));
        } else {
            b.register(format!("t{i}/w"), &[r, c], Init::XavierNormal);
        }
    }
    b.build(&mut seeded(seed))
}

proptest! {
    #[test]
    fn roundtrip_is_bit_identical(
        shapes in proptest::collection::vec((1usize..6, 1usize..6), 1..5),
        seed in 0u64..500,
    ) {
        let src = build_store(&shapes, seed);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        // Same layout, different values: the load must overwrite all of them.
        let mut dst = build_store(&shapes, seed.wrapping_add(1));
        load_params(&mut dst, buf.as_slice()).unwrap();
        let bits = |s: &ParamStore| s.to_flat().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&dst), bits(&src));
    }

    #[test]
    fn corrupted_byte_errors_or_preserves_layout(
        shapes in proptest::collection::vec((1usize..5, 1usize..5), 1..4),
        seed in 0u64..200,
        corrupt_pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let src = build_store(&shapes, seed);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let pos = corrupt_pos % buf.len();
        buf[pos] ^= xor;
        let mut dst = build_store(&shapes, seed.wrapping_add(1));
        // Corruption in the framing (magic, names, shapes, counts) must
        // surface as Err. A flipped bit inside a value payload is invisible
        // to this unchecksummed format, but the load must still terminate
        // without panicking and leave the store's layout intact.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            load_params(&mut dst, buf.as_slice())
        }));
        let outcome = result.expect("load_params must never panic");
        if pos < 8 {
            // Magic corruption is always caught.
            prop_assert!(matches!(outcome, Err(PersistError::Mismatch(_))));
        }
        prop_assert_eq!(dst.n_scalars(), src.n_scalars());
    }

    #[test]
    fn truncation_errors_never_panics(
        shapes in proptest::collection::vec((1usize..5, 1usize..5), 1..4),
        seed in 0u64..200,
        keep in 0usize..4096,
    ) {
        let src = build_store(&shapes, seed);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        buf.truncate(keep % buf.len());
        let mut dst = build_store(&shapes, seed.wrapping_add(1));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            load_params(&mut dst, buf.as_slice())
        }))
        .expect("load_params must never panic");
        prop_assert!(outcome.is_err(), "a truncated snapshot must be rejected");
    }
}
