//! Request and response types of the serving layer.

use std::time::Instant;

/// One scoring request: the features of a single (user, item) candidate in
/// one domain. This is the wire unit clients submit; the scheduler coalesces
/// same-domain requests into micro-batches before the forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Domain id (routes to the materialized Θ_d).
    pub domain: usize,
    /// Global user id.
    pub user: u32,
    /// Global item id.
    pub item: u32,
    /// User-group side feature.
    pub user_group: u32,
    /// Item-category side feature.
    pub item_cat: u32,
    /// Dense user features; required iff the snapshot's model embeds them.
    pub dense_user: Option<Vec<f32>>,
    /// Dense item features; required iff the snapshot's model embeds them.
    pub dense_item: Option<Vec<f32>>,
}

impl ScoreRequest {
    /// A sparse-only request (no dense side features).
    pub fn new(domain: usize, user: u32, item: u32, user_group: u32, item_cat: u32) -> Self {
        ScoreRequest {
            domain,
            user,
            item,
            user_group,
            item_cat,
            dense_user: None,
            dense_item: None,
        }
    }
}

/// A successfully scored request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id [`Server::submit`](crate::Server::submit) returned.
    pub id: u64,
    /// Predicted click probability.
    pub score: f32,
    /// Version of the snapshot that produced the score — under a hot swap,
    /// every response is attributable to exactly one published snapshot.
    pub snapshot_version: u64,
}

/// The terminal outcome of one admitted request. Every admitted request
/// receives exactly one `ServeResult`; rejected submissions (queue full)
/// fail synchronously at [`Server::submit`](crate::Server::submit) instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResult {
    /// Scored before its deadline.
    Scored(Response),
    /// Deadline passed before a worker reached the request.
    DeadlineExceeded {
        /// The request's id.
        id: u64,
    },
    /// The request failed validation against the current snapshot.
    Invalid {
        /// The request's id.
        id: u64,
        /// What was wrong.
        error: String,
    },
}

impl ServeResult {
    /// The request id this result belongs to.
    pub fn id(&self) -> u64 {
        match self {
            ServeResult::Scored(r) => r.id,
            ServeResult::DeadlineExceeded { id } | ServeResult::Invalid { id, .. } => *id,
        }
    }
}

/// The service class of a request: which admission queue it competes in
/// and how aggressively overload sheds it.
///
/// Classes partition the admission bound: each has its own bounded depth,
/// so a flood of `Bulk` traffic can never starve `Interactive` admission —
/// the bulk queue fills and sheds (typed, per class) while interactive
/// requests keep flowing into their own budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// User-facing traffic: tight latency target, flushed ahead of bulk.
    #[default]
    Interactive,
    /// Offline/batch rescoring traffic: tolerant of queueing, first to
    /// shed under overload.
    Bulk,
}

impl SloClass {
    /// Index into per-class arrays (`Interactive = 0`, `Bulk = 1`).
    pub const COUNT: usize = 2;

    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Bulk => 1,
        }
    }

    /// Stable lower-case label, used in per-class metric names.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Bulk => "bulk",
        }
    }

    /// Both classes, in index order.
    pub const ALL: [SloClass; 2] = [SloClass::Interactive, SloClass::Bulk];
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded request queue is at capacity. Explicit rejection, never
    /// blocking: the caller sheds load or retries with backoff.
    QueueFull,
    /// The request's service class is at its own bounded depth: the
    /// request was shed by class under overload. Other classes may still
    /// be admitting.
    ShedOverload(SloClass),
    /// The server is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::ShedOverload(c) => {
                write!(f, "{} queue overloaded, request shed", c.label())
            }
            SubmitError::Closed => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Internal envelope: a request plus its routing/accounting state.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub id: u64,
    pub req: ScoreRequest,
    pub class: SloClass,
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    /// When the dispatcher flushed this request's micro-batch toward the
    /// workers — splits queue time into coalescing wait vs. batch-queue
    /// wait in the per-request span chain.
    pub flushed: Option<Instant>,
    pub reply: std::sync::mpsc::Sender<ServeResult>,
}
