//! Online inference for MAMDR: frozen serving snapshots, per-domain
//! routing, micro-batched scoring, and hot model swap.
//!
//! Training (the rest of the workspace) produces Θ = θS + θi — a shared
//! flat parameter vector plus per-domain specializations (paper Eq. 4).
//! This crate takes that artifact online:
//!
//! * [`ServingSnapshot`] — an immutable, versioned, checksummed artifact
//!   built from a [`mamdr_core::TrainedModel`] (any dense framework) or a
//!   `mamdr-ps` parameter-server checkpoint. The effective Θ_d of every
//!   domain is materialized once at load; the request path never composes.
//! * [`ScoringEngine`] — routes by domain id and supports **hot swap**: an
//!   atomically replaceable `Arc<ServingSnapshot>` where in-flight batches
//!   finish on the version they pinned and the retired snapshot is freed
//!   when its last pin drops.
//! * [`Server`] — bounded-queue admission (full ⇒ explicit rejection),
//!   a dispatcher that coalesces same-domain requests into micro-batches
//!   (`max_batch` / `max_wait_us`), per-request deadlines, and worker
//!   threads scoring through the same deterministic kernels as training —
//!   scores are bit-identical at any `MAMDR_THREADS` setting.
//!
//! All serve-side telemetry (serve_* counters, queue-depth gauge, latency
//! and batch-size histograms) flows through `mamdr-obs`'s
//! [`MetricsRegistry`](mamdr_obs::MetricsRegistry).

mod engine;
mod request;
mod server;
mod snapshot;

pub use engine::{ScoringEngine, ServeMetrics};
pub use request::{Response, ScoreRequest, ServeResult, SubmitError};
pub use server::{Pending, ServeConfig, Server};
pub use snapshot::{ModelSpec, ServingSnapshot, SnapshotError};
