//! Online inference for MAMDR: frozen serving snapshots, per-domain
//! routing, micro-batched scoring, and hot model swap.
//!
//! Training (the rest of the workspace) produces Θ = θS + θi — a shared
//! flat parameter vector plus per-domain specializations (paper Eq. 4).
//! This crate takes that artifact online:
//!
//! * [`ServingSnapshot`] — an immutable, versioned, checksummed artifact
//!   built from a [`mamdr_core::TrainedModel`] (any dense framework) or a
//!   `mamdr-ps` parameter-server checkpoint. The effective Θ_d of every
//!   domain is materialized once at load; the request path never composes.
//! * [`ScoringEngine`] — routes by domain id and supports **hot swap**: an
//!   atomically replaceable `Arc<ServingSnapshot>` where in-flight batches
//!   finish on the version they pinned and the retired snapshot is freed
//!   when its last pin drops.
//! * [`Server`] — bounded-queue admission (full ⇒ explicit rejection,
//!   per-[`SloClass`] bounds ⇒ typed shed), a dispatcher that coalesces
//!   same-(domain, class) requests into micro-batches under a pluggable
//!   [`BatchPolicy`] (adaptive queue-drain closing by default, the PR 3
//!   fixed window on request), per-request deadlines enforced both while
//!   queued and at worker pickup, and worker threads scoring through the
//!   same deterministic kernels as training — scores are bit-identical at
//!   any `MAMDR_THREADS` setting.
//! * [`ReplicatedServer`] — N complete serving stacks over one shared
//!   snapshot allocation, routed by FNV-1a over the user id (the
//!   `ShardMap` discipline: reproducible, feedback-free), with hot swap
//!   propagated to every replica under one pool lock.
//! * [`PublishGate`] — the continual-publishing validation chain in front
//!   of the pool: digest → version → structure → finite → probe
//!   divergence → optional live canary slice, with byte-exact rollback to
//!   the last-good `Arc` and typed `publish_rejected_total{reason=...}`
//!   counters on every verdict.
//!
//! All serve-side telemetry (serve_* counters, queue-depth gauge, latency
//! and batch-size histograms) flows through `mamdr-obs`'s
//! [`MetricsRegistry`](mamdr_obs::MetricsRegistry).

mod batcher;
mod engine;
mod gate;
mod replica;
mod request;
mod server;
mod snapshot;

pub use batcher::{BatchPolicy, SpeedupPredictor};
pub use engine::{ScoringEngine, ServeMetrics};
pub use gate::{GateConfig, GateReject, PublishGate, GATE_REASONS};
pub use replica::{replica_of, ReplicatedServer};
pub use request::{Response, ScoreRequest, ServeResult, SloClass, SubmitError};
pub use server::{Pending, ServeConfig, Server};
pub use snapshot::{ModelSpec, ServingSnapshot, SnapshotError};
