//! The scoring engine: a hot-swappable snapshot pointer plus serve metrics.
//!
//! The engine owns the *current* [`ServingSnapshot`] behind a mutex-guarded
//! `Arc`. Readers (`snapshot()`) take the lock only long enough to clone the
//! `Arc` — nanoseconds, never held across a forward pass — so scoring runs on
//! a pinned snapshot entirely outside the lock. Publishing a new snapshot
//! (`publish()`) swaps the `Arc` under the same lock; in-flight batches keep
//! their pinned version alive through their own `Arc` clone, and the retired
//! snapshot is freed when the last such clone drops.
//!
//! Memory-ordering argument (why readers never observe a half-built
//! snapshot): the snapshot is fully constructed *before* `publish()` is
//! called; the mutex release in `publish()` happens-before the mutex acquire
//! in any subsequent `snapshot()`, so every field written during
//! construction is visible to the reader. `Arc`'s reference counting uses
//! `Release` decrements with an `Acquire` fence before deallocation, so the
//! retiring thread sees all reader writes before the memory is reclaimed.

use crate::request::SloClass;
use crate::snapshot::ServingSnapshot;
use mamdr_obs::{Counter, Gauge, Histogram, MetricsRegistry, Tracer};
use std::sync::{Arc, Mutex};

/// Cheap-to-clone handles for every `serve_*` metric the subsystem emits.
///
/// Names follow the registry's Prometheus conventions so `render_prometheus`
/// and `dump_jsonl` expose them without further plumbing.
#[derive(Clone)]
pub struct ServeMetrics {
    /// Requests admitted into the queue.
    pub requests_total: Counter,
    /// Responses delivered (scored, invalid, or deadline-exceeded).
    pub responses_total: Counter,
    /// Submissions refused because the queue was full.
    pub rejected_total: Counter,
    /// Admitted requests that expired before scoring.
    pub deadline_exceeded_total: Counter,
    /// Admitted requests whose deadline expired *while queued* and were
    /// shed by the dispatcher without ever reaching a scoring worker — a
    /// subset of the deadline outcomes that `deadline_exceeded_total`
    /// does not include (that one counts worker-side pickup expiry).
    pub deadline_expired_total: Counter,
    /// Submissions shed because their SLO class hit its bounded depth,
    /// one counter per class (`serve_shed_total{class="..."}`).
    pub shed_total: [Counter; SloClass::COUNT],
    /// Micro-batches executed.
    pub batches_total: Counter,
    /// Snapshot hot swaps performed.
    pub swaps_total: Counter,
    /// Current depth of the admission queue.
    pub queue_depth: Gauge,
    /// Coalesced micro-batch sizes.
    pub batch_size: Arc<Histogram>,
    /// Per-request latency, submit → response, in seconds.
    pub latency_seconds: Arc<Histogram>,
    /// Per-request wait from admission to the start of its batch's forward
    /// pass, in microseconds — the queueing share of the latency.
    pub queue_wait_us: Arc<Histogram>,
    /// Per-batch forward-pass duration, in microseconds — the compute share.
    pub batch_compute_us: Arc<Histogram>,
}

impl ServeMetrics {
    /// Registers (or re-looks-up) every serve metric in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        registry.describe("serve_requests_total", "Requests admitted into the serve queue.");
        registry.describe(
            "serve_responses_total",
            "Responses delivered (scored, invalid, or deadline-exceeded).",
        );
        registry
            .describe("serve_rejected_total", "Submissions refused because the queue was full.");
        registry.describe(
            "serve_deadline_exceeded_total",
            "Admitted requests that expired before scoring.",
        );
        registry.describe(
            "serve_deadline_expired_total",
            "Admitted requests shed while queued because their deadline expired.",
        );
        registry.describe(
            "serve_shed_total",
            "Submissions shed because their SLO class hit its bounded depth.",
        );
        registry.describe("serve_batches_total", "Micro-batches executed.");
        registry.describe("serve_swaps_total", "Snapshot hot swaps performed.");
        registry.describe("serve_queue_depth", "Current depth of the admission queue.");
        registry.describe("serve_batch_size", "Coalesced micro-batch sizes.");
        registry
            .describe("serve_latency_seconds", "Per-request latency, submit to response, seconds.");
        registry.describe(
            "serve_queue_wait_us",
            "Per-request wait from admission to forward-pass start, microseconds.",
        );
        registry
            .describe("serve_batch_compute_us", "Per-batch forward-pass duration, microseconds.");
        ServeMetrics {
            requests_total: registry.counter("serve_requests_total"),
            responses_total: registry.counter("serve_responses_total"),
            rejected_total: registry.counter("serve_rejected_total"),
            deadline_exceeded_total: registry.counter("serve_deadline_exceeded_total"),
            deadline_expired_total: registry.counter("serve_deadline_expired_total"),
            shed_total: SloClass::ALL
                .map(|c| registry.counter(&format!("serve_shed_total{{class=\"{}\"}}", c.label()))),
            batches_total: registry.counter("serve_batches_total"),
            swaps_total: registry.counter("serve_swaps_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            batch_size: registry.histogram("serve_batch_size"),
            latency_seconds: registry.histogram("serve_latency_seconds"),
            queue_wait_us: registry.histogram("serve_queue_wait_us"),
            batch_compute_us: registry.histogram("serve_batch_compute_us"),
        }
    }
}

/// Routes scoring work to the current snapshot and supports atomic hot swap.
pub struct ScoringEngine {
    current: Mutex<Arc<ServingSnapshot>>,
    metrics: ServeMetrics,
    /// Optional span sink: workers record per-request lifecycle spans and
    /// `publish` records hot-swap spans through it. `None` keeps the serve
    /// path span-free (scores are identical either way).
    tracer: Option<Arc<Tracer>>,
}

impl ScoringEngine {
    /// An engine serving `snapshot`, reporting into `registry`.
    pub fn new(snapshot: ServingSnapshot, registry: &MetricsRegistry) -> Self {
        Self::new_shared(Arc::new(snapshot), registry)
    }

    /// An engine serving an already-shared snapshot. Replicated pools use
    /// this so N replicas pin the *same* allocation — one set of
    /// materialized Θ_d in memory no matter how many replicas serve it.
    pub fn new_shared(snapshot: Arc<ServingSnapshot>, registry: &MetricsRegistry) -> Self {
        ScoringEngine {
            current: Mutex::new(snapshot),
            metrics: ServeMetrics::register(registry),
            tracer: None,
        }
    }

    /// Attaches a span sink; per-request and hot-swap spans are recorded
    /// into it from then on.
    pub fn with_tracer(mut self, tracer: Option<Arc<Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached span sink, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Pins the current snapshot. The returned `Arc` stays valid (and keeps
    /// its parameters alive) across any number of subsequent `publish`
    /// calls — a batch scored against it is scored by exactly that version.
    pub fn snapshot(&self) -> Arc<ServingSnapshot> {
        self.current.lock().expect("engine lock").clone()
    }

    /// Atomically replaces the served snapshot and returns the retired one.
    ///
    /// In-flight batches pinned to the old version finish on it; its memory
    /// is reclaimed when the returned `Arc` and every pin drop.
    pub fn publish(&self, snapshot: ServingSnapshot) -> Arc<ServingSnapshot> {
        self.publish_shared(Arc::new(snapshot))
    }

    /// [`publish`](Self::publish) for a snapshot that other engines also
    /// serve: the replicated pool swaps every replica to one shared `Arc`.
    pub fn publish_shared(&self, next: Arc<ServingSnapshot>) -> Arc<ServingSnapshot> {
        let mut swap_span = self.tracer.as_deref().map(|t| t.span("serve.swap"));
        if let Some(s) = swap_span.as_mut() {
            s.attr("version", next.version());
        }
        let old = {
            let mut cur = self.current.lock().expect("engine lock");
            std::mem::replace(&mut *cur, next)
        };
        self.metrics.swaps_total.inc();
        if let Some(s) = swap_span.as_mut() {
            s.attr("retired_version", old.version());
        }
        old
    }

    /// Version of the snapshot currently being served.
    pub fn current_version(&self) -> u64 {
        self.snapshot().version()
    }

    /// The serve metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests_support::tiny_dense_snapshot;
    use crate::ScoreRequest;

    #[test]
    fn publish_swaps_version_and_counts() {
        let registry = MetricsRegistry::new();
        let engine = ScoringEngine::new(tiny_dense_snapshot(1), &registry);
        assert_eq!(engine.current_version(), 1);
        let old = engine.publish(tiny_dense_snapshot(2));
        assert_eq!(old.version(), 1);
        assert_eq!(engine.current_version(), 2);
        assert_eq!(registry.counter("serve_swaps_total").get(), 1);
    }

    #[test]
    fn pinned_snapshot_survives_swap() {
        let registry = MetricsRegistry::new();
        let engine = ScoringEngine::new(tiny_dense_snapshot(7), &registry);
        let pinned = engine.snapshot();
        let _ = engine.publish(tiny_dense_snapshot(8));
        // The pin still scores on version 7 even though 8 is now current.
        assert_eq!(pinned.version(), 7);
        let req = ScoreRequest::new(0, 0, 0, 0, 0);
        let s = pinned.score(0, std::slice::from_ref(&req));
        assert_eq!(s.len(), 1);
        assert!(s[0].is_finite());
    }

    #[test]
    fn swap_under_concurrent_readers_is_safe() {
        let registry = MetricsRegistry::new();
        let engine = ScoringEngine::new(tiny_dense_snapshot(0), &registry);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let snap = engine.snapshot();
                        let req = ScoreRequest::new(0, 0, 0, 0, 0);
                        let out = snap.score(0, std::slice::from_ref(&req));
                        assert!(out[0].is_finite());
                    }
                });
            }
            s.spawn(|| {
                for v in 1..=50u64 {
                    let _ = engine.publish(tiny_dense_snapshot(v));
                }
            });
        });
        assert_eq!(engine.current_version(), 50);
        assert_eq!(registry.counter("serve_swaps_total").get(), 50);
    }
}
