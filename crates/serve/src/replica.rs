//! Replicated scoring engines behind deterministic routing.
//!
//! One [`Server`] is a single dispatcher loop; past the point where one
//! thread can drain admission, the serving tier scales *out*: N complete
//! replicas (engine + dispatcher + workers), each with its own bounded
//! admission, behind a router that assigns every request to a replica by
//! FNV-1a hash of its user id modulo the replica count. The discipline
//! mirrors `ps::ShardMap`: the route is a pure function of the key and
//! the replica count — no per-process state, no load feedback — so a
//! request's replica is reproducible across runs and across processes,
//! which is what makes a replicated run comparable (and bit-identical,
//! for row-independent models) to a single-replica run.
//!
//! Replicas share one `Arc<ServingSnapshot>` per published version: the
//! materialized Θ_d tables exist once in memory no matter the replica
//! count, and [`ReplicatedServer::publish`] swaps every replica to the
//! same allocation under one pool lock. In-flight batches keep the pin
//! they took, so the zero-loss/one-version-per-request guarantee of the
//! single engine carries over replica-by-replica; the pool lock only
//! orders concurrent publishes against each other (two racing publishes
//! cannot interleave their per-replica swaps).
//!
//! All replicas report into the same metric names, so `serve_*` counters
//! aggregate across the pool and the accounting identity
//! `admitted = scored + shed + expired + invalid` holds pool-wide.

use crate::engine::ScoringEngine;
use crate::request::{ScoreRequest, SloClass, SubmitError};
use crate::server::{Pending, ServeConfig, Server};
use crate::snapshot::ServingSnapshot;
use mamdr_obs::{MetricsRegistry, Tracer};
use mamdr_util::Checksum;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic user→replica assignment: `FNV1a64(user_le) mod n`.
///
/// Same discipline as `ps::ShardMap::owner`: a pure function of the key
/// bytes and the pool size. Routing by *user* (not request id or domain)
/// keeps one user's traffic on one replica — cache-friendly, and the
/// natural unit for per-user features — while Zipf-heavy domains still
/// spread across the pool.
pub fn replica_of(user: u32, n_replicas: usize) -> usize {
    if n_replicas <= 1 {
        return 0;
    }
    (Checksum::of(&user.to_le_bytes()) % n_replicas as u64) as usize
}

/// N identical serving stacks behind the deterministic router.
pub struct ReplicatedServer {
    replicas: Vec<Server>,
    /// Orders concurrent publishes: per-replica swaps of two publishes
    /// never interleave.
    swap_lock: Mutex<()>,
}

impl ReplicatedServer {
    /// Starts `n_replicas` complete serving stacks over one shared
    /// snapshot, each configured with `config` (admission bounds are per
    /// replica). All replicas report into `registry` under the same
    /// metric names.
    pub fn start(
        snapshot: ServingSnapshot,
        n_replicas: usize,
        config: ServeConfig,
        registry: &MetricsRegistry,
        tracer: Option<Arc<Tracer>>,
    ) -> ReplicatedServer {
        assert!(n_replicas >= 1, "need at least one replica");
        let shared = Arc::new(snapshot);
        let replicas = (0..n_replicas)
            .map(|_| {
                let engine = Arc::new(
                    ScoringEngine::new_shared(Arc::clone(&shared), registry)
                        .with_tracer(tracer.clone()),
                );
                Server::start(engine, config.clone())
            })
            .collect();
        ReplicatedServer { replicas, swap_lock: Mutex::new(()) }
    }

    /// Number of replicas in the pool.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The replica that owns `user`'s traffic.
    pub fn route(&self, user: u32) -> usize {
        replica_of(user, self.replicas.len())
    }

    /// Submits to the owning replica ([`SloClass::Interactive`]).
    pub fn submit(
        &self,
        req: ScoreRequest,
        deadline: Option<Duration>,
    ) -> Result<Pending, SubmitError> {
        self.submit_class(req, deadline, SloClass::Interactive)
    }

    /// Submits to the owning replica with an explicit service class.
    /// Admission bounds are the owning replica's: a hot replica can shed
    /// while the rest of the pool admits (that is the overload signal a
    /// deterministic router gives — it never rebalances away from it).
    pub fn submit_class(
        &self,
        req: ScoreRequest,
        deadline: Option<Duration>,
        class: SloClass,
    ) -> Result<Pending, SubmitError> {
        let r = self.route(req.user);
        self.replicas[r].submit_class(req, deadline, class)
    }

    /// Atomically propagates a new snapshot to every replica and returns
    /// the retired version. Each in-flight batch finishes on the version
    /// it pinned; the retired snapshot's memory is freed when the last
    /// pin across all replicas drops. Concurrent publishes are ordered by
    /// the pool lock, so all replicas always converge to the same current
    /// version.
    pub fn publish(&self, snapshot: ServingSnapshot) -> u64 {
        self.publish_arc(Arc::new(snapshot))
    }

    /// [`publish`](Self::publish) for an already-shared snapshot: the gate
    /// keeps its last-good `Arc` and can re-publish *that exact
    /// allocation* on rollback — byte-exact by construction, no re-decode,
    /// no re-materialization.
    pub fn publish_arc(&self, next: Arc<ServingSnapshot>) -> u64 {
        let _guard = self.swap_lock.lock().expect("swap lock");
        let mut retired = 0;
        for server in &self.replicas {
            retired = server.engine().publish_shared(Arc::clone(&next)).version();
        }
        retired
    }

    /// Publishes `next` to the first `n_canary` replicas only, leaving the
    /// rest on the incumbent. Because routing is a pure hash of the user
    /// id, this exposes a *deterministic user-hash slice* of traffic to
    /// the candidate: exactly the users with `replica_of(user, n) <
    /// n_canary`, the same slice in every run. Held under the pool lock so
    /// a canary and a full publish never interleave per-replica swaps.
    /// Returns the number of replicas actually swapped (clamped to the
    /// pool size).
    pub fn publish_canary(&self, next: Arc<ServingSnapshot>, n_canary: usize) -> usize {
        let n = n_canary.min(self.replicas.len());
        let _guard = self.swap_lock.lock().expect("swap lock");
        for server in &self.replicas[..n] {
            server.engine().publish_shared(Arc::clone(&next));
        }
        n
    }

    /// Version currently served (identical across replicas outside a
    /// publish, which the pool lock makes non-interleaving). During a
    /// canary phase replica 0 is in the canary slice, so this reports the
    /// *candidate* version until the gate cuts over or rolls back.
    pub fn current_version(&self) -> u64 {
        self.replicas[0].engine().current_version()
    }

    /// The engine of one replica, for metrics or direct snapshot pins.
    pub fn engine(&self, replica: usize) -> &Arc<ScoringEngine> {
        self.replicas[replica].engine()
    }

    /// Graceful shutdown of every replica: stops admission, flushes all
    /// buffered requests through scoring, joins all threads.
    pub fn shutdown(self) {
        for server in self.replicas {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeResult;
    use crate::snapshot::tests_support::tiny_dense_snapshot;

    fn request(domain: usize, i: u32) -> ScoreRequest {
        ScoreRequest::new(domain, i % 30, i % 20, i % 4, i % 5)
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for n in [1usize, 2, 3, 4, 7] {
            for user in 0..200u32 {
                let a = replica_of(user, n);
                let b = replica_of(user, n);
                assert_eq!(a, b);
                assert!(a < n);
            }
        }
        // One replica routes everything to 0 without hashing.
        assert_eq!(replica_of(12345, 1), 0);
    }

    #[test]
    fn routing_spreads_users_across_replicas() {
        let n = 4;
        let mut counts = vec![0usize; n];
        for user in 0..1000u32 {
            counts[replica_of(user, n)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "replica {i} owns {c} of 1000 users; FNV spread is broken"
            );
        }
    }

    #[test]
    fn pool_serves_and_aggregates_metrics() {
        let registry = MetricsRegistry::new();
        let pool = ReplicatedServer::start(
            tiny_dense_snapshot(1),
            3,
            ServeConfig::default(),
            &registry,
            None,
        );
        assert_eq!(pool.n_replicas(), 3);
        let pending: Vec<Pending> = (0..60)
            .map(|i| pool.submit(request(i as usize % 2, i), None).expect("admitted"))
            .collect();
        for p in &pending {
            assert!(matches!(p.wait(), ServeResult::Scored(_)));
        }
        pool.shutdown();
        assert_eq!(registry.counter("serve_requests_total").get(), 60);
        assert_eq!(registry.counter("serve_responses_total").get(), 60);
    }

    #[test]
    fn publish_converges_all_replicas() {
        let registry = MetricsRegistry::new();
        let pool = ReplicatedServer::start(
            tiny_dense_snapshot(1),
            4,
            ServeConfig::default(),
            &registry,
            None,
        );
        assert_eq!(pool.current_version(), 1);
        let retired = pool.publish(tiny_dense_snapshot(2));
        assert_eq!(retired, 1);
        for r in 0..4 {
            assert_eq!(pool.engine(r).current_version(), 2);
        }
        // One publish performs one swap per replica.
        assert_eq!(registry.counter("serve_swaps_total").get(), 4);
        pool.shutdown();
    }
}
