//! Adaptive batch-closing policy and its speedup predictor.
//!
//! The fixed-window dispatcher of PR 3 held every request for up to
//! `max_wait_us` hoping peers would arrive — and the PR 6 span data showed
//! the cost: ~96% of a request's lifecycle was queue wait at low offered
//! load, with `mean_batch = 1.0` (nobody ever arrived inside the window).
//! The adaptive policy inverts the default: a batch closes **as soon as
//! the admission queue drains**, unless waiting is predicted to pay for
//! itself. Waiting pays when the expected gap to the next arrival is
//! smaller than the per-request speedup a larger batch would buy — the
//! amortizable fixed cost `a` of a forward pass, taken from a live linear
//! fit `compute(n) ≈ a + b·n` over the same observations that feed the
//! `serve_batch_compute_us` histogram.
//!
//! Both inputs are cheap EWMAs/decayed sums behind one mutex that is
//! touched once per batch (workers) and once per arrival (dispatcher) —
//! never inside a forward pass.

use std::sync::Mutex;

/// How the dispatcher decides a micro-batch is complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// PR 3 behavior: hold a domain's buffer until it reaches `max_batch`
    /// requests or its oldest request has waited `max_wait_us`.
    FixedWindow,
    /// Close a batch when the queue drains or when the predicted wait for
    /// the next arrival exceeds the predicted per-request speedup from a
    /// larger batch. `max_wait_us` remains the hard upper bound, so the
    /// adaptive policy is never *slower* to flush than the fixed window.
    #[default]
    Adaptive,
}

impl BatchPolicy {
    /// Parses the `--policy` spelling used by `serve_bench`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fixed" => Ok(BatchPolicy::FixedWindow),
            "adaptive" => Ok(BatchPolicy::Adaptive),
            other => Err(format!("unknown batch policy {other:?} (expected fixed or adaptive)")),
        }
    }
}

/// Decayed sufficient statistics for the line `compute(n) = a + b·n`,
/// plus an EWMA of request inter-arrival gaps.
#[derive(Debug, Clone)]
struct PredictorState {
    // Exponentially decayed least-squares sums over (batch_size, cost_us).
    s_1: f64,
    s_n: f64,
    s_nn: f64,
    s_c: f64,
    s_nc: f64,
    /// EWMA of the gap between consecutive admissions, microseconds.
    gap_us: f64,
}

/// Live model of batch economics: what a bigger batch saves, and how long
/// the next arrival is likely to take.
///
/// Fed by the scoring workers (one `observe_batch` per forward pass, the
/// same numbers recorded into `serve_batch_compute_us`) and by the
/// dispatcher (one `observe_arrival` per admission). Read by the
/// dispatcher to decide whether holding a batch open is worth it.
#[derive(Debug)]
pub struct SpeedupPredictor {
    state: Mutex<PredictorState>,
}

/// Observation decay per new batch sample: ~1% weight loss, so the fit
/// tracks a model swap or thermal shift within a few hundred batches while
/// staying stable against single outliers.
const DECAY: f64 = 0.99;
/// EWMA weight of a new inter-arrival gap observation.
const GAP_ALPHA: f64 = 0.2;
/// Until enough batches are observed, assume zero amortizable cost —
/// i.e. flush on queue drain. Waiting is opt-in by evidence.
const MIN_WEIGHT: f64 = 8.0;

impl Default for SpeedupPredictor {
    fn default() -> Self {
        SpeedupPredictor {
            state: Mutex::new(PredictorState {
                s_1: 0.0,
                s_n: 0.0,
                s_nn: 0.0,
                s_c: 0.0,
                s_nc: 0.0,
                gap_us: f64::INFINITY,
            }),
        }
    }
}

impl SpeedupPredictor {
    /// A predictor with no observations: it predicts zero speedup (never
    /// wait) until workers feed it real batch costs.
    pub fn new() -> Self {
        SpeedupPredictor::default()
    }

    /// Records one executed batch: `n` requests scored in `cost_us`.
    pub fn observe_batch(&self, n: usize, cost_us: f64) {
        if !(cost_us.is_finite() && cost_us >= 0.0) {
            return;
        }
        let n = n.max(1) as f64;
        let mut s = self.state.lock().expect("predictor lock");
        s.s_1 = s.s_1 * DECAY + 1.0;
        s.s_n = s.s_n * DECAY + n;
        s.s_nn = s.s_nn * DECAY + n * n;
        s.s_c = s.s_c * DECAY + cost_us;
        s.s_nc = s.s_nc * DECAY + n * cost_us;
    }

    /// Records the gap since the previous admission, microseconds.
    pub fn observe_arrival(&self, gap_us: f64) {
        if !(gap_us.is_finite() && gap_us >= 0.0) {
            return;
        }
        let mut s = self.state.lock().expect("predictor lock");
        if s.gap_us.is_finite() {
            s.gap_us = (1.0 - GAP_ALPHA) * s.gap_us + GAP_ALPHA * gap_us;
        } else {
            s.gap_us = gap_us;
        }
    }

    /// The fitted amortizable fixed cost `a` of one forward pass,
    /// microseconds: what every extra request coalesced into an existing
    /// batch saves over being scored in its own batch. `0` until the fit
    /// has enough weight, and never negative.
    pub fn per_request_speedup_us(&self) -> f64 {
        let s = self.state.lock().expect("predictor lock");
        fixed_cost_us(&s)
    }

    /// EWMA of the inter-admission gap, microseconds (`∞` before the
    /// second admission is seen).
    pub fn expected_gap_us(&self) -> f64 {
        self.state.lock().expect("predictor lock").gap_us
    }

    /// The adaptive close decision: should a non-empty batch wait for one
    /// more arrival? Waiting is worth it only when the predicted gap is
    /// shorter than the predicted per-request speedup — otherwise the
    /// marginal wait costs more latency than the bigger batch saves
    /// compute.
    pub fn worth_waiting(&self) -> bool {
        let s = self.state.lock().expect("predictor lock");
        s.gap_us < fixed_cost_us(&s)
    }
}

/// Solves the decayed least-squares line for its intercept `a`, clamped
/// to be non-negative (a negative intercept means the fit is noise).
fn fixed_cost_us(s: &PredictorState) -> f64 {
    if s.s_1 < MIN_WEIGHT {
        return 0.0;
    }
    let det = s.s_1 * s.s_nn - s.s_n * s.s_n;
    if det.abs() < 1e-9 {
        // All observed batches were the same size; the split between fixed
        // and marginal cost is unidentifiable. Treat the whole mean cost
        // as fixed: with single-request batches (the low-load signature)
        // that is exactly the amortizable amount.
        return (s.s_c / s.s_1).max(0.0);
    }
    let b = (s.s_1 * s.s_nc - s.s_n * s.s_c) / det;
    let a = (s.s_c - b * s.s_n) / s.s_1;
    a.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_defaults_to_adaptive() {
        assert_eq!(BatchPolicy::parse("fixed").unwrap(), BatchPolicy::FixedWindow);
        assert_eq!(BatchPolicy::parse("adaptive").unwrap(), BatchPolicy::Adaptive);
        assert!(BatchPolicy::parse("banana").is_err());
        assert_eq!(BatchPolicy::default(), BatchPolicy::Adaptive);
    }

    #[test]
    fn cold_predictor_never_waits() {
        let p = SpeedupPredictor::new();
        assert_eq!(p.per_request_speedup_us(), 0.0);
        assert!(!p.worth_waiting());
        // A handful of observations below MIN_WEIGHT still refuse to wait.
        for _ in 0..4 {
            p.observe_batch(1, 50.0);
            p.observe_arrival(1.0);
        }
        assert!(!p.worth_waiting());
    }

    #[test]
    fn fit_recovers_fixed_cost_from_mixed_batch_sizes() {
        let p = SpeedupPredictor::new();
        // compute(n) = 40 + 3n exactly.
        for &n in [1usize, 2, 4, 8, 16, 32].iter().cycle().take(120) {
            p.observe_batch(n, 40.0 + 3.0 * n as f64);
        }
        let a = p.per_request_speedup_us();
        assert!((a - 40.0).abs() < 2.0, "fitted fixed cost {a}, want ~40");
    }

    #[test]
    fn uniform_batch_sizes_fall_back_to_mean_cost() {
        let p = SpeedupPredictor::new();
        for _ in 0..50 {
            p.observe_batch(1, 25.0);
        }
        let a = p.per_request_speedup_us();
        assert!((a - 25.0).abs() < 1.0, "degenerate fit {a}, want ~25");
    }

    #[test]
    fn waiting_tracks_the_gap_to_speedup_ratio() {
        let p = SpeedupPredictor::new();
        for &n in [1usize, 4, 16].iter().cycle().take(90) {
            p.observe_batch(n, 100.0 + 2.0 * n as f64);
        }
        // Arrivals every 5us, speedup ~100us: waiting pays.
        for _ in 0..20 {
            p.observe_arrival(5.0);
        }
        assert!(p.worth_waiting(), "gap 5us vs speedup ~100us should wait");
        // Arrivals every 10ms: flush immediately.
        for _ in 0..60 {
            p.observe_arrival(10_000.0);
        }
        assert!(!p.worth_waiting(), "gap 10ms vs speedup ~100us should flush");
    }

    #[test]
    fn pathological_observations_are_ignored() {
        let p = SpeedupPredictor::new();
        p.observe_batch(3, f64::NAN);
        p.observe_batch(3, -1.0);
        p.observe_arrival(f64::NAN);
        p.observe_arrival(-2.0);
        assert_eq!(p.per_request_speedup_us(), 0.0);
        assert!(!p.worth_waiting());
    }
}
