//! The micro-batching request server.
//!
//! Requests enter through bounded admission (`submit` never blocks: the
//! global bound rejects with [`SubmitError::QueueFull`], a class bound
//! sheds with the typed [`SubmitError::ShedOverload`]). A dispatcher
//! thread drains the queue and coalesces same-(domain, class) requests
//! into micro-batches. When a batch closes is the [`BatchPolicy`]'s call:
//!
//! * [`BatchPolicy::FixedWindow`] flushes a buffer when it reaches
//!   `max_batch` requests or its oldest request has waited `max_wait_us`
//!   (PR 3 behavior — p50 is pinned to the window at low load).
//! * [`BatchPolicy::Adaptive`] flushes the moment the admission queue
//!   drains, *unless* the [`SpeedupPredictor`] says waiting pays: the
//!   expected gap to the next arrival is smaller than the per-request
//!   speedup a larger batch buys (the amortizable fixed cost of a forward
//!   pass, fit live from the same observations as
//!   `serve_batch_compute_us`). `max_wait_us` stays the hard cap, and a
//!   predicted arrival that fails to show within a few expected gaps
//!   flushes immediately — the policy can delay a request by at most a
//!   few inter-arrival times, never by the full window.
//!
//! Worker threads pull flushed batches, pin the current snapshot, expire
//! per-request deadlines, validate, and score the survivors in a single
//! forward pass. The dispatcher additionally sheds requests whose
//! deadline expires *while queued* (typed `DeadlineExceeded`, counted in
//! `serve_deadline_expired_total`) so an expired request never occupies a
//! batch slot or is scored late.
//!
//! Invariants:
//!
//! * Every **admitted** request receives exactly one [`ServeResult`] — on
//!   shutdown the dispatcher flushes its buffers and workers drain the batch
//!   queue before exiting, so no admitted request is ever dropped.
//! * Each batch is scored by exactly one snapshot version (pinned up front),
//!   and every response carries that version — under a hot swap, callers can
//!   attribute each score to the old or the new model, never a blend.
//! * Coalescing does not change scores for row-independent architectures:
//!   the kernels accumulate per output row in a fixed order, so a request's
//!   score is the same whether it was scored alone or inside a batch (STAR's
//!   partitioned normalization is the documented exception, see DESIGN §7).

use crate::batcher::{BatchPolicy, SpeedupPredictor};
use crate::engine::{ScoringEngine, ServeMetrics};
use crate::request::{Envelope, Response, ScoreRequest, ServeResult, SloClass, SubmitError};
use mamdr_obs::Tracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the micro-batching scheduler.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a buffer as soon as it holds this many requests.
    pub max_batch: usize,
    /// Hard cap on coalescing wait (microseconds): a buffer is flushed
    /// once its oldest request has waited this long regardless of policy.
    /// Under `FixedWindow` it is also the *only* age trigger. `0` disables
    /// coalescing: every request flushes alone.
    pub max_wait_us: u64,
    /// Admission bound: maximum requests in flight (queued, buffered or
    /// being scored). Submissions beyond it are rejected, never blocked.
    pub queue_cap: usize,
    /// Per-class admission bounds, indexed by [`SloClass::index`]. `0`
    /// inherits `queue_cap` (class unconstrained beyond the global bound).
    /// A class at its bound sheds with the typed
    /// [`SubmitError::ShedOverload`] while other classes keep admitting.
    pub class_caps: [usize; SloClass::COUNT],
    /// Scoring worker threads.
    pub n_workers: usize,
    /// When a coalescing buffer closes (see module docs).
    pub policy: BatchPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait_us: 500,
            queue_cap: 1024,
            class_caps: [0; SloClass::COUNT],
            n_workers: 2,
            policy: BatchPolicy::Adaptive,
        }
    }
}

impl ServeConfig {
    /// The effective admission bound of `class` (`0` inherits the global
    /// `queue_cap`).
    pub fn class_cap(&self, class: SloClass) -> usize {
        match self.class_caps[class.index()] {
            0 => self.queue_cap,
            n => n,
        }
    }
}

/// Handle for one admitted request; resolves to its [`ServeResult`].
pub struct Pending {
    id: u64,
    rx: mpsc::Receiver<ServeResult>,
}

impl Pending {
    /// The request id (matches the eventual result's id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the result arrives. Admitted requests always get exactly
    /// one result, even across server shutdown.
    pub fn wait(&self) -> ServeResult {
        self.rx.recv().expect("server replies to every admitted request")
    }

    /// Non-blocking check; `None` while the request is still in flight.
    pub fn poll(&self) -> Option<ServeResult> {
        self.rx.try_recv().ok()
    }
}

/// In-system request depth, global and per class. One release per
/// delivered result keeps `admitted = in-system + responded` exact.
pub(crate) struct Depths {
    total: AtomicI64,
    class: [AtomicI64; SloClass::COUNT],
}

impl Depths {
    fn new() -> Self {
        Depths { total: AtomicI64::new(0), class: [AtomicI64::new(0), AtomicI64::new(0)] }
    }

    fn release(&self, class: SloClass) -> i64 {
        self.class[class.index()].fetch_sub(1, Ordering::Relaxed);
        self.total.fetch_sub(1, Ordering::Relaxed) - 1
    }
}

/// The running serving stack: admission queues, dispatcher, workers.
pub struct Server {
    engine: Arc<ScoringEngine>,
    submit_tx: Option<SyncSender<Envelope>>,
    next_id: AtomicU64,
    depths: Arc<Depths>,
    config: ServeConfig,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the dispatcher and `config.n_workers` scoring workers against
    /// `engine`'s current snapshot (hot-swappable via [`ScoringEngine::publish`]).
    pub fn start(engine: Arc<ScoringEngine>, config: ServeConfig) -> Server {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be positive");
        assert!(config.queue_cap >= 1, "queue_cap must be positive");
        let (submit_tx, submit_rx) = mpsc::sync_channel(config.queue_cap);
        let (batch_tx, batch_rx) = mpsc::channel();
        let depths = Arc::new(Depths::new());
        let predictor = Arc::new(SpeedupPredictor::new());
        let dispatcher = {
            let cfg = config.clone();
            let metrics = engine.metrics().clone();
            let depths = Arc::clone(&depths);
            let predictor = Arc::clone(&predictor);
            std::thread::Builder::new()
                .name("serve-dispatch".into())
                .spawn(move || run_dispatcher(submit_rx, batch_tx, cfg, metrics, depths, predictor))
                .expect("spawn dispatcher")
        };
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let workers = (0..config.n_workers)
            .map(|i| {
                let rx = Arc::clone(&batch_rx);
                let engine = Arc::clone(&engine);
                let depths = Arc::clone(&depths);
                let predictor = Arc::clone(&predictor);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || run_worker(rx, engine, depths, predictor))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            engine,
            submit_tx: Some(submit_tx),
            next_id: AtomicU64::new(0),
            depths,
            config,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// Submits an [`SloClass::Interactive`] request. Never blocks: a full
    /// queue rejects with [`SubmitError::QueueFull`], a full class sheds
    /// with [`SubmitError::ShedOverload`]. `deadline` (relative to now) is
    /// enforced while queued and at worker pickup; expired requests are
    /// answered with [`ServeResult::DeadlineExceeded`] instead of being
    /// scored late.
    pub fn submit(
        &self,
        req: ScoreRequest,
        deadline: Option<Duration>,
    ) -> Result<Pending, SubmitError> {
        self.submit_class(req, deadline, SloClass::Interactive)
    }

    /// [`submit`](Self::submit) with an explicit service class.
    pub fn submit_class(
        &self,
        req: ScoreRequest,
        deadline: Option<Duration>,
        class: SloClass,
    ) -> Result<Pending, SubmitError> {
        let m = self.engine.metrics();
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::Closed)?;
        if self.depths.total.load(Ordering::Relaxed) >= self.config.queue_cap as i64 {
            m.rejected_total.inc();
            return Err(SubmitError::QueueFull);
        }
        let ci = class.index();
        if self.depths.class[ci].load(Ordering::Relaxed) >= self.config.class_cap(class) as i64 {
            m.shed_total[ci].inc();
            return Err(SubmitError::ShedOverload(class));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        let now = Instant::now();
        let env = Envelope {
            id,
            req,
            class,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            flushed: None,
            reply,
        };
        let d = self.depths.total.fetch_add(1, Ordering::Relaxed) + 1;
        self.depths.class[ci].fetch_add(1, Ordering::Relaxed);
        match tx.try_send(env) {
            Ok(()) => {
                m.requests_total.inc();
                m.queue_depth.set(d as f64);
                Ok(Pending { id, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.depths.release(class);
                m.rejected_total.inc();
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depths.release(class);
                Err(SubmitError::Closed)
            }
        }
    }

    /// The engine, for hot swaps (`engine().publish(...)`) and metrics.
    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    /// The scheduler configuration this server runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Graceful shutdown: stops admission, flushes every buffered request
    /// through scoring, and joins all threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.submit_tx.take());
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Coalescing buffers keyed by (domain, class) — a batch never mixes
/// domains (different Θ_d) or classes (different latency contracts).
type BufferKey = (usize, SloClass);

/// Drains the admission queue into per-(domain, class) buffers and closes
/// batches per the configured policy. Also the queue-side deadline
/// enforcer: expired buffered requests are shed here, never scored.
fn run_dispatcher(
    rx: Receiver<Envelope>,
    batch_tx: mpsc::Sender<Vec<Envelope>>,
    config: ServeConfig,
    metrics: ServeMetrics,
    depths: Arc<Depths>,
    predictor: Arc<SpeedupPredictor>,
) {
    let max_wait = Duration::from_micros(config.max_wait_us);
    let mut buffers: HashMap<BufferKey, Vec<Envelope>> = HashMap::new();
    let mut last_arrival: Option<Instant> = None;
    'outer: loop {
        // Sleep only until the next actionable instant: the oldest
        // buffered request's hard flush cap, or the earliest buffered
        // deadline (so an expiring request is shed on time, not when the
        // next unrelated event happens to wake us).
        let now = Instant::now();
        let next_due = buffers
            .values()
            .filter_map(|b| b.first())
            .map(|e| e.enqueued + max_wait)
            .chain(buffers.values().flatten().filter_map(|e| e.deadline))
            .min();
        let mut gap_elapsed = false;
        let timeout = match next_due {
            Some(t) => {
                let mut d = t.saturating_duration_since(now);
                // Adaptive holds are additionally bounded by the arrival
                // forecast: if the predicted next arrival is several gaps
                // overdue, stop waiting for it.
                if config.policy == BatchPolicy::Adaptive && !buffers.is_empty() {
                    let gap = predictor.expected_gap_us();
                    if gap.is_finite() {
                        let fallback = Duration::from_micros((4.0 * gap).min(1e9) as u64);
                        if fallback < d {
                            d = fallback;
                            gap_elapsed = true;
                        }
                    }
                }
                d
            }
            None => max_wait.max(Duration::from_millis(10)),
        };
        let mut timed_out = false;
        match rx.recv_timeout(timeout) {
            Ok(env) => {
                receive(env, &mut buffers, &mut last_arrival, &predictor);
                // Greedily drain whatever else is already queued: the
                // close decision below is made against a *drained* queue.
                loop {
                    match rx.try_recv() {
                        Ok(env) => receive(env, &mut buffers, &mut last_arrival, &predictor),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => break 'outer,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => timed_out = true,
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Queue-side deadline enforcement: shed expired requests now so
        // they never occupy a batch slot or get scored late.
        shed_expired(&mut buffers, &metrics, &depths);

        // Size trigger is policy-independent.
        flush_if(&mut buffers, &batch_tx, |b| b.len() >= config.max_batch);

        let now = Instant::now();
        match config.policy {
            BatchPolicy::FixedWindow => {
                flush_if(&mut buffers, &batch_tx, |b| {
                    b.first().is_some_and(|e| now.duration_since(e.enqueued) >= max_wait)
                });
            }
            BatchPolicy::Adaptive => {
                // The queue is drained. Hold open only if the predictor
                // says the next arrival comes sooner than the speedup it
                // would buy — and it hasn't already failed to show up.
                let age_capped = |b: &Vec<Envelope>| {
                    b.first().is_some_and(|e| now.duration_since(e.enqueued) >= max_wait)
                };
                if (timed_out && gap_elapsed) || !predictor.worth_waiting() {
                    flush_if(&mut buffers, &batch_tx, |b| !b.is_empty());
                } else {
                    flush_if(&mut buffers, &batch_tx, age_capped);
                }
            }
        }
    }
    // Shutdown: flush everything still buffered so every admitted request
    // gets its reply before the workers see the channel close.
    shed_expired(&mut buffers, &metrics, &depths);
    flush_if(&mut buffers, &batch_tx, |b| !b.is_empty());
}

/// Books one arrival into its buffer and feeds the inter-arrival EWMA.
fn receive(
    env: Envelope,
    buffers: &mut HashMap<BufferKey, Vec<Envelope>>,
    last_arrival: &mut Option<Instant>,
    predictor: &SpeedupPredictor,
) {
    if let Some(prev) = *last_arrival {
        predictor.observe_arrival(env.enqueued.duration_since(prev).as_micros() as f64);
    }
    *last_arrival = Some(env.enqueued);
    buffers.entry((env.req.domain, env.class)).or_default().push(env);
}

/// Flushes every buffer satisfying `pred`, interactive classes first so
/// tight-SLO batches reach the worker queue ahead of bulk ones.
fn flush_if(
    buffers: &mut HashMap<BufferKey, Vec<Envelope>>,
    batch_tx: &mpsc::Sender<Vec<Envelope>>,
    pred: impl Fn(&Vec<Envelope>) -> bool,
) {
    let mut due: Vec<BufferKey> =
        buffers.iter().filter(|(_, b)| pred(b)).map(|(&k, _)| k).collect();
    due.sort_by_key(|&(domain, class)| (class.index(), domain));
    for key in due {
        let batch = buffers.remove(&key).expect("listed as due");
        if !batch.is_empty() {
            let _ = batch_tx.send(stamp_flushed(batch));
        }
    }
}

/// Sheds every buffered request whose deadline has passed: typed
/// `DeadlineExceeded` reply, counted in `serve_deadline_expired_total`.
fn shed_expired(
    buffers: &mut HashMap<BufferKey, Vec<Envelope>>,
    metrics: &ServeMetrics,
    depths: &Depths,
) {
    let now = Instant::now();
    for buf in buffers.values_mut() {
        if buf.iter().any(|e| e.deadline.is_some_and(|d| now >= d)) {
            let mut kept = Vec::with_capacity(buf.len());
            for env in buf.drain(..) {
                if env.deadline.is_some_and(|d| now >= d) {
                    metrics.deadline_expired_total.inc();
                    finish(metrics, depths, &env, ServeResult::DeadlineExceeded { id: env.id });
                } else {
                    kept.push(env);
                }
            }
            *buf = kept;
        }
    }
    buffers.retain(|_, b| !b.is_empty());
}

/// Marks every request in a flushed batch with the flush instant (one clock
/// read per batch), so the span chain can split coalescing wait from
/// batch-queue wait.
fn stamp_flushed(mut batch: Vec<Envelope>) -> Vec<Envelope> {
    let now = Instant::now();
    for env in &mut batch {
        env.flushed = Some(now);
    }
    batch
}

/// Pulls flushed batches and scores them until the dispatcher hangs up and
/// the batch queue is drained.
fn run_worker(
    batch_rx: Arc<Mutex<Receiver<Vec<Envelope>>>>,
    engine: Arc<ScoringEngine>,
    depths: Arc<Depths>,
    predictor: Arc<SpeedupPredictor>,
) {
    loop {
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => break,
            }
        };
        score_batch(&engine, &depths, &predictor, batch);
    }
}

fn score_batch(
    engine: &ScoringEngine,
    depths: &Depths,
    predictor: &SpeedupPredictor,
    batch: Vec<Envelope>,
) {
    let m = engine.metrics().clone();
    let tracer = engine.tracer().map(Arc::clone);
    // Pin one snapshot for the whole batch: every response in it is scored
    // by exactly this version, even if a hot swap lands mid-flight.
    let snap = engine.snapshot();
    let now = Instant::now();
    let mut live: Vec<Envelope> = Vec::with_capacity(batch.len());
    for env in batch {
        if env.deadline.is_some_and(|d| now >= d) {
            m.deadline_exceeded_total.inc();
            finish(&m, depths, &env, ServeResult::DeadlineExceeded { id: env.id });
            if let Some(t) = tracer.as_deref() {
                record_terminal_span(t, &env, "deadline_exceeded");
            }
        } else if let Err(error) = snap.validate(&env.req) {
            finish(&m, depths, &env, ServeResult::Invalid { id: env.id, error });
            if let Some(t) = tracer.as_deref() {
                record_terminal_span(t, &env, "invalid");
            }
        } else {
            live.push(env);
        }
    }
    if live.is_empty() {
        return;
    }
    let domain = live[0].req.domain;
    let reqs: Vec<ScoreRequest> = live.iter().map(|e| e.req.clone()).collect();
    let score_start = Instant::now();
    for env in &live {
        m.queue_wait_us.record(score_start.duration_since(env.enqueued).as_micros() as f64);
    }
    let scores = snap.score(domain, &reqs);
    let score_end = Instant::now();
    let compute_us = score_end.duration_since(score_start).as_micros() as f64;
    m.batch_compute_us.record(compute_us);
    predictor.observe_batch(live.len(), compute_us);
    m.batches_total.inc();
    m.batch_size.record(live.len() as f64);
    for (env, score) in live.iter().zip(scores) {
        m.latency_seconds.record(env.enqueued.elapsed().as_secs_f64());
        let resp = Response { id: env.id, score, snapshot_version: snap.version() };
        finish(&m, depths, env, ServeResult::Scored(resp));
        if let Some(t) = tracer.as_deref() {
            record_request_chain(t, env, score_start, score_end);
        }
    }
}

/// Records the lifecycle span chain of one scored request after its reply
/// was sent. The chain tiles the request's wall-clock with no gaps:
/// `serve.queue` (admission → dispatcher flush), `serve.coalesce` (flush →
/// forward-pass start), `serve.score`, `serve.respond` — all children of
/// one `serve.request` root. Spans are recorded post-hoc from instants
/// stamped along the way, so the scoring path itself never allocates a
/// span guard.
fn record_request_chain(t: &Tracer, env: &Envelope, score_start: Instant, score_end: Instant) {
    let respond_end = Instant::now();
    let trace_id = t.alloc_id();
    let root = t.alloc_id();
    // A shutdown-drained request can reach a worker without a dispatcher
    // flush stamp; its whole wait then counts as coalescing time.
    let flushed = env.flushed.unwrap_or(env.enqueued);
    t.record_span_at("serve.queue", trace_id, t.alloc_id(), root, env.enqueued, flushed, vec![]);
    t.record_span_at("serve.coalesce", trace_id, t.alloc_id(), root, flushed, score_start, vec![]);
    t.record_span_at("serve.score", trace_id, t.alloc_id(), root, score_start, score_end, vec![]);
    t.record_span_at("serve.respond", trace_id, t.alloc_id(), root, score_end, respond_end, vec![]);
    t.record_span_at(
        "serve.request",
        trace_id,
        root,
        0,
        env.enqueued,
        respond_end,
        vec![("request", env.id)],
    );
}

/// Records a bare `serve.request` span for a request that terminated
/// without scoring (deadline exceeded or invalid).
fn record_terminal_span(t: &Tracer, env: &Envelope, outcome: &'static str) {
    let end = Instant::now();
    let trace_id = t.alloc_id();
    let root = t.alloc_id();
    let code = match outcome {
        "deadline_exceeded" => 1,
        _ => 2,
    };
    t.record_span_at(
        "serve.request",
        trace_id,
        root,
        0,
        env.enqueued,
        end,
        vec![("request", env.id), ("terminal", code)],
    );
}

/// Delivers one result: count it, release the admission slots, then reply
/// (ignoring a hung-up client). Counting happens *before* the reply so a
/// client that reads the metrics right after `Pending::wait` returns sees
/// its own response counted.
fn finish(m: &ServeMetrics, depths: &Depths, env: &Envelope, result: ServeResult) {
    m.responses_total.inc();
    let d = depths.release(env.class);
    m.queue_depth.set(d as f64);
    let _ = env.reply.send(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests_support::tiny_dense_snapshot;
    use mamdr_obs::MetricsRegistry;

    fn request(domain: usize, i: u32) -> ScoreRequest {
        ScoreRequest::new(domain, i % 30, i % 20, i % 4, i % 5)
    }

    #[test]
    fn serves_requests_across_domains() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let pending: Vec<Pending> = (0..40)
            .map(|i| server.submit(request(i as usize % 2, i), None).expect("admitted"))
            .collect();
        for p in &pending {
            match p.wait() {
                ServeResult::Scored(r) => {
                    assert_eq!(r.id, p.id());
                    assert!((0.0..=1.0).contains(&r.score));
                    assert_eq!(r.snapshot_version, 1);
                }
                other => panic!("expected score, got {other:?}"),
            }
        }
        server.shutdown();
        assert_eq!(registry.counter("serve_requests_total").get(), 40);
        assert_eq!(registry.counter("serve_responses_total").get(), 40);
        assert_eq!(registry.counter("serve_rejected_total").get(), 0);
        assert!(registry.counter("serve_batches_total").get() >= 1);
    }

    #[test]
    fn full_queue_rejects_and_drains_on_shutdown() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // Fixed window with a huge batch + wait: nothing flushes, so depth
        // can't drain and the cap is hit deterministically. (The adaptive
        // policy would flush on queue drain, defeating the setup.)
        let config = ServeConfig {
            max_batch: 1000,
            max_wait_us: 10_000_000,
            queue_cap: 8,
            n_workers: 1,
            policy: BatchPolicy::FixedWindow,
            ..ServeConfig::default()
        };
        let server = Server::start(Arc::clone(&engine), config);
        let admitted: Vec<Pending> =
            (0..8).map(|i| server.submit(request(0, i), None).expect("under cap")).collect();
        assert!(matches!(server.submit(request(0, 99), None), Err(SubmitError::QueueFull)));
        assert_eq!(registry.counter("serve_rejected_total").get(), 1);
        // Shutdown flushes the buffered batch: every admitted request still
        // gets scored.
        server.shutdown();
        for p in &admitted {
            assert!(matches!(p.wait(), ServeResult::Scored(_)));
        }
        assert_eq!(registry.counter("serve_responses_total").get(), 8);
        assert_eq!(registry.gauge("serve_queue_depth").get(), 0.0);
    }

    #[test]
    fn class_at_its_bound_sheds_typed_while_other_class_admits() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // Bulk budget of 2; fixed window so nothing drains mid-test.
        let config = ServeConfig {
            max_batch: 1000,
            max_wait_us: 10_000_000,
            queue_cap: 64,
            class_caps: [0, 2],
            n_workers: 1,
            policy: BatchPolicy::FixedWindow,
        };
        let server = Server::start(Arc::clone(&engine), config);
        let b1 = server.submit_class(request(0, 1), None, SloClass::Bulk).expect("bulk 1");
        let b2 = server.submit_class(request(0, 2), None, SloClass::Bulk).expect("bulk 2");
        // The bulk class is at depth: typed shed, not QueueFull.
        assert!(matches!(
            server.submit_class(request(0, 3), None, SloClass::Bulk),
            Err(SubmitError::ShedOverload(SloClass::Bulk))
        ));
        // Interactive admission is untouched by bulk pressure.
        let i1 = server.submit_class(request(0, 4), None, SloClass::Interactive).expect("inter");
        server.shutdown();
        for p in [&b1, &b2, &i1] {
            assert!(matches!(p.wait(), ServeResult::Scored(_)));
        }
        assert_eq!(registry.counter("serve_shed_total{class=\"bulk\"}").get(), 1);
        assert_eq!(registry.counter("serve_shed_total{class=\"interactive\"}").get(), 0);
        assert_eq!(registry.counter("serve_rejected_total").get(), 0);
        assert_eq!(registry.counter("serve_responses_total").get(), 3);
    }

    #[test]
    fn queued_deadline_expiry_is_shed_by_the_dispatcher() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // Fixed 200ms window: without queue-side expiry, a 5ms deadline
        // would sit buffered for the full window and only be caught at
        // worker pickup. The dispatcher must shed it at ~its deadline.
        let config = ServeConfig {
            max_batch: 100,
            max_wait_us: 200_000,
            queue_cap: 16,
            n_workers: 1,
            policy: BatchPolicy::FixedWindow,
            ..ServeConfig::default()
        };
        let server = Server::start(Arc::clone(&engine), config);
        let doomed =
            server.submit(request(0, 1), Some(Duration::from_millis(5))).expect("admitted");
        let t0 = Instant::now();
        assert!(matches!(doomed.wait(), ServeResult::DeadlineExceeded { .. }));
        let waited = t0.elapsed();
        assert!(
            waited < Duration::from_millis(150),
            "expired request waited the full window: {waited:?}"
        );
        server.shutdown();
        assert_eq!(registry.counter("serve_deadline_expired_total").get(), 1);
        assert_eq!(registry.counter("serve_responses_total").get(), 1);
        assert_eq!(registry.gauge("serve_queue_depth").get(), 0.0);
    }

    #[test]
    fn expired_deadlines_are_reported_not_scored() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // 50ms coalescing window guarantees the zero deadline has expired by
        // the time the dispatcher or a worker sees the request.
        let config = ServeConfig {
            max_batch: 100,
            max_wait_us: 50_000,
            queue_cap: 16,
            n_workers: 1,
            policy: BatchPolicy::FixedWindow,
            ..ServeConfig::default()
        };
        let server = Server::start(engine, config);
        let expired = server.submit(request(0, 1), Some(Duration::ZERO)).expect("admitted");
        let fine = server.submit(request(0, 2), Some(Duration::from_secs(60))).expect("admitted");
        assert!(matches!(expired.wait(), ServeResult::DeadlineExceeded { .. }));
        assert!(matches!(fine.wait(), ServeResult::Scored(_)));
        server.shutdown();
        // The expiry is caught queue-side or at worker pickup depending on
        // timing; either way it is counted exactly once.
        let expired_total = registry.counter("serve_deadline_expired_total").get()
            + registry.counter("serve_deadline_exceeded_total").get();
        assert_eq!(expired_total, 1);
        assert_eq!(registry.counter("serve_responses_total").get(), 2);
    }

    #[test]
    fn adaptive_policy_flushes_on_queue_drain_at_low_load() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // A 5s hard window: if a lone request's latency stays far under
        // it, the adaptive policy flushed on queue drain instead of
        // waiting out the window.
        let config = ServeConfig {
            max_batch: 64,
            max_wait_us: 5_000_000,
            queue_cap: 64,
            n_workers: 1,
            policy: BatchPolicy::Adaptive,
            ..ServeConfig::default()
        };
        let server = Server::start(engine, config);
        for i in 0..5 {
            let t0 = Instant::now();
            let p = server.submit(request(0, i), None).expect("admitted");
            assert!(matches!(p.wait(), ServeResult::Scored(_)));
            let lat = t0.elapsed();
            assert!(
                lat < Duration::from_millis(500),
                "adaptive p50 pinned to the window: lone request took {lat:?}"
            );
        }
        server.shutdown();
        assert_eq!(registry.counter("serve_responses_total").get(), 5);
    }

    #[test]
    fn adaptive_and_fixed_policies_score_identically() {
        let reqs: Vec<ScoreRequest> = (0..32).map(|i| request(i as usize % 2, i)).collect();
        let mut scores: Vec<Vec<u32>> = Vec::new();
        for policy in [BatchPolicy::FixedWindow, BatchPolicy::Adaptive] {
            let registry = MetricsRegistry::new();
            let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
            let server = Server::start(engine, ServeConfig { policy, ..ServeConfig::default() });
            let pending: Vec<Pending> =
                reqs.iter().map(|r| server.submit(r.clone(), None).expect("admitted")).collect();
            let bits = pending
                .iter()
                .map(|p| match p.wait() {
                    ServeResult::Scored(r) => r.score.to_bits(),
                    other => panic!("expected score, got {other:?}"),
                })
                .collect();
            server.shutdown();
            scores.push(bits);
        }
        assert_eq!(scores[0], scores[1], "batching policy changed a served score");
    }

    #[test]
    fn invalid_requests_get_an_error_result() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(engine, ServeConfig::default());
        let mut bad = request(0, 1);
        bad.user = 10_000;
        let p = server.submit(bad, None).expect("admission does not validate");
        match p.wait() {
            ServeResult::Invalid { id, error } => {
                assert_eq!(id, p.id());
                assert!(error.contains("user"), "{error}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn submissions_from_many_threads_all_resolve() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(engine, ServeConfig::default());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let server = &server;
                s.spawn(move || {
                    for i in 0..50 {
                        let p = server
                            .submit(request((t % 2) as usize, t * 100 + i), None)
                            .expect("under cap");
                        assert!(matches!(p.wait(), ServeResult::Scored(_)));
                    }
                });
            }
        });
        server.shutdown();
        assert_eq!(registry.counter("serve_responses_total").get(), 200);
    }
}
