//! The micro-batching request server.
//!
//! Requests enter through a bounded admission queue (`submit` never blocks:
//! a full queue is an explicit [`SubmitError::QueueFull`]). A dispatcher
//! thread drains the queue and coalesces same-domain requests into
//! micro-batches, flushing a domain when it reaches `max_batch` requests or
//! its oldest request has waited `max_wait_us`. Worker threads pull flushed
//! batches, pin the current snapshot, expire per-request deadlines, validate,
//! and score the survivors in a single forward pass.
//!
//! Invariants:
//!
//! * Every **admitted** request receives exactly one [`ServeResult`] — on
//!   shutdown the dispatcher flushes its buffers and workers drain the batch
//!   queue before exiting, so no admitted request is ever dropped.
//! * Each batch is scored by exactly one snapshot version (pinned up front),
//!   and every response carries that version — under a hot swap, callers can
//!   attribute each score to the old or the new model, never a blend.
//! * Coalescing does not change scores for row-independent architectures:
//!   the kernels accumulate per output row in a fixed order, so a request's
//!   score is the same whether it was scored alone or inside a batch (STAR's
//!   partitioned normalization is the documented exception, see DESIGN §7).

use crate::engine::{ScoringEngine, ServeMetrics};
use crate::request::{Envelope, Response, ScoreRequest, ServeResult, SubmitError};
use mamdr_obs::Tracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the micro-batching scheduler.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a domain's buffer as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a domain's buffer once its oldest request has waited this long
    /// (microseconds). `0` disables coalescing: every request flushes alone.
    pub max_wait_us: u64,
    /// Admission bound: maximum requests in flight (queued, buffered or
    /// being scored). Submissions beyond it are rejected, never blocked.
    pub queue_cap: usize,
    /// Scoring worker threads.
    pub n_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 32, max_wait_us: 500, queue_cap: 1024, n_workers: 2 }
    }
}

/// Handle for one admitted request; resolves to its [`ServeResult`].
pub struct Pending {
    id: u64,
    rx: mpsc::Receiver<ServeResult>,
}

impl Pending {
    /// The request id (matches the eventual result's id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the result arrives. Admitted requests always get exactly
    /// one result, even across server shutdown.
    pub fn wait(&self) -> ServeResult {
        self.rx.recv().expect("server replies to every admitted request")
    }

    /// Non-blocking check; `None` while the request is still in flight.
    pub fn poll(&self) -> Option<ServeResult> {
        self.rx.try_recv().ok()
    }
}

/// The running serving stack: admission queue, dispatcher, workers.
pub struct Server {
    engine: Arc<ScoringEngine>,
    submit_tx: Option<SyncSender<Envelope>>,
    next_id: AtomicU64,
    depth: Arc<AtomicI64>,
    queue_cap: usize,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the dispatcher and `config.n_workers` scoring workers against
    /// `engine`'s current snapshot (hot-swappable via [`ScoringEngine::publish`]).
    pub fn start(engine: Arc<ScoringEngine>, config: ServeConfig) -> Server {
        assert!(config.n_workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be positive");
        assert!(config.queue_cap >= 1, "queue_cap must be positive");
        let (submit_tx, submit_rx) = mpsc::sync_channel(config.queue_cap);
        let (batch_tx, batch_rx) = mpsc::channel();
        let max_batch = config.max_batch;
        let max_wait = Duration::from_micros(config.max_wait_us);
        let dispatcher = std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || run_dispatcher(submit_rx, batch_tx, max_batch, max_wait))
            .expect("spawn dispatcher");
        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let depth = Arc::new(AtomicI64::new(0));
        let workers = (0..config.n_workers)
            .map(|i| {
                let rx = Arc::clone(&batch_rx);
                let engine = Arc::clone(&engine);
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || run_worker(rx, engine, depth))
                    .expect("spawn worker")
            })
            .collect();
        Server {
            engine,
            submit_tx: Some(submit_tx),
            next_id: AtomicU64::new(0),
            depth,
            queue_cap: config.queue_cap,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// Submits a request. Never blocks: a full queue rejects with
    /// [`SubmitError::QueueFull`]. `deadline` (relative to now) is checked
    /// when a worker picks the request up; expired requests are answered
    /// with [`ServeResult::DeadlineExceeded`] instead of being scored.
    pub fn submit(
        &self,
        req: ScoreRequest,
        deadline: Option<Duration>,
    ) -> Result<Pending, SubmitError> {
        let m = self.engine.metrics();
        let tx = self.submit_tx.as_ref().ok_or(SubmitError::Closed)?;
        if self.depth.load(Ordering::Relaxed) >= self.queue_cap as i64 {
            m.rejected_total.inc();
            return Err(SubmitError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        let now = Instant::now();
        let env = Envelope {
            id,
            req,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            flushed: None,
            reply,
        };
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(env) {
            Ok(()) => {
                m.requests_total.inc();
                m.queue_depth.set(d as f64);
                Ok(Pending { id, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                m.rejected_total.inc();
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Closed)
            }
        }
    }

    /// The engine, for hot swaps (`engine().publish(...)`) and metrics.
    pub fn engine(&self) -> &Arc<ScoringEngine> {
        &self.engine
    }

    /// Graceful shutdown: stops admission, flushes every buffered request
    /// through scoring, and joins all threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.submit_tx.take());
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Drains the admission queue into per-domain buffers; flushes on size or age.
fn run_dispatcher(
    rx: Receiver<Envelope>,
    batch_tx: mpsc::Sender<Vec<Envelope>>,
    max_batch: usize,
    max_wait: Duration,
) {
    let mut buffers: HashMap<usize, Vec<Envelope>> = HashMap::new();
    loop {
        // Sleep only until the oldest buffered request is due to flush.
        let timeout = buffers
            .values()
            .filter_map(|b| b.first())
            .map(|e| (e.enqueued + max_wait).saturating_duration_since(Instant::now()))
            .min()
            .unwrap_or(max_wait.max(Duration::from_millis(10)));
        match rx.recv_timeout(timeout) {
            Ok(env) => {
                let d = env.req.domain;
                let buf = buffers.entry(d).or_default();
                buf.push(env);
                if buf.len() >= max_batch {
                    let batch = buffers.remove(&d).expect("just filled");
                    let _ = batch_tx.send(stamp_flushed(batch));
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let now = Instant::now();
        let due: Vec<usize> = buffers
            .iter()
            .filter(|(_, b)| b.first().is_some_and(|e| now.duration_since(e.enqueued) >= max_wait))
            .map(|(&d, _)| d)
            .collect();
        for d in due {
            let batch = buffers.remove(&d).expect("listed as due");
            let _ = batch_tx.send(stamp_flushed(batch));
        }
    }
    // Shutdown: flush everything still buffered so every admitted request
    // gets its reply before the workers see the channel close.
    for (_, batch) in buffers.drain() {
        if !batch.is_empty() {
            let _ = batch_tx.send(stamp_flushed(batch));
        }
    }
}

/// Marks every request in a flushed batch with the flush instant (one clock
/// read per batch), so the span chain can split coalescing wait from
/// batch-queue wait.
fn stamp_flushed(mut batch: Vec<Envelope>) -> Vec<Envelope> {
    let now = Instant::now();
    for env in &mut batch {
        env.flushed = Some(now);
    }
    batch
}

/// Pulls flushed batches and scores them until the dispatcher hangs up and
/// the batch queue is drained.
fn run_worker(
    batch_rx: Arc<Mutex<Receiver<Vec<Envelope>>>>,
    engine: Arc<ScoringEngine>,
    depth: Arc<AtomicI64>,
) {
    loop {
        let batch = {
            let rx = batch_rx.lock().expect("batch queue lock");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => break,
            }
        };
        score_batch(&engine, &depth, batch);
    }
}

fn score_batch(engine: &ScoringEngine, depth: &AtomicI64, batch: Vec<Envelope>) {
    let m = engine.metrics().clone();
    let tracer = engine.tracer().map(Arc::clone);
    // Pin one snapshot for the whole batch: every response in it is scored
    // by exactly this version, even if a hot swap lands mid-flight.
    let snap = engine.snapshot();
    let now = Instant::now();
    let mut live: Vec<Envelope> = Vec::with_capacity(batch.len());
    for env in batch {
        if env.deadline.is_some_and(|d| now >= d) {
            m.deadline_exceeded_total.inc();
            finish(&m, depth, &env, ServeResult::DeadlineExceeded { id: env.id });
            if let Some(t) = tracer.as_deref() {
                record_terminal_span(t, &env, "deadline_exceeded");
            }
        } else if let Err(error) = snap.validate(&env.req) {
            finish(&m, depth, &env, ServeResult::Invalid { id: env.id, error });
            if let Some(t) = tracer.as_deref() {
                record_terminal_span(t, &env, "invalid");
            }
        } else {
            live.push(env);
        }
    }
    if live.is_empty() {
        return;
    }
    let domain = live[0].req.domain;
    let reqs: Vec<ScoreRequest> = live.iter().map(|e| e.req.clone()).collect();
    let score_start = Instant::now();
    for env in &live {
        m.queue_wait_us.record(score_start.duration_since(env.enqueued).as_micros() as f64);
    }
    let scores = snap.score(domain, &reqs);
    let score_end = Instant::now();
    m.batch_compute_us.record(score_end.duration_since(score_start).as_micros() as f64);
    m.batches_total.inc();
    m.batch_size.record(live.len() as f64);
    for (env, score) in live.iter().zip(scores) {
        m.latency_seconds.record(env.enqueued.elapsed().as_secs_f64());
        let resp = Response { id: env.id, score, snapshot_version: snap.version() };
        finish(&m, depth, env, ServeResult::Scored(resp));
        if let Some(t) = tracer.as_deref() {
            record_request_chain(t, env, score_start, score_end);
        }
    }
}

/// Records the lifecycle span chain of one scored request after its reply
/// was sent. The chain tiles the request's wall-clock with no gaps:
/// `serve.queue` (admission → dispatcher flush), `serve.coalesce` (flush →
/// forward-pass start), `serve.score`, `serve.respond` — all children of
/// one `serve.request` root. Spans are recorded post-hoc from instants
/// stamped along the way, so the scoring path itself never allocates a
/// span guard.
fn record_request_chain(t: &Tracer, env: &Envelope, score_start: Instant, score_end: Instant) {
    let respond_end = Instant::now();
    let trace_id = t.alloc_id();
    let root = t.alloc_id();
    // A shutdown-drained request can reach a worker without a dispatcher
    // flush stamp; its whole wait then counts as coalescing time.
    let flushed = env.flushed.unwrap_or(env.enqueued);
    t.record_span_at("serve.queue", trace_id, t.alloc_id(), root, env.enqueued, flushed, vec![]);
    t.record_span_at("serve.coalesce", trace_id, t.alloc_id(), root, flushed, score_start, vec![]);
    t.record_span_at("serve.score", trace_id, t.alloc_id(), root, score_start, score_end, vec![]);
    t.record_span_at("serve.respond", trace_id, t.alloc_id(), root, score_end, respond_end, vec![]);
    t.record_span_at(
        "serve.request",
        trace_id,
        root,
        0,
        env.enqueued,
        respond_end,
        vec![("request", env.id)],
    );
}

/// Records a bare `serve.request` span for a request that terminated
/// without scoring (deadline exceeded or invalid).
fn record_terminal_span(t: &Tracer, env: &Envelope, outcome: &'static str) {
    let end = Instant::now();
    let trace_id = t.alloc_id();
    let root = t.alloc_id();
    let code = match outcome {
        "deadline_exceeded" => 1,
        _ => 2,
    };
    t.record_span_at(
        "serve.request",
        trace_id,
        root,
        0,
        env.enqueued,
        end,
        vec![("request", env.id), ("terminal", code)],
    );
}

/// Delivers one result: count it, release the admission slot, then reply
/// (ignoring a hung-up client). Counting happens *before* the reply so a
/// client that reads the metrics right after `Pending::wait` returns sees
/// its own response counted.
fn finish(m: &ServeMetrics, depth: &AtomicI64, env: &Envelope, result: ServeResult) {
    m.responses_total.inc();
    let d = depth.fetch_sub(1, Ordering::Relaxed) - 1;
    m.queue_depth.set(d as f64);
    let _ = env.reply.send(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests_support::tiny_dense_snapshot;
    use mamdr_obs::MetricsRegistry;

    fn request(domain: usize, i: u32) -> ScoreRequest {
        ScoreRequest::new(domain, i % 30, i % 20, i % 4, i % 5)
    }

    #[test]
    fn serves_requests_across_domains() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let pending: Vec<Pending> = (0..40)
            .map(|i| server.submit(request(i as usize % 2, i), None).expect("admitted"))
            .collect();
        for p in &pending {
            match p.wait() {
                ServeResult::Scored(r) => {
                    assert_eq!(r.id, p.id());
                    assert!((0.0..=1.0).contains(&r.score));
                    assert_eq!(r.snapshot_version, 1);
                }
                other => panic!("expected score, got {other:?}"),
            }
        }
        server.shutdown();
        assert_eq!(registry.counter("serve_requests_total").get(), 40);
        assert_eq!(registry.counter("serve_responses_total").get(), 40);
        assert_eq!(registry.counter("serve_rejected_total").get(), 0);
        assert!(registry.counter("serve_batches_total").get() >= 1);
    }

    #[test]
    fn full_queue_rejects_and_drains_on_shutdown() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // Huge batch + wait: nothing flushes, so depth can't drain and the
        // cap is hit deterministically.
        let config =
            ServeConfig { max_batch: 1000, max_wait_us: 10_000_000, queue_cap: 8, n_workers: 1 };
        let server = Server::start(Arc::clone(&engine), config);
        let admitted: Vec<Pending> =
            (0..8).map(|i| server.submit(request(0, i), None).expect("under cap")).collect();
        assert!(matches!(server.submit(request(0, 99), None), Err(SubmitError::QueueFull)));
        assert_eq!(registry.counter("serve_rejected_total").get(), 1);
        // Shutdown flushes the buffered batch: every admitted request still
        // gets scored.
        server.shutdown();
        for p in &admitted {
            assert!(matches!(p.wait(), ServeResult::Scored(_)));
        }
        assert_eq!(registry.counter("serve_responses_total").get(), 8);
        assert_eq!(registry.gauge("serve_queue_depth").get(), 0.0);
    }

    #[test]
    fn expired_deadlines_are_reported_not_scored() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        // 50ms coalescing window guarantees the zero deadline has expired by
        // the time a worker sees the request.
        let config =
            ServeConfig { max_batch: 100, max_wait_us: 50_000, queue_cap: 16, n_workers: 1 };
        let server = Server::start(engine, config);
        let expired = server.submit(request(0, 1), Some(Duration::ZERO)).expect("admitted");
        let fine = server.submit(request(0, 2), Some(Duration::from_secs(60))).expect("admitted");
        assert!(matches!(expired.wait(), ServeResult::DeadlineExceeded { .. }));
        assert!(matches!(fine.wait(), ServeResult::Scored(_)));
        server.shutdown();
        assert_eq!(registry.counter("serve_deadline_exceeded_total").get(), 1);
        assert_eq!(registry.counter("serve_responses_total").get(), 2);
    }

    #[test]
    fn invalid_requests_get_an_error_result() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(engine, ServeConfig::default());
        let mut bad = request(0, 1);
        bad.user = 10_000;
        let p = server.submit(bad, None).expect("admission does not validate");
        match p.wait() {
            ServeResult::Invalid { id, error } => {
                assert_eq!(id, p.id());
                assert!(error.contains("user"), "{error}");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn submissions_from_many_threads_all_resolve() {
        let registry = MetricsRegistry::new();
        let engine = Arc::new(ScoringEngine::new(tiny_dense_snapshot(1), &registry));
        let server = Server::start(engine, ServeConfig::default());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let server = &server;
                s.spawn(move || {
                    for i in 0..50 {
                        let p = server
                            .submit(request((t % 2) as usize, t * 100 + i), None)
                            .expect("under cap");
                        assert!(matches!(p.wait(), ServeResult::Scored(_)));
                    }
                });
            }
        });
        server.shutdown();
        assert_eq!(registry.counter("serve_responses_total").get(), 200);
    }
}
