//! The frozen serving artifact: an immutable, versioned snapshot of a
//! trained model, composed per domain once at load.
//!
//! Training produces Θ = θS + θi (paper Eq. 4): one shared flat vector plus
//! per-domain specializations. Serving must not pay the composition on the
//! request path, so a [`ServingSnapshot`] materializes the effective Θ_d of
//! every domain into its own [`ParamStore`] at construction and stays
//! immutable afterwards — scoring threads share it through an `Arc` with no
//! locks and no copies.
//!
//! Two backends cover the repo's two training paths:
//!
//! * **Dense** — a [`TrainedModel`] from any `mamdr-core` framework plus
//!   the [`ModelSpec`] needed to rebuild the architecture.
//! * **Embedding** — the RAW embedding scorer state of the `mamdr-ps`
//!   distributed trainer, loaded from a parameter server (or a checkpoint
//!   via [`mamdr_ps::checkpoint`]).
//!
//! On-disk format (little-endian), extending `nn/persist.rs`'s conventions
//! with a trailing FNV-1a digest so a flipped bit anywhere in the file is a
//! load error:
//!
//! ```text
//! magic "MAMDRSV1"
//! payload (backend-tagged, see `encode_payload`)
//! u64 fnv1a-64 digest of the payload
//! ```

use crate::request::ScoreRequest;
use mamdr_autodiff::tape::stable_sigmoid;
use mamdr_core::env::DomainParams;
use mamdr_core::TrainedModel;
use mamdr_data::Batch;
use mamdr_models::{build_model, CtrModel, FeatureConfig, ModelConfig, ModelKind};
use mamdr_nn::persist::PersistError;
use mamdr_nn::ParamStore;
use mamdr_ps::{model as ps_model, ParamKey, ParameterServer};
use mamdr_tensor::Tensor;
use mamdr_util::{read_f32_section, write_f32_section, Checksum};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MAMDRSV1";

/// Parameter-store init seed when rebuilding a model whose values are then
/// overwritten from the snapshot; any constant works, it never leaks into
/// served scores.
const REBUILD_SEED: u64 = 0x5EED;

/// A snapshot error.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a valid snapshot (bad magic, framing, checksum).
    Corrupt(String),
    /// The snapshot is well-formed but inconsistent with itself or the
    /// model it describes (wrong flat length, bad domain count, ...).
    Invalid(String),
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => SnapshotError::Io(e),
            PersistError::Mismatch(m) => SnapshotError::Corrupt(m),
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "I/O error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapshotError::Invalid(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Everything needed to rebuild a dense architecture for serving.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The architecture.
    pub kind: ModelKind,
    /// Feature-space sizes the model embeds.
    pub features: FeatureConfig,
    /// Architecture hyper-parameters.
    pub config: ModelConfig,
    /// Number of domains the model routes between.
    pub n_domains: usize,
}

enum Backend {
    /// A dense CTR model; `domains[d]` holds the materialized Θ_d.
    Dense {
        spec: ModelSpec,
        model: Box<dyn CtrModel>,
        domains: Vec<ParamStore>,
        /// Kept in training form (θS + per-domain θi) for re-serialization.
        trained: TrainedModel,
    },
    /// The RAW embedding scorer of the distributed PS trainer.
    Embedding { dim: usize, n_domains: usize, rows: HashMap<ParamKey, Vec<f32>> },
}

/// An immutable, versioned serving artifact.
///
/// All scoring is forward-only (no tape retained beyond the call, no
/// gradients) and bit-deterministic at any kernel thread count — the same
/// guarantee the training-side kernels make, inherited here because serving
/// runs through the same `Tensor::gemm` entry points.
pub struct ServingSnapshot {
    version: u64,
    backend: Backend,
}

impl std::fmt::Debug for ServingSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServingSnapshot({})", self.describe())
    }
}

impl ServingSnapshot {
    /// Builds a snapshot from a trained model, materializing Θ_d per domain.
    pub fn from_trained(
        version: u64,
        spec: ModelSpec,
        trained: TrainedModel,
    ) -> Result<Self, SnapshotError> {
        if spec.n_domains == 0 {
            return Err(SnapshotError::Invalid("snapshot needs at least one domain".into()));
        }
        let n = match &trained.domains {
            DomainParams::SharedOnly => spec.n_domains,
            DomainParams::Deltas(d) => d.len(),
            DomainParams::Full(d) => d.len(),
        };
        if n != spec.n_domains {
            return Err(SnapshotError::Invalid(format!(
                "trained model has {} domain parameterizations, spec says {}",
                n, spec.n_domains
            )));
        }
        let built =
            build_model(spec.kind, &spec.features, &spec.config, spec.n_domains, REBUILD_SEED);
        if built.params.n_scalars() != trained.shared.len() {
            return Err(SnapshotError::Invalid(format!(
                "flat vector has {} scalars, rebuilt {} expects {}",
                trained.shared.len(),
                spec.kind.name(),
                built.params.n_scalars()
            )));
        }
        let domains = (0..spec.n_domains)
            .map(|d| {
                let mut store = built.params.clone();
                store.load_flat(&trained.flat_for(d));
                store
            })
            .collect();
        Ok(ServingSnapshot {
            version,
            backend: Backend::Dense { spec, model: built.model, domains, trained },
        })
    }

    /// Builds an embedding snapshot from a live parameter server.
    ///
    /// `n_domains` bounds the domain-bias table; rows a cold row lookup
    /// misses score as zeros, matching the PS trainer's cold-start behavior.
    pub fn from_ps(version: u64, ps: &ParameterServer, n_domains: usize) -> Self {
        let rows = ps.dump_rows().into_iter().collect();
        ServingSnapshot {
            version,
            backend: Backend::Embedding { dim: ps.value_dim(), n_domains, rows },
        }
    }

    /// Builds an embedding snapshot from the newest checkpoint in `dir`
    /// (discovered via [`mamdr_ps::checkpoint::latest_checkpoint`]).
    /// Returns `Ok(None)` when the directory holds no checkpoint.
    pub fn from_ps_checkpoint_dir(
        version: u64,
        dir: &Path,
        n_domains: usize,
    ) -> Result<Option<Self>, SnapshotError> {
        let path = mamdr_ps::checkpoint::latest_checkpoint(dir, None)
            .map_err(|e| SnapshotError::Invalid(format!("checkpoint discovery: {e}")))?;
        let Some(path) = path else { return Ok(None) };
        let ps = mamdr_ps::checkpoint::load_from_path(&path, 1)
            .map_err(|e| SnapshotError::Corrupt(format!("{}: {e}", path.display())))?;
        Ok(Some(Self::from_ps(version, &ps, n_domains)))
    }

    /// The snapshot's version (monotonically increasing by publisher
    /// convention; the engine tags every response with it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of domains this snapshot can route.
    pub fn n_domains(&self) -> usize {
        match &self.backend {
            Backend::Dense { spec, .. } => spec.n_domains,
            Backend::Embedding { n_domains, .. } => *n_domains,
        }
    }

    /// A short human-readable description of the scorer.
    pub fn describe(&self) -> String {
        match &self.backend {
            Backend::Dense { spec, domains, .. } => format!(
                "{} v{} ({} domains, {} params/domain)",
                spec.kind.name(),
                self.version,
                spec.n_domains,
                domains[0].n_scalars()
            ),
            Backend::Embedding { dim, n_domains, rows } => format!(
                "RAW-embedding v{} ({} domains, {} rows × {})",
                self.version,
                n_domains,
                rows.len(),
                dim
            ),
        }
    }

    /// Validates a request against this snapshot's feature spaces.
    pub fn validate(&self, req: &ScoreRequest) -> Result<(), String> {
        if req.domain >= self.n_domains() {
            return Err(format!("domain {} out of range ({})", req.domain, self.n_domains()));
        }
        if let Backend::Dense { spec, .. } = &self.backend {
            let f = &spec.features;
            if req.user as usize >= f.n_users {
                return Err(format!("user {} out of range ({})", req.user, f.n_users));
            }
            if req.item as usize >= f.n_items {
                return Err(format!("item {} out of range ({})", req.item, f.n_items));
            }
            if req.user_group as usize >= f.n_user_groups {
                return Err(format!("user_group {} out of range", req.user_group));
            }
            if req.item_cat as usize >= f.n_item_cats {
                return Err(format!("item_cat {} out of range", req.item_cat));
            }
            for (name, dense) in [("dense_user", &req.dense_user), ("dense_item", &req.dense_item)]
            {
                let got = dense.as_ref().map_or(0, |v| v.len());
                if got != f.dense_dim {
                    return Err(format!("{name} has {got} values, model expects {}", f.dense_dim));
                }
            }
        }
        Ok(())
    }

    /// Scores a micro-batch of same-domain requests, returning one pCTR per
    /// request (in order).
    ///
    /// Requests must already be validated and share `domain`. Forward-only:
    /// dropout off, no gradients. Per-request scores do not depend on how
    /// requests were coalesced for every row-independent architecture
    /// (everything except STAR's partitioned normalization, which uses
    /// micro-batch statistics — see DESIGN §7).
    pub fn score(&self, domain: usize, reqs: &[ScoreRequest]) -> Vec<f32> {
        assert!(domain < self.n_domains(), "unvalidated domain routed to score()");
        if reqs.is_empty() {
            return Vec::new();
        }
        match &self.backend {
            Backend::Dense { spec, model, domains, .. } => {
                let batch = assemble_batch(&spec.features, domain, reqs);
                mamdr_models::eval_logits(model.as_ref(), &domains[domain], &batch)
                    .into_iter()
                    .map(stable_sigmoid)
                    .collect()
            }
            Backend::Embedding { dim, rows, .. } => {
                let zero = vec![0.0f32; *dim];
                let row = |key: ParamKey| rows.get(&key).unwrap_or(&zero);
                reqs.iter()
                    .map(|r| {
                        let keys = ps_model::ExampleKeys::new(
                            r.user,
                            r.item,
                            r.user_group,
                            r.item_cat,
                            domain as u32,
                        );
                        let raw = ps_model::score(
                            row(keys.user),
                            row(keys.item),
                            row(keys.ugroup),
                            row(keys.icat),
                            row(keys.bias),
                        );
                        ps_model::sigmoid(raw)
                    })
                    .collect()
            }
        }
    }

    /// Serializes the snapshot (payload + trailing checksum).
    pub fn write_to(&self, mut w: impl Write) -> Result<(), SnapshotError> {
        let payload = self.encode_payload()?;
        w.write_all(MAGIC)?;
        w.write_all(&payload)?;
        w.write_all(&Checksum::of(&payload).to_le_bytes())?;
        Ok(())
    }

    /// Deserializes a snapshot, verifying the checksum before parsing.
    pub fn read_from(mut r: impl Read) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        if rest.len() < 8 {
            return Err(SnapshotError::Corrupt("missing checksum".into()));
        }
        let (payload, digest_bytes) = rest.split_at(rest.len() - 8);
        let stored = u64::from_le_bytes(digest_bytes.try_into().expect("8 bytes"));
        let computed = Checksum::of(payload);
        if stored != computed {
            return Err(SnapshotError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        Self::decode_payload(payload)
    }

    /// Writes the snapshot to a file (created/truncated).
    pub fn save_to_path(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot file written by [`save_to_path`](Self::save_to_path).
    pub fn load_from_path(path: &Path) -> Result<Self, SnapshotError> {
        Self::read_from(std::io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Publisher-side atomic write: the snapshot is serialized into a
    /// same-directory `<name>.tmp` sibling, fsynced, and renamed into
    /// place. The rename is the sole commit point — a publisher crash at
    /// any earlier byte leaves only the temp file, which no loader or
    /// watcher ever opens, so a half-written snapshot can never be served.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = tmp_sibling(path);
        {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::new(file);
            self.write_to(&mut w)?;
            w.flush()?;
            // Data must be durable *before* the rename: otherwise a crash
            // after the rename but before writeback could expose a
            // committed path with unsynced (torn) contents.
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Verifies every served parameter is finite. This is the gate-side
    /// twin of `ps::guard`'s non-finite update check: a poisoned round
    /// that slipped past (or ran without) the training guard is caught
    /// here, before the snapshot can reach traffic.
    pub fn check_finite(&self) -> Result<(), String> {
        match &self.backend {
            Backend::Dense { spec, trained, .. } => {
                if let Some(i) = trained.shared.iter().position(|v| !v.is_finite()) {
                    return Err(format!("shared parameter {i} is not finite"));
                }
                for d in 0..spec.n_domains {
                    if let Some(i) = trained.flat_for(d).iter().position(|v| !v.is_finite()) {
                        return Err(format!("domain {d} parameter {i} is not finite"));
                    }
                }
            }
            Backend::Embedding { rows, .. } => {
                for (k, v) in rows {
                    if v.iter().any(|x| !x.is_finite()) {
                        return Err(format!(
                            "row (table {}, row {}) has non-finite values",
                            k.table, k.row
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// A fixed probe set derived from `seed`: `per_domain` requests per
    /// domain, every one valid against this snapshot's feature spaces.
    /// Purely a function of `(seed, feature spaces)`, so two snapshots with
    /// the same spec yield the *same* requests — the publish gate scores
    /// one set on both candidate and incumbent and bounds the divergence.
    pub fn probe_requests(&self, seed: u64, per_domain: usize) -> Vec<ScoreRequest> {
        let (n_users, n_items, n_groups, n_cats, dense_dim) = match &self.backend {
            Backend::Dense { spec, .. } => {
                let f = &spec.features;
                (
                    f.n_users as u32,
                    f.n_items as u32,
                    f.n_user_groups as u32,
                    f.n_item_cats as u32,
                    f.dense_dim,
                )
            }
            // The embedding scorer has no id bounds (cold rows score as
            // zeros); a fixed synthetic space keeps probes deterministic.
            Backend::Embedding { .. } => (1 << 20, 1 << 20, 64, 64, 0),
        };
        let mix = |d: usize, k: usize, salt: u64| -> u32 {
            let mut c = Checksum::new();
            c.update(&seed.to_le_bytes());
            c.update(&(d as u64).to_le_bytes());
            c.update(&(k as u64).to_le_bytes());
            c.update(&salt.to_le_bytes());
            (c.digest() & 0xffff_ffff) as u32
        };
        let mut out = Vec::with_capacity(self.n_domains() * per_domain);
        for d in 0..self.n_domains() {
            for k in 0..per_domain {
                let mut req = ScoreRequest::new(
                    d,
                    mix(d, k, 1) % n_users.max(1),
                    mix(d, k, 2) % n_items.max(1),
                    mix(d, k, 3) % n_groups.max(1),
                    mix(d, k, 4) % n_cats.max(1),
                );
                if dense_dim > 0 {
                    let dense = |salt0: u64| {
                        (0..dense_dim)
                            .map(|j| {
                                mix(d, k, salt0 + j as u64) as f32 / u32::MAX as f32 * 2.0 - 1.0
                            })
                            .collect::<Vec<f32>>()
                    };
                    req.dense_user = Some(dense(1000));
                    req.dense_item = Some(dense(2000));
                }
                out.push(req);
            }
        }
        out
    }

    fn encode_payload(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        match &self.backend {
            Backend::Dense { spec, trained, .. } => {
                out.push(0u8);
                out.extend_from_slice(&self.version.to_le_bytes());
                out.push(kind_id(spec.kind));
                for v in [
                    spec.features.n_users,
                    spec.features.n_items,
                    spec.features.n_user_groups,
                    spec.features.n_item_cats,
                    spec.features.dense_dim,
                ] {
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
                let c = &spec.config;
                out.extend_from_slice(&(c.embed_dim as u32).to_le_bytes());
                out.extend_from_slice(&(c.hidden.len() as u32).to_le_bytes());
                for &h in &c.hidden {
                    out.extend_from_slice(&(h as u32).to_le_bytes());
                }
                out.extend_from_slice(&c.dropout.to_le_bytes());
                for v in [c.n_experts, c.att_dim, c.att_heads, c.att_layers] {
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                }
                out.extend_from_slice(&(spec.n_domains as u32).to_le_bytes());
                let (mode, per_domain): (u8, Option<&[Vec<f32>]>) = match &trained.domains {
                    DomainParams::SharedOnly => (0, None),
                    DomainParams::Deltas(d) => (1, Some(d)),
                    DomainParams::Full(d) => (2, Some(d)),
                };
                out.push(mode);
                out.extend_from_slice(&(trained.shared.len() as u64).to_le_bytes());
                write_f32_section(&mut out, &trained.shared)?;
                if let Some(vecs) = per_domain {
                    for v in vecs {
                        if v.len() != trained.shared.len() {
                            return Err(SnapshotError::Invalid(
                                "per-domain vector length != shared length".into(),
                            ));
                        }
                        write_f32_section(&mut out, v)?;
                    }
                }
            }
            Backend::Embedding { dim, n_domains, rows } => {
                out.push(1u8);
                out.extend_from_slice(&self.version.to_le_bytes());
                out.extend_from_slice(&(*dim as u32).to_le_bytes());
                out.extend_from_slice(&(*n_domains as u32).to_le_bytes());
                out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                // Sorted rows: identical states produce byte-identical files.
                let mut sorted: Vec<(&ParamKey, &Vec<f32>)> = rows.iter().collect();
                sorted.sort_by_key(|(k, _)| (k.table, k.row));
                for (key, value) in sorted {
                    if value.len() != *dim {
                        return Err(SnapshotError::Invalid(format!(
                            "row {key:?} has width {} (expected {dim})",
                            value.len()
                        )));
                    }
                    out.extend_from_slice(&key.table.to_le_bytes());
                    out.extend_from_slice(&key.row.to_le_bytes());
                    write_f32_section(&mut out, value)?;
                }
            }
        }
        Ok(out)
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = payload;
        let tag = read_u8(&mut r)?;
        let version = read_u64(&mut r)?;
        match tag {
            0 => {
                let kind = kind_from_id(read_u8(&mut r)?)?;
                let features = FeatureConfig {
                    n_users: read_u32(&mut r)? as usize,
                    n_items: read_u32(&mut r)? as usize,
                    n_user_groups: read_u32(&mut r)? as usize,
                    n_item_cats: read_u32(&mut r)? as usize,
                    dense_dim: read_u32(&mut r)? as usize,
                };
                let embed_dim = read_u32(&mut r)? as usize;
                let n_hidden = read_u32(&mut r)? as usize;
                if n_hidden > 64 {
                    return Err(SnapshotError::Corrupt(format!("absurd hidden count {n_hidden}")));
                }
                let hidden = (0..n_hidden)
                    .map(|_| read_u32(&mut r).map(|v| v as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                let dropout = f32::from_le_bytes(take(&mut r, 4)?.try_into().expect("4 bytes"));
                let config = ModelConfig {
                    embed_dim,
                    hidden,
                    dropout,
                    n_experts: read_u32(&mut r)? as usize,
                    att_dim: read_u32(&mut r)? as usize,
                    att_heads: read_u32(&mut r)? as usize,
                    att_layers: read_u32(&mut r)? as usize,
                };
                let n_domains = read_u32(&mut r)? as usize;
                let mode = read_u8(&mut r)?;
                let flat_len = read_u64(&mut r)? as usize;
                if flat_len.checked_mul(4).is_none_or(|b| b > payload.len() * (n_domains + 1)) {
                    return Err(SnapshotError::Corrupt(format!("absurd flat length {flat_len}")));
                }
                let shared = read_f32_section(&mut r, flat_len)?;
                let domains = match mode {
                    0 => DomainParams::SharedOnly,
                    1 | 2 => {
                        let vecs = (0..n_domains)
                            .map(|_| read_f32_section(&mut r, flat_len))
                            .collect::<Result<Vec<_>, _>>()?;
                        if mode == 1 {
                            DomainParams::Deltas(vecs)
                        } else {
                            DomainParams::Full(vecs)
                        }
                    }
                    m => return Err(SnapshotError::Corrupt(format!("unknown domain mode {m}"))),
                };
                let spec = ModelSpec { kind, features, config, n_domains };
                Self::from_trained(version, spec, TrainedModel { shared, domains })
            }
            1 => {
                let dim = read_u32(&mut r)? as usize;
                let n_domains = read_u32(&mut r)? as usize;
                let n_rows = read_u64(&mut r)? as usize;
                if n_rows.checked_mul(dim.max(1) * 4).is_none_or(|b| b > payload.len()) {
                    return Err(SnapshotError::Corrupt(format!("absurd row count {n_rows}")));
                }
                let mut rows = HashMap::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let table = read_u32(&mut r)?;
                    let row = read_u32(&mut r)?;
                    let value = read_f32_section(&mut r, dim)?;
                    rows.insert(ParamKey::new(table, row), value);
                }
                Ok(ServingSnapshot {
                    version,
                    backend: Backend::Embedding { dim, n_domains, rows },
                })
            }
            t => Err(SnapshotError::Corrupt(format!("unknown backend tag {t}"))),
        }
    }
}

/// Gathers a same-domain request slice into a model [`Batch`].
///
/// Labels are zeros — serving never reads them; `eval_logits` only consumes
/// the feature side.
fn assemble_batch(features: &FeatureConfig, domain: usize, reqs: &[ScoreRequest]) -> Batch {
    let n = reqs.len();
    let dense = |pick: fn(&ScoreRequest) -> &Option<Vec<f32>>| -> Option<Tensor> {
        if features.dense_dim == 0 {
            return None;
        }
        let mut data = Vec::with_capacity(n * features.dense_dim);
        for r in reqs {
            data.extend_from_slice(pick(r).as_ref().expect("validated dense features"));
        }
        Some(Tensor::from_vec([n, features.dense_dim], data))
    };
    Batch {
        domain,
        users: reqs.iter().map(|r| r.user).collect(),
        items: reqs.iter().map(|r| r.item).collect(),
        user_groups: reqs.iter().map(|r| r.user_group).collect(),
        item_cats: reqs.iter().map(|r| r.item_cat).collect(),
        labels: vec![0.0; n],
        dense_user: dense(|r| &r.dense_user),
        dense_item: dense(|r| &r.dense_item),
    }
}

/// The same-directory temp path `write_atomic` stages into: the file name
/// with `.tmp` appended (never a replaced extension, so distinct snapshot
/// files can never share a staging path by extension collision).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn kind_id(kind: ModelKind) -> u8 {
    ModelKind::ALL.iter().position(|&k| k == kind).expect("kind in registry") as u8
}

fn kind_from_id(id: u8) -> Result<ModelKind, SnapshotError> {
    ModelKind::ALL
        .get(id as usize)
        .copied()
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown model kind id {id}")))
}

fn take<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotError> {
    if r.len() < n {
        return Err(SnapshotError::Corrupt("payload truncated".into()));
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Ok(head)
}

fn read_u8(r: &mut &[u8]) -> Result<u8, SnapshotError> {
    Ok(take(r, 1)?[0])
}

fn read_u32(r: &mut &[u8]) -> Result<u32, SnapshotError> {
    Ok(u32::from_le_bytes(take(r, 4)?.try_into().expect("4 bytes")))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, SnapshotError> {
    Ok(u64::from_le_bytes(take(r, 8)?.try_into().expect("8 bytes")))
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for the crate's unit tests.
    use super::*;
    use mamdr_tensor::rng::seeded;
    use rand::Rng;

    /// A tiny 2-domain MLP snapshot whose weights derive from `version`,
    /// so different versions produce different scores.
    pub fn tiny_dense_snapshot(version: u64) -> ServingSnapshot {
        let spec = ModelSpec {
            kind: ModelKind::Mlp,
            features: FeatureConfig {
                n_users: 30,
                n_items: 20,
                n_user_groups: 4,
                n_item_cats: 5,
                dense_dim: 0,
            },
            config: ModelConfig::tiny(),
            n_domains: 2,
        };
        let built =
            build_model(spec.kind, &spec.features, &spec.config, spec.n_domains, REBUILD_SEED);
        let n = built.params.n_scalars();
        let mut rng = seeded(version.wrapping_mul(1000) + 17);
        let shared: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let deltas = (0..spec.n_domains)
            .map(|_| (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();
        let trained = TrainedModel { shared, domains: DomainParams::Deltas(deltas) };
        ServingSnapshot::from_trained(version, spec, trained).expect("fixture is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_tensor::rng::seeded;
    use rand::Rng;

    fn spec(n_domains: usize) -> ModelSpec {
        ModelSpec {
            kind: ModelKind::Mlp,
            features: FeatureConfig {
                n_users: 30,
                n_items: 20,
                n_user_groups: 4,
                n_item_cats: 5,
                dense_dim: 0,
            },
            config: ModelConfig::tiny(),
            n_domains,
        }
    }

    fn trained(spec: &ModelSpec, seed: u64) -> TrainedModel {
        let built =
            build_model(spec.kind, &spec.features, &spec.config, spec.n_domains, REBUILD_SEED);
        let mut rng = seeded(seed);
        let n = built.params.n_scalars();
        let shared: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let deltas = (0..spec.n_domains)
            .map(|_| (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();
        TrainedModel { shared, domains: DomainParams::Deltas(deltas) }
    }

    fn request(domain: usize, i: u32) -> ScoreRequest {
        ScoreRequest {
            domain,
            user: i % 30,
            item: i % 20,
            user_group: i % 4,
            item_cat: i % 5,
            dense_user: None,
            dense_item: None,
        }
    }

    #[test]
    fn dense_roundtrip_scores_bit_identically() {
        let spec = spec(2);
        let tm = trained(&spec, 7);
        let snap = ServingSnapshot::from_trained(3, spec, tm).unwrap();
        let reqs: Vec<ScoreRequest> = (0..9).map(|i| request(1, i)).collect();
        let before = snap.score(1, &reqs);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let loaded = ServingSnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.version(), 3);
        assert_eq!(loaded.n_domains(), 2);
        let after = loaded.score(1, &reqs);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before), bits(&after));
        assert!(before.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn domains_score_differently_under_deltas() {
        let spec = spec(2);
        let tm = trained(&spec, 11);
        let snap = ServingSnapshot::from_trained(1, spec, tm).unwrap();
        let reqs: Vec<ScoreRequest> = (0..6).map(|i| request(0, i)).collect();
        let d0 = snap.score(0, &reqs);
        let d1 = snap.score(1, &reqs);
        assert_ne!(d0, d1, "per-domain deltas must change scores");
    }

    #[test]
    fn any_corrupted_byte_is_detected() {
        let spec = spec(1);
        let tm = trained(&spec, 3);
        let snap = ServingSnapshot::from_trained(1, spec, tm).unwrap();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        // Flip one byte at a spread of positions across the whole file —
        // header, payload and checksum alike must all be caught.
        for pos in (0..buf.len()).step_by(buf.len() / 37 + 1) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(
                ServingSnapshot::read_from(bad.as_slice()).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
        // Truncation too.
        let mut short = buf.clone();
        short.truncate(buf.len() - 9);
        assert!(ServingSnapshot::read_from(short.as_slice()).is_err());
    }

    /// A deliberately tiny embedding snapshot (~150 bytes on disk) so the
    /// every-byte-offset property tests below stay O(n²)-cheap.
    fn tiny_embedding_snapshot(version: u64) -> ServingSnapshot {
        let ps = ParameterServer::new(1, 2);
        for t in 0..2u32 {
            for row in 0..3u32 {
                ps.init_row(ParamKey::new(t, row), vec![0.25 * t as f32, 0.1 * row as f32]);
            }
        }
        ServingSnapshot::from_ps(version, &ps, 2)
    }

    #[test]
    fn truncated_snapshot_is_rejected_at_every_byte_offset() {
        // Property over ALL partial-write shapes: a publisher (or disk)
        // that persists any strict prefix of the file must be rejected by
        // the loader — there is no prefix length at which a torn write
        // parses as a valid snapshot.
        let snap = tiny_embedding_snapshot(5);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        for len in 0..buf.len() {
            assert!(
                ServingSnapshot::read_from(&buf[..len]).is_err(),
                "truncation to {len} of {} bytes went undetected",
                buf.len()
            );
        }
    }

    #[test]
    fn corrupted_snapshot_is_rejected_at_every_byte_offset() {
        // Stronger form of `any_corrupted_byte_is_detected`: exhaustive
        // over every offset, on a fixture small enough to afford it.
        let snap = tiny_embedding_snapshot(6);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(
                ServingSnapshot::read_from(bad.as_slice()).is_err(),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn write_atomic_commits_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("mamdr-serve-write-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mamdrsv");
        tiny_embedding_snapshot(1).write_atomic(&path).unwrap();
        assert_eq!(ServingSnapshot::load_from_path(&path).unwrap().version(), 1);
        assert!(!super::tmp_sibling(&path).exists(), "temp sibling must be renamed away");
        // Overwriting an existing snapshot is atomic too: the old file
        // stays valid until the rename lands the new one.
        tiny_embedding_snapshot(2).write_atomic(&path).unwrap();
        assert_eq!(ServingSnapshot::load_from_path(&path).unwrap().version(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn probe_requests_are_deterministic_and_valid() {
        let spec = spec(2);
        let tm = trained(&spec, 7);
        let snap = ServingSnapshot::from_trained(1, spec, tm).unwrap();
        let a = snap.probe_requests(0xC0FFEE, 8);
        let b = snap.probe_requests(0xC0FFEE, 8);
        assert_eq!(a, b, "probe set must be a pure function of the seed");
        assert_eq!(a.len(), 16);
        for req in &a {
            snap.validate(req).expect("every probe is in the feature space");
        }
        let other = snap.probe_requests(0xBEEF, 8);
        assert_ne!(a, other, "different seeds probe different points");
        // The embedding backend yields probes too (unbounded id space).
        let emb = tiny_embedding_snapshot(3);
        for req in emb.probe_requests(1, 4) {
            emb.validate(&req).unwrap();
        }
    }

    #[test]
    fn check_finite_flags_poisoned_parameters() {
        let spec2 = spec(2);
        let tm = trained(&spec2, 9);
        let good = ServingSnapshot::from_trained(1, spec2, tm).unwrap();
        good.check_finite().expect("trained fixture is finite");

        let spec2 = spec(2);
        let mut tm = trained(&spec2, 9);
        tm.shared[3] = f32::NAN;
        let bad = ServingSnapshot::from_trained(2, spec2, tm).unwrap();
        assert!(bad.check_finite().is_err(), "NaN in shared params must be flagged");

        let ps = ParameterServer::new(1, 2);
        ps.init_row(ParamKey::new(0, 0), vec![0.5, f32::INFINITY]);
        let bad = ServingSnapshot::from_ps(3, &ps, 1);
        assert!(bad.check_finite().is_err(), "Inf in an embedding row must be flagged");
    }

    #[test]
    fn validates_requests_against_feature_spaces() {
        let spec = spec(2);
        let tm = trained(&spec, 5);
        let snap = ServingSnapshot::from_trained(1, spec, tm).unwrap();
        assert!(snap.validate(&request(0, 3)).is_ok());
        let mut bad = request(0, 3);
        bad.user = 999;
        assert!(snap.validate(&bad).is_err());
        let mut bad = request(0, 3);
        bad.domain = 2;
        assert!(snap.validate(&bad).is_err());
        let mut bad = request(0, 3);
        bad.dense_user = Some(vec![1.0; 4]);
        assert!(snap.validate(&bad).is_err(), "dense features on a dense_dim=0 model");
    }

    #[test]
    fn embedding_snapshot_roundtrips_and_scores() {
        let ps = ParameterServer::new(2, 3);
        for t in 0..5u32 {
            for row in 0..4u32 {
                ps.init_row(ParamKey::new(t, row), vec![0.1 * t as f32, 0.2, row as f32 * 0.05]);
            }
        }
        let snap = ServingSnapshot::from_ps(9, &ps, 4);
        assert_eq!(snap.n_domains(), 4);
        let reqs = vec![request(2, 1), request(2, 3)];
        let scores = snap.score(2, &reqs);
        assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let loaded = ServingSnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.score(2, &reqs), scores);
        // A cold row (user 29 never initialized) must score, not panic.
        let cold = request(3, 29);
        assert!(snap.score(3, &[cold])[0].is_finite());
    }

    #[test]
    fn rejects_mismatched_spec() {
        let s2 = spec(2);
        let tm = trained(&s2, 2);
        let mut s3 = spec(3);
        s3.n_domains = 3;
        let err = ServingSnapshot::from_trained(1, s3, tm).unwrap_err();
        assert!(matches!(err, SnapshotError::Invalid(_)), "{err}");
    }
}
