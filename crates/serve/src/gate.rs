//! The publish gate: the validation chain between a freshly published
//! snapshot and live traffic.
//!
//! A [`PublishGate`] sits in front of [`ReplicatedServer::publish`]. Every
//! candidate runs the chain **digest → version → structure → finite →
//! probe divergence → (optional) canary** in that fixed order, cheapest
//! and most-certain checks first:
//!
//! 1. **digest** — the snapshot file's trailing FNV-1a checksum must
//!    verify ([`ServingSnapshot::load_from_path`] enforces it), so torn
//!    or bit-rotted artifacts never even decode.
//! 2. **version** — candidates must move the version forward; a replayed
//!    or duplicate artifact is rejected, keeping the serving version
//!    monotonic.
//! 3. **structure** — domain counts and feature spaces must match the
//!    incumbent: a candidate that cannot answer today's traffic shape is
//!    wrong regardless of its scores.
//! 4. **finite** — every parameter must be finite
//!    ([`ServingSnapshot::check_finite`]): the serve-side twin of the
//!    `ps::guard` NaN rail, catching a poisoned round that trained
//!    without (or slipped past) the guard.
//! 5. **probe divergence** — a fixed seeded probe set (the PR 9
//!    bit-identity machinery, [`ServingSnapshot::probe_requests`]) is
//!    scored on candidate and incumbent; per-domain mean absolute score
//!    divergence above the bound means the round diverged semantically
//!    even though every number is finite.
//! 6. **canary** — optionally, the candidate is published to the first
//!    `n_canary` replicas only. Because routing is a pure FNV hash of
//!    the user id, this exposes a *deterministic user-hash slice* (the
//!    users with `replica_of(user, n) < n_canary`) to the candidate;
//!    live requests through the pool must come back scored (zero drops),
//!    attributed to the right version, bit-identical to direct scoring,
//!    and with bounded score drift against the incumbent — then the gate
//!    cuts the remaining replicas over.
//!
//! Any failure leaves traffic on the **last-good** snapshot. The gate
//! holds it as an `Arc<ServingSnapshot>`: for failures before the canary
//! phase the pool pointer was never touched (rollback is the degenerate
//! no-op — the served bytes *are* the last-good bytes); a canary failure
//! re-publishes that exact `Arc` to the canary replicas — byte-exact by
//! construction, since it is the same allocation, not a re-decode.
//! Memory ordering is inherited from the engine swap path: the snapshot
//! is fully built before `publish_arc`, the engine's mutex release
//! happens-before every subsequent `snapshot()` acquire, and `Arc` frees
//! the retired version only after an acquire fence — see
//! `engine.rs`'s module docs and DESIGN.md §7.5.
//!
//! Every verdict increments typed counters
//! (`publish_rejected_total{reason=...}`, `publish_rollbacks_total`, …),
//! lands in the shared [`PublishState`] (surfacing in `/healthz` and
//! `/publish`), and is recorded as a `publish.gate` span chain with one
//! child span per executed check.

use crate::replica::{replica_of, ReplicatedServer};
use crate::request::{ServeResult, SloClass};
use crate::snapshot::ServingSnapshot;
use mamdr_obs::{Counter, MetricsRegistry, PublishState, Tracer};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Every typed rejection reason, in gate-chain order. The gate registers
/// one `publish_rejected_total{reason="..."}` counter per entry up front,
/// so a clean run renders them all as 0 (CI greps exact values).
pub const GATE_REASONS: [&str; 6] =
    ["digest", "version", "structure", "nonfinite", "divergence", "canary"];

/// Tuning of the validation chain.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Seed of the fixed probe set; one seed per deployment keeps the
    /// probe scores comparable across every publication.
    pub probe_seed: u64,
    /// Probes per domain in the divergence check (0 skips the check).
    pub probes_per_domain: usize,
    /// Per-domain mean |candidate − incumbent| score bound. Scores are
    /// pCTRs in [0, 1], so 1.0 admits everything structurally sound.
    pub max_divergence: f32,
    /// Canary slice size as percent of the replica pool, in (0, 50];
    /// 0 disables the canary phase. Pools with a single replica skip it
    /// (there is no non-canary remainder to keep safe).
    pub canary_pct: f64,
    /// Live requests submitted through the pool during the canary phase.
    pub canary_probes: usize,
    /// Mean |candidate − incumbent| score bound over the canary slice.
    pub max_canary_drift: f32,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            probe_seed: 0xC0FFEE,
            probes_per_domain: 8,
            max_divergence: 0.35,
            canary_pct: 0.0,
            canary_probes: 64,
            max_canary_drift: 0.35,
        }
    }
}

/// Why a candidate was kept away from traffic.
#[derive(Debug)]
pub enum GateReject {
    /// The snapshot file failed to load (bad digest, torn write, I/O).
    Digest(String),
    /// The candidate does not move the serving version forward.
    Version {
        /// The candidate's version.
        candidate: u64,
        /// The incumbent's version.
        incumbent: u64,
    },
    /// Domain count or feature spaces differ from the incumbent.
    Structure(String),
    /// A parameter is NaN or infinite.
    NonFinite(String),
    /// The probe set diverged beyond the per-domain bound.
    Divergence {
        /// The offending domain.
        domain: usize,
        /// Mean |candidate − incumbent| over the domain's probes.
        divergence: f32,
        /// The configured bound.
        bound: f32,
    },
    /// The live canary phase failed (drop, misattribution, or drift).
    Canary(String),
}

impl GateReject {
    /// The stable label used in `publish_rejected_total{reason=...}`.
    pub fn reason(&self) -> &'static str {
        match self {
            GateReject::Digest(_) => "digest",
            GateReject::Version { .. } => "version",
            GateReject::Structure(_) => "structure",
            GateReject::NonFinite(_) => "nonfinite",
            GateReject::Divergence { .. } => "divergence",
            GateReject::Canary(_) => "canary",
        }
    }
}

impl std::fmt::Display for GateReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateReject::Digest(m) => write!(f, "digest: {m}"),
            GateReject::Version { candidate, incumbent } => {
                write!(f, "version: candidate v{candidate} does not advance incumbent v{incumbent}")
            }
            GateReject::Structure(m) => write!(f, "structure: {m}"),
            GateReject::NonFinite(m) => write!(f, "nonfinite: {m}"),
            GateReject::Divergence { domain, divergence, bound } => {
                write!(f, "divergence: domain {domain} mean |Δscore| {divergence} > bound {bound}")
            }
            GateReject::Canary(m) => write!(f, "canary: {m}"),
        }
    }
}

impl std::error::Error for GateReject {}

/// `publish_*` gate counters.
#[derive(Clone)]
struct GateMetrics {
    offered_total: Counter,
    accepted_total: Counter,
    rollbacks_total: Counter,
    canary_phases_total: Counter,
    rejected_total: [Counter; GATE_REASONS.len()],
}

impl GateMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        registry.describe("publish_offered_total", "Candidate snapshots offered to the gate.");
        registry.describe("publish_accepted_total", "Candidates that cut over to full traffic.");
        registry.describe(
            "publish_rollbacks_total",
            "Gate failures resolved by (re)pinning the last-good snapshot.",
        );
        registry
            .describe("publish_canary_phases_total", "Canary phases entered (accepted or not).");
        registry.describe(
            "publish_rejected_total",
            "Candidates rejected by the gate, by typed reason.",
        );
        GateMetrics {
            offered_total: registry.counter("publish_offered_total"),
            accepted_total: registry.counter("publish_accepted_total"),
            rollbacks_total: registry.counter("publish_rollbacks_total"),
            canary_phases_total: registry.counter("publish_canary_phases_total"),
            rejected_total: GATE_REASONS
                .map(|r| registry.counter(&format!("publish_rejected_total{{reason=\"{r}\"}}"))),
        }
    }
}

/// The validation gate in front of a replica pool.
pub struct PublishGate {
    config: GateConfig,
    last_good: Mutex<Arc<ServingSnapshot>>,
    metrics: GateMetrics,
    state: Option<Arc<PublishState>>,
    tracer: Option<Arc<Tracer>>,
}

impl PublishGate {
    /// A gate whose incumbent is `initial` — share the `Arc` the pool was
    /// started with ([`ReplicatedServer::engine`]`(0).snapshot()`), so
    /// last-good and the served snapshot are the same allocation from the
    /// first round on.
    pub fn new(
        config: GateConfig,
        initial: Arc<ServingSnapshot>,
        registry: &MetricsRegistry,
        state: Option<Arc<PublishState>>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        PublishGate {
            config,
            last_good: Mutex::new(initial),
            metrics: GateMetrics::register(registry),
            state,
            tracer,
        }
    }

    /// The snapshot traffic falls back to on any gate failure.
    pub fn last_good(&self) -> Arc<ServingSnapshot> {
        self.last_good.lock().expect("gate lock").clone()
    }

    /// Offers the committed snapshot file at `path` (as written by
    /// `ps::publish`): the digest check is the file load itself, then the
    /// decoded candidate runs the rest of the chain against `pool`.
    pub fn offer_file(
        &self,
        round: u64,
        path: &Path,
        pool: &ReplicatedServer,
    ) -> Result<u64, GateReject> {
        match ServingSnapshot::load_from_path(path) {
            Ok(candidate) => self.offer(round, candidate, pool),
            Err(e) => {
                self.metrics.offered_total.inc();
                let mut span = self.tracer.as_deref().map(|t| t.span("publish.gate"));
                if let Some(s) = span.as_mut() {
                    s.attr("round", round);
                    s.attr("accepted", 0);
                }
                Err(self.reject(round, 0, GateReject::Digest(e.to_string())))
            }
        }
    }

    /// Offers an in-memory candidate (already digest-verified or built
    /// directly from a store). Returns the retired incumbent version on
    /// cutover.
    pub fn offer(
        &self,
        round: u64,
        candidate: ServingSnapshot,
        pool: &ReplicatedServer,
    ) -> Result<u64, GateReject> {
        self.metrics.offered_total.inc();
        let candidate = Arc::new(candidate);
        let version = candidate.version();
        let incumbent = self.last_good();
        let mut span = self.tracer.as_deref().map(|t| t.span("publish.gate"));
        if let Some(s) = span.as_mut() {
            s.attr("round", round);
            s.attr("version", version);
            s.attr("incumbent", incumbent.version());
        }
        let ctx = span.as_ref().map(|s| s.ctx());
        let result = self.run_chain(&candidate, &incumbent, pool, ctx);
        match result {
            Ok(()) => {
                let retired = pool.publish_arc(Arc::clone(&candidate));
                *self.last_good.lock().expect("gate lock") = Arc::clone(&candidate);
                self.metrics.accepted_total.inc();
                if let Some(s) = span.as_mut() {
                    s.attr("accepted", 1);
                }
                if let Some(state) = &self.state {
                    state.record_accept(round, version, format!("cutover, retired v{retired}"));
                }
                Ok(retired)
            }
            Err(rej) => {
                if let Some(s) = span.as_mut() {
                    s.attr("accepted", 0);
                }
                Err(self.reject(round, version, rej))
            }
        }
    }

    /// Runs checks 2–6 (the file load was check 1). `Ok(())` means safe
    /// to cut over.
    fn run_chain(
        &self,
        candidate: &Arc<ServingSnapshot>,
        incumbent: &Arc<ServingSnapshot>,
        pool: &ReplicatedServer,
        parent: Option<mamdr_obs::SpanContext>,
    ) -> Result<(), GateReject> {
        let child = |name: &'static str| {
            self.tracer.as_deref().zip(parent).map(|(t, ctx)| t.child(name, ctx))
        };

        {
            let _s = child("gate.structural");
            if candidate.version() <= incumbent.version() {
                return Err(GateReject::Version {
                    candidate: candidate.version(),
                    incumbent: incumbent.version(),
                });
            }
            if candidate.n_domains() != incumbent.n_domains() {
                return Err(GateReject::Structure(format!(
                    "candidate routes {} domains, incumbent {}",
                    candidate.n_domains(),
                    incumbent.n_domains()
                )));
            }
            candidate.check_finite().map_err(GateReject::NonFinite)?;
        }

        if self.config.probes_per_domain > 0 {
            let _s = child("gate.probe");
            self.check_probe_divergence(candidate, incumbent)?;
        }

        if self.config.canary_pct > 0.0 && pool.n_replicas() >= 2 {
            let _s = child("gate.canary");
            self.metrics.canary_phases_total.inc();
            if let Err(rej) = self.run_canary(candidate, incumbent, pool) {
                // The canary slice saw the candidate: roll those replicas
                // back to the exact last-good allocation before failing.
                let n_canary = self.canary_replicas(pool.n_replicas());
                pool.publish_canary(Arc::clone(incumbent), n_canary);
                return Err(rej);
            }
        }
        Ok(())
    }

    /// Check 5: fixed seeded probe set, scored directly (not through the
    /// pool — deterministic and overload-immune) on both snapshots.
    fn check_probe_divergence(
        &self,
        candidate: &ServingSnapshot,
        incumbent: &ServingSnapshot,
    ) -> Result<(), GateReject> {
        let per = self.config.probes_per_domain;
        let probes = candidate.probe_requests(self.config.probe_seed, per);
        for req in &probes {
            incumbent
                .validate(req)
                .map_err(|e| GateReject::Structure(format!("probe invalid on incumbent ({e})")))?;
        }
        for (domain, reqs) in probes.chunks(per).enumerate() {
            let cand = candidate.score(domain, reqs);
            let inc = incumbent.score(domain, reqs);
            let mean = cand.iter().zip(&inc).map(|(c, i)| (c - i).abs()).sum::<f32>() / per as f32;
            // A NaN mean (possible if finite params still overflow an
            // activation) must also reject, hence the explicit check.
            if mean.is_nan() || mean > self.config.max_divergence {
                return Err(GateReject::Divergence {
                    domain,
                    divergence: mean,
                    bound: self.config.max_divergence,
                });
            }
        }
        Ok(())
    }

    /// How many replicas the canary slice covers: `⌊n·pct/100⌋`, at least
    /// 1, never the whole pool.
    fn canary_replicas(&self, n_replicas: usize) -> usize {
        ((n_replicas as f64 * self.config.canary_pct / 100.0).floor() as usize)
            .clamp(1, n_replicas - 1)
    }

    /// Check 6: serve the candidate to the canary slice and compare live
    /// behavior against the incumbent before full cutover.
    fn run_canary(
        &self,
        candidate: &Arc<ServingSnapshot>,
        incumbent: &Arc<ServingSnapshot>,
        pool: &ReplicatedServer,
    ) -> Result<(), GateReject> {
        let n = pool.n_replicas();
        let n_canary = self.canary_replicas(n);
        pool.publish_canary(Arc::clone(candidate), n_canary);

        // A canary-specific probe set (decorrelated from the divergence
        // probes): per-domain count sized to reach `canary_probes` total.
        let per = (self.config.canary_probes / candidate.n_domains()).max(1);
        let probes = candidate.probe_requests(self.config.probe_seed ^ 0x9E37_79B9, per);
        let mut drift_sum = 0.0f32;
        let mut drift_n = 0usize;
        for req in probes {
            let in_slice = replica_of(req.user, n) < n_canary;
            let domain = req.domain;
            let direct_cand = candidate.score(domain, std::slice::from_ref(&req))[0];
            let direct_inc = incumbent.score(domain, std::slice::from_ref(&req))[0];
            let pending = pool
                .submit_class(req, None, SloClass::Interactive)
                .map_err(|e| GateReject::Canary(format!("canary submit refused: {e}")))?;
            let resp = match pending.wait() {
                ServeResult::Scored(r) => r,
                other => {
                    return Err(GateReject::Canary(format!("canary request not scored: {other:?}")))
                }
            };
            let (want_version, want_score) = if in_slice {
                (candidate.version(), direct_cand)
            } else {
                (incumbent.version(), direct_inc)
            };
            if resp.snapshot_version != want_version {
                return Err(GateReject::Canary(format!(
                    "response attributed to v{}, expected v{want_version}",
                    resp.snapshot_version
                )));
            }
            if resp.score.to_bits() != want_score.to_bits() {
                return Err(GateReject::Canary(format!(
                    "pool score {} not bit-identical to direct score {}",
                    resp.score, want_score
                )));
            }
            if in_slice {
                drift_sum += (direct_cand - direct_inc).abs();
                drift_n += 1;
            }
        }
        if drift_n > 0 {
            let mean = drift_sum / drift_n as f32;
            if mean.is_nan() || mean > self.config.max_canary_drift {
                return Err(GateReject::Canary(format!(
                    "canary-slice mean |Δscore| {mean} > bound {}",
                    self.config.max_canary_drift
                )));
            }
        }
        Ok(())
    }

    /// Books a rejection: typed counter, rollback counter, shared state.
    /// The pool is already on (or back on) the last-good `Arc` when this
    /// runs — the rollback counter records that the candidate was
    /// discarded in its favor.
    fn reject(&self, round: u64, version: u64, rej: GateReject) -> GateReject {
        let idx = GATE_REASONS
            .iter()
            .position(|r| *r == rej.reason())
            .expect("every reason is registered");
        self.metrics.rejected_total[idx].inc();
        self.metrics.rollbacks_total.inc();
        if let Some(state) = &self.state {
            state.record_reject(round, version, rej.reason(), rej.to_string());
        }
        rej
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use crate::snapshot::tests_support::tiny_dense_snapshot;

    fn pool(n: usize, registry: &MetricsRegistry) -> ReplicatedServer {
        ReplicatedServer::start(tiny_dense_snapshot(1), n, ServeConfig::default(), registry, None)
    }

    /// A gate sharing the pool's initial snapshot Arc, loose probe bound.
    fn gate(
        pool: &ReplicatedServer,
        registry: &MetricsRegistry,
        config: GateConfig,
    ) -> PublishGate {
        PublishGate::new(config, pool.engine(0).snapshot(), registry, None, None)
    }

    fn rejected(registry: &MetricsRegistry, reason: &str) -> u64 {
        registry.counter(&format!("publish_rejected_total{{reason=\"{reason}\"}}")).get()
    }

    #[test]
    fn accepts_a_sound_candidate_and_advances_last_good() {
        let registry = MetricsRegistry::new();
        let pool = pool(2, &registry);
        let g = gate(&pool, &registry, GateConfig { max_divergence: 1.0, ..Default::default() });
        let retired = g.offer(1, tiny_dense_snapshot(2), &pool).expect("sound candidate");
        assert_eq!(retired, 1);
        assert_eq!(pool.current_version(), 2);
        assert_eq!(g.last_good().version(), 2);
        assert_eq!(registry.counter("publish_accepted_total").get(), 1);
        assert_eq!(registry.counter("publish_rollbacks_total").get(), 0);
        pool.shutdown();
    }

    #[test]
    fn rejects_stale_version_and_keeps_serving_incumbent() {
        let registry = MetricsRegistry::new();
        let pool = pool(2, &registry);
        let g = gate(&pool, &registry, GateConfig { max_divergence: 1.0, ..Default::default() });
        let err = g.offer(1, tiny_dense_snapshot(1), &pool).unwrap_err();
        assert_eq!(err.reason(), "version");
        assert_eq!(pool.current_version(), 1, "pool untouched");
        assert_eq!(rejected(&registry, "version"), 1);
        assert_eq!(registry.counter("publish_rollbacks_total").get(), 1);
        // Every other reason counter exists and is zero (CI greps these).
        for reason in GATE_REASONS.iter().filter(|r| **r != "version") {
            assert_eq!(rejected(&registry, reason), 0, "{reason}");
        }
        pool.shutdown();
    }

    #[test]
    fn rejects_nonfinite_candidate() {
        let registry = MetricsRegistry::new();
        let pool = pool(1, &registry);
        let g = gate(&pool, &registry, GateConfig { max_divergence: 1.0, ..Default::default() });
        // Poison a candidate through the embedding path (mirrors a NaN
        // round reaching the store with the training guard off).
        let ps = mamdr_ps::ParameterServer::new(1, 2);
        ps.init_row(mamdr_ps::ParamKey::new(0, 0), vec![f32::NAN, 0.0]);
        let bad = ServingSnapshot::from_ps(5, &ps, 2);
        let err = g.offer(2, bad, &pool).unwrap_err();
        assert_eq!(err.reason(), "nonfinite");
        assert_eq!(pool.current_version(), 1);
        assert_eq!(rejected(&registry, "nonfinite"), 1);
        pool.shutdown();
    }

    #[test]
    fn rejects_probe_divergence_beyond_bound() {
        let registry = MetricsRegistry::new();
        let pool = pool(1, &registry);
        // Different fixture versions have different random weights; a
        // zero bound makes any real weight change a divergence rejection.
        let g = gate(&pool, &registry, GateConfig { max_divergence: 0.0, ..Default::default() });
        let err = g.offer(1, tiny_dense_snapshot(2), &pool).unwrap_err();
        assert_eq!(err.reason(), "divergence");
        assert!(matches!(err, GateReject::Divergence { bound, .. } if bound == 0.0));
        assert_eq!(pool.current_version(), 1);
        pool.shutdown();
    }

    #[test]
    fn rejects_mismatched_domain_count() {
        let registry = MetricsRegistry::new();
        let pool = pool(1, &registry);
        let g = gate(&pool, &registry, GateConfig { max_divergence: 1.0, ..Default::default() });
        let ps = mamdr_ps::ParameterServer::new(1, 2);
        let bad = ServingSnapshot::from_ps(7, &ps, 5); // 5 domains vs 2
        let err = g.offer(1, bad, &pool).unwrap_err();
        assert_eq!(err.reason(), "structure");
        pool.shutdown();
    }

    #[test]
    fn offer_file_rejects_corrupt_files_with_digest_reason() {
        let registry = MetricsRegistry::new();
        let pool = pool(1, &registry);
        let g = gate(&pool, &registry, GateConfig::default());
        let dir = std::env::temp_dir().join("mamdr-gate-digest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cand.mamdrsv");
        tiny_dense_snapshot(2).write_atomic(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = g.offer_file(3, &path, &pool).unwrap_err();
        assert_eq!(err.reason(), "digest");
        assert_eq!(rejected(&registry, "digest"), 1);
        assert_eq!(registry.counter("publish_rollbacks_total").get(), 1);
        assert_eq!(pool.current_version(), 1);
        std::fs::remove_dir_all(&dir).ok();
        pool.shutdown();
    }

    #[test]
    fn canary_accepts_within_drift_and_converges_pool() {
        let registry = MetricsRegistry::new();
        let pool = pool(4, &registry);
        let config = GateConfig {
            max_divergence: 1.0,
            canary_pct: 25.0, // 1 of 4 replicas
            max_canary_drift: 1.0,
            ..Default::default()
        };
        let g = gate(&pool, &registry, config);
        g.offer(1, tiny_dense_snapshot(2), &pool).expect("canary within bounds");
        for r in 0..4 {
            assert_eq!(pool.engine(r).current_version(), 2, "replica {r} converged");
        }
        assert_eq!(registry.counter("publish_canary_phases_total").get(), 1);
        assert_eq!(registry.counter("publish_accepted_total").get(), 1);
        pool.shutdown();
    }

    #[test]
    fn canary_drift_rolls_the_slice_back_byte_exactly() {
        let registry = MetricsRegistry::new();
        let pool = pool(4, &registry);
        let config = GateConfig {
            max_divergence: 1.0, // pass the offline probe check...
            canary_pct: 25.0,
            max_canary_drift: 0.0, // ...then fail on any live drift
            ..Default::default()
        };
        let g = gate(&pool, &registry, config);
        let incumbent = g.last_good();
        let err = g.offer(1, tiny_dense_snapshot(2), &pool).unwrap_err();
        assert_eq!(err.reason(), "canary");
        for r in 0..4 {
            assert_eq!(pool.engine(r).current_version(), 1, "replica {r} rolled back");
        }
        // Byte-exact rollback: the canary replica serves the *identical
        // allocation* the gate held as last-good, not a re-decoded copy.
        assert!(
            Arc::ptr_eq(&pool.engine(0).snapshot(), &incumbent),
            "rollback must re-pin the last-good Arc itself"
        );
        assert_eq!(rejected(&registry, "canary"), 1);
        assert_eq!(registry.counter("publish_rollbacks_total").get(), 1);
        pool.shutdown();
    }
}
