//! Criterion benchmark of the §IV-E embedding cache: wall-clock of one
//! distributed outer round with and without the static/dynamic cache, and
//! the raw KV-store operation costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mamdr_data::presets;
use mamdr_ps::{DistributedConfig, DistributedMamdr, ParamKey, ParameterServer, SyncMode};

fn bench_distributed_round(c: &mut Criterion) {
    let ds = presets::industry(12, 800, 7);
    let mut group = c.benchmark_group("distributed_round");
    group.sample_size(10);
    for (name, mode) in [("cached", SyncMode::Cached), ("no_cache", SyncMode::NoCache)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = DistributedConfig { mode, n_workers: 4, epochs: 1, ..Default::default() };
                let trainer = DistributedMamdr::new(&ds, cfg);
                black_box(trainer.train(&ds).total_bytes)
            })
        });
    }
    group.finish();
}

fn bench_kv_ops(c: &mut Criterion) {
    let ps = ParameterServer::new(8, 16);
    for r in 0..10_000u32 {
        ps.init_row(ParamKey::new(0, r), vec![0.0; 16]);
    }
    c.bench_function("ps_pull", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % 10_000;
            black_box(ps.pull(ParamKey::new(0, i)))
        })
    });
    c.bench_function("ps_push_delta", |b| {
        let delta = vec![0.01f32; 16];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % 10_000;
            ps.push_delta(ParamKey::new(0, i), &delta);
        })
    });
}

criterion_group!(benches, bench_distributed_round, bench_kv_ops);
criterion_main!(benches);
