//! Criterion micro-benchmarks of the tensor kernels the training loops
//! spend their time in (matmul at CTR-model sizes, gather/scatter,
//! softmax, flat-vector axpy).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mamdr_tensor::rng::seeded;
use mamdr_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in &[(128usize, 80usize, 64usize), (128, 64, 32), (256, 128, 64)] {
        let mut rng = seeded(1);
        let a = Tensor::randn(&mut rng, [m, k], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [k, n], 0.0, 1.0);
        group
            .bench_function(format!("{m}x{k}x{n}"), |bench| bench.iter(|| black_box(a.matmul(&b))));
    }
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut rng = seeded(2);
    let table = Tensor::randn(&mut rng, [10_000, 16], 0.0, 1.0);
    let ids: Vec<u32> = (0..256u32).map(|i| (i * 37) % 10_000).collect();
    c.bench_function("gather_256x16", |b| b.iter(|| black_box(table.gather_rows(&ids))));
    let src = Tensor::ones([256, 16]);
    c.bench_function("scatter_add_256x16", |b| {
        b.iter(|| {
            let mut grad = Tensor::zeros([10_000, 16]);
            grad.scatter_add_rows(&ids, &src);
            black_box(grad)
        })
    });
}

fn bench_softmax_and_axpy(c: &mut Criterion) {
    let mut rng = seeded(3);
    let m = Tensor::randn(&mut rng, [256, 64], 0.0, 1.0);
    c.bench_function("softmax_rows_256x64", |b| b.iter(|| black_box(m.softmax_rows())));
    let x: Vec<f32> = (0..100_000).map(|i| i as f32).collect();
    c.bench_function("flat_axpy_100k", |b| {
        b.iter(|| {
            let mut y = vec![0.0f32; 100_000];
            mamdr_nn::vecmath::axpy(&mut y, 0.5, &x);
            black_box(y)
        })
    });
}

criterion_group!(benches, bench_matmul, bench_gather_scatter, bench_softmax_and_axpy);
criterion_main!(benches);
