//! The §III-C complexity claim, measured: one training round of Domain
//! Negotiation costs O(n) in the number of domains while PCGrad costs
//! O(n²) (n gradients plus n² pairwise projections). Wall-clock per round
//! is benchmarked at n ∈ {4, 8, 16} domains.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mamdr_core::env::TrainEnv;
use mamdr_core::frameworks::mamdr::domain_negotiation_epoch;
use mamdr_core::TrainConfig;
use mamdr_data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{build_model, BuiltModel, FeatureConfig, ModelConfig, ModelKind};
use mamdr_nn::vecmath;

fn dataset(n_domains: usize) -> MdrDataset {
    let mut cfg = GeneratorConfig::base("scal", 300, 150, 3);
    // Fixed per-domain size so total work scales linearly with n for DN.
    cfg.domains = (0..n_domains).map(|i| DomainSpec::new(format!("d{i}"), 256, 0.3)).collect();
    cfg.generate()
}

fn built_for(ds: &MdrDataset) -> BuiltModel {
    let fc = FeatureConfig::from_dataset(ds);
    build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), ds.n_domains(), 1)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_cost_vs_domains");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let ds = dataset(n);
        let built = built_for(&ds);
        let mut cfg = TrainConfig::quick();
        cfg.batch_size = 256; // one batch per domain per round

        group.bench_with_input(BenchmarkId::new("dn", n), &n, |b, _| {
            b.iter(|| {
                let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), cfg);
                let mut shared = env.init_flat();
                domain_negotiation_epoch(&mut env, &mut shared);
                black_box(shared[0])
            })
        });

        group.bench_with_input(BenchmarkId::new("pcgrad", n), &n, |b, _| {
            b.iter(|| {
                let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), cfg);
                let theta = env.init_flat();
                // One PCGrad round: n gradients + n*(n-1) projections.
                let grads: Vec<Vec<f32>> = (0..n)
                    .map(|d| {
                        let batch = env.sample_train_batch(d);
                        env.grad(&theta, &batch, true).1
                    })
                    .collect();
                let mut total = vec![0.0f32; theta.len()];
                for i in 0..n {
                    let mut gi = grads[i].clone();
                    for (j, gj) in grads.iter().enumerate() {
                        if i != j {
                            vecmath::project_conflict(&mut gi, gj);
                        }
                    }
                    vecmath::axpy(&mut total, 1.0, &gi);
                }
                black_box(total[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
