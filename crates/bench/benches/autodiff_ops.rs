//! Criterion micro-benchmarks of full forward+backward passes through the
//! autodiff tape for representative architectures, plus optimizer steps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mamdr_data::{make_batch, DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{build_model, loss_and_grads, FeatureConfig, ModelConfig, ModelKind};
use mamdr_nn::{ForwardCtx, OptimizerKind};
use mamdr_tensor::rng::seeded;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("bench", 2_000, 800, 5);
    cfg.dense_dim = 8;
    cfg.domains = vec![DomainSpec::new("a", 2_000, 0.3)];
    cfg.generate()
}

fn bench_forward_backward(c: &mut Criterion) {
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let mc = ModelConfig::default();
    let batch = make_batch(&ds, 0, &ds.domains[0].train[..128]);
    let mut group = c.benchmark_group("fwd_bwd_batch128");
    for kind in [ModelKind::Mlp, ModelKind::DeepFm, ModelKind::AutoInt, ModelKind::Star] {
        let built = build_model(kind, &fc, &mc, 1, 7);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rng = seeded(9);
                let mut ctx = ForwardCtx::train(&mut rng);
                black_box(loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut ctx))
            })
        });
    }
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let n = 100_000;
    let grads: Vec<f32> = (0..n).map(|i| (i as f32 * 0.001).sin()).collect();
    let mut group = c.benchmark_group("optimizer_step_100k");
    for (name, kind) in [
        ("sgd", OptimizerKind::Sgd { lr: 0.01, momentum: 0.0 }),
        ("adam", OptimizerKind::Adam { lr: 0.001 }),
        ("adagrad", OptimizerKind::Adagrad { lr: 0.01 }),
    ] {
        group.bench_function(name, |b| {
            let mut opt = kind.build(n);
            let mut params = vec![0.0f32; n];
            b.iter(|| {
                opt.step(&mut params, &grads);
                black_box(params[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_backward, bench_optimizers);
criterion_main!(benches);
