//! Minimal command-line parsing shared by the table binaries.

/// Common knobs for every benchmark binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset size multiplier relative to the preset defaults.
    pub scale: f64,
    /// Training epochs (0 = keep the binary's default).
    pub epochs: usize,
    /// Worker threads, both for independent runs and for the deterministic
    /// kernel pool (results are bit-identical at any value).
    pub threads: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Smoke-run mode: shrinks the dataset scale and caps epochs so a full
    /// table regenerates in seconds. Output keeps the same shape.
    pub quick: bool,
    /// Telemetry sink: JSONL event/metric dump path (plus a sibling
    /// `.prom` Prometheus-style snapshot). `None` disables telemetry.
    pub metrics_out: Option<String>,
    /// PS–worker count for the distributed binaries (0 = keep the
    /// binary's default). Distinct from `--threads`, which sizes the
    /// kernel pool inside each worker.
    pub workers: usize,
    /// Deterministic fault-injection spec for the networked runtime,
    /// e.g. `seed=7,drop_send=0.05,dup=0.05,disconnect=3`. `None` runs a
    /// perfect network.
    pub fault_plan: Option<String>,
    /// Write a parameter checkpoint + round journal every this many
    /// rounds (0 disables journaling). Requires `--checkpoint-dir` or
    /// `--resume`.
    pub checkpoint_every: usize,
    /// Directory the distributed binaries write checkpoints/journals to.
    pub checkpoint_dir: Option<String>,
    /// Resume a distributed run from the newest valid journal in this
    /// directory (also used as the checkpoint destination).
    pub resume: Option<String>,
    /// Chrome `trace_event` JSON output path. Setting it attaches a span
    /// tracer to the run; load the file at `chrome://tracing` or in
    /// Perfetto. `None` runs untraced (the span paths cost nothing).
    pub trace_out: Option<String>,
    /// Print a per-phase wall-clock attribution table at exit (implies a
    /// tracer, like `--trace-out`).
    pub phase_summary: bool,
    /// Bind a live introspection HTTP endpoint (`/healthz`, `/metrics`,
    /// `/spans`) on this address for the duration of the run,
    /// e.g. `127.0.0.1:9115`. `None` disables it.
    pub introspect_addr: Option<String>,
    /// In-flight request window per RPC client connection (0 = keep the
    /// retry policy's default). Depth 1 serializes requests; results are
    /// bit-identical at any depth.
    pub pipeline_depth: usize,
    /// Parameter-server shard count for the distributed binaries. `1`
    /// (the default) runs the classic single-server loopback; higher
    /// values split the key space across that many servers by consistent
    /// hash. Results are bit-identical at any shard count.
    pub shards: usize,
    /// Dataset preset for the distributed binaries (`None` keeps the
    /// binary's default). `industry` is the 64-domain learning-dynamics
    /// simulation; `longtail` is the 2048-domain Zipf key-space stress
    /// preset for sharding runs.
    pub preset: Option<String>,
    /// Serve-bench mode: drive a trace-scheduled open-loop load (arrivals
    /// on the trace clock, overload sheds) instead of closed-loop clients.
    pub open_loop: bool,
    /// Open-loop offered rate, requests per second (0 = the binary's
    /// default).
    pub rate: f64,
    /// Open-loop trace duration, seconds (0 = the binary's default).
    pub duration: f64,
    /// Serving replica count behind the deterministic user router.
    pub replicas: usize,
    /// Micro-batch close policy for the serving dispatcher
    /// (`fixed` | `adaptive`; `None` keeps the server default, adaptive).
    pub policy: Option<String>,
    /// Continual publishing: commit a serving snapshot every this many
    /// training rounds (0 disables). Snapshots land under the checkpoint
    /// directory, so `--publish-every` requires `--checkpoint-dir`.
    pub publish_every: usize,
    /// Canary slice size as a percentage of the replica pool, in (0, 50]
    /// (0 disables the canary phase of the publish gate).
    pub canary_pct: f64,
    /// Live continual-serving mode for `dist_bench`: stand up a gated
    /// replica pool next to the trainer, publish through the gate every
    /// `--publish-every` rounds, and drive closed-loop traffic across the
    /// swaps. Requires `--publish-every`.
    pub serve_live: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            epochs: 0,
            threads: default_threads(),
            seed: 42,
            quick: false,
            metrics_out: None,
            workers: 0,
            fault_plan: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: None,
            trace_out: None,
            phase_summary: false,
            introspect_addr: None,
            pipeline_depth: 0,
            shards: 1,
            preset: None,
            open_loop: false,
            rate: 0.0,
            duration: 0.0,
            replicas: 1,
            policy: None,
            publish_every: 0,
            canary_pct: 0.0,
            serve_live: false,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Rejects an output path that cannot possibly be written: an existing
/// directory, or a file under a missing parent directory.
fn check_out_path(flag: &str, path: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        return Err(format!("{flag} {path} is a directory; pass a file path"));
    }
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(format!("{flag} parent directory {} does not exist", parent.display()));
        }
    }
    Ok(())
}

impl BenchArgs {
    /// Parses `--scale`, `--epochs`, `--threads`, `--seed`, `--quick`,
    /// `--metrics-out`, `--workers` and `--fault-plan` from an argument
    /// iterator (unknown flags abort with a usage message).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        fn num(name: &str, v: String) -> f64 {
            v.parse::<f64>().unwrap_or_else(|e| panic!("bad value for {name}: {e}"))
        }
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut take = |name: &str| -> String {
                args.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => out.scale = num("--scale", take("--scale")),
                "--epochs" => out.epochs = num("--epochs", take("--epochs")) as usize,
                "--threads" => out.threads = num("--threads", take("--threads")) as usize,
                "--seed" => out.seed = num("--seed", take("--seed")) as u64,
                "--quick" => out.quick = true,
                "--metrics-out" => out.metrics_out = Some(take("--metrics-out")),
                "--workers" => out.workers = num("--workers", take("--workers")) as usize,
                "--fault-plan" => out.fault_plan = Some(take("--fault-plan")),
                "--checkpoint-every" => {
                    out.checkpoint_every =
                        num("--checkpoint-every", take("--checkpoint-every")) as usize;
                }
                "--checkpoint-dir" => out.checkpoint_dir = Some(take("--checkpoint-dir")),
                "--resume" => out.resume = Some(take("--resume")),
                "--trace-out" => out.trace_out = Some(take("--trace-out")),
                "--phase-summary" => out.phase_summary = true,
                "--introspect-addr" => out.introspect_addr = Some(take("--introspect-addr")),
                "--pipeline-depth" => {
                    out.pipeline_depth = num("--pipeline-depth", take("--pipeline-depth")) as usize;
                }
                "--shards" => out.shards = num("--shards", take("--shards")) as usize,
                "--preset" => out.preset = Some(take("--preset")),
                "--open-loop" => out.open_loop = true,
                "--rate" => out.rate = num("--rate", take("--rate")),
                "--duration" => out.duration = num("--duration", take("--duration")),
                "--replicas" => out.replicas = num("--replicas", take("--replicas")) as usize,
                "--policy" => out.policy = Some(take("--policy")),
                "--publish-every" => {
                    out.publish_every = num("--publish-every", take("--publish-every")) as usize;
                }
                "--canary-pct" => out.canary_pct = num("--canary-pct", take("--canary-pct")),
                "--serve-live" => out.serve_live = true,
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --scale <f> --epochs <n> --threads <n> --seed <n> --quick --metrics-out <path> --workers <n> --fault-plan <spec> --checkpoint-every <n> --checkpoint-dir <dir> --resume <dir> --trace-out <path> --phase-summary --introspect-addr <addr> --pipeline-depth <n> --shards <n> --preset <industry|longtail> --open-loop --rate <rps> --duration <s> --replicas <n> --policy <fixed|adaptive> --publish-every <n> --canary-pct <p> --serve-live"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Parses the process arguments, validates them up front (a bad
    /// `--threads` or `--metrics-out` aborts with a clear message *before*
    /// any dataset generation or training starts), and applies `--threads`
    /// to the kernel pool so every binary honors the knob without its own
    /// wiring.
    pub fn from_env() -> Self {
        let args = Self::parse(std::env::args().skip(1));
        if let Err(msg) = args.validate() {
            eprintln!("invalid arguments: {msg}");
            std::process::exit(2);
        }
        args.apply_kernel_threads();
        args
    }

    /// Checks flag values for problems that would otherwise only surface
    /// minutes into a run: a zero or absurd `--threads`, a non-positive
    /// `--scale`, or a `--metrics-out` path that cannot possibly be written
    /// (missing parent directory, or an existing directory).
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("--threads must be at least 1".into());
        }
        if self.threads > MAX_THREADS {
            return Err(format!(
                "--threads {} exceeds the supported maximum of {MAX_THREADS}",
                self.threads
            ));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("--scale must be a positive number, got {}", self.scale));
        }
        if self.workers > MAX_THREADS {
            return Err(format!(
                "--workers {} exceeds the supported maximum of {MAX_THREADS}",
                self.workers
            ));
        }
        if let Some(spec) = &self.fault_plan {
            if let Err(e) = mamdr_rpc::FaultPlan::parse(spec) {
                return Err(format!("--fault-plan {spec}: {e}"));
            }
        }
        if self.checkpoint_every > 0 && self.checkpoint_dir.is_none() && self.resume.is_none() {
            return Err(
                "--checkpoint-every requires --checkpoint-dir <dir> (or --resume <dir>)".into()
            );
        }
        if let Some(dir) = &self.resume {
            if !std::path::Path::new(dir).is_dir() {
                return Err(format!("--resume {dir} is not an existing directory"));
            }
        }
        if let Some(path) = &self.metrics_out {
            check_out_path("--metrics-out", path)?;
        }
        if let Some(path) = &self.trace_out {
            check_out_path("--trace-out", path)?;
        }
        if let Some(addr) = &self.introspect_addr {
            if addr.parse::<std::net::SocketAddr>().is_err() {
                return Err(format!(
                    "--introspect-addr {addr} is not a socket address (try 127.0.0.1:9115)"
                ));
            }
        }
        if self.pipeline_depth > MAX_PIPELINE_DEPTH {
            return Err(format!(
                "--pipeline-depth {} exceeds the supported maximum of {MAX_PIPELINE_DEPTH}",
                self.pipeline_depth
            ));
        }
        if self.shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        if self.shards > MAX_SHARDS {
            return Err(format!(
                "--shards {} exceeds the supported maximum of {MAX_SHARDS}",
                self.shards
            ));
        }
        if let Some(p) = &self.preset {
            if !matches!(p.as_str(), "industry" | "longtail") {
                return Err(format!("--preset {p} is unknown (expected industry or longtail)"));
            }
        }
        if self.replicas == 0 {
            return Err("--replicas must be at least 1".into());
        }
        if self.replicas > MAX_REPLICAS {
            return Err(format!(
                "--replicas {} exceeds the supported maximum of {MAX_REPLICAS}",
                self.replicas
            ));
        }
        if !(self.rate.is_finite() && self.rate >= 0.0) {
            return Err(format!("--rate must be a non-negative number, got {}", self.rate));
        }
        if !(self.duration.is_finite() && self.duration >= 0.0) {
            return Err(format!("--duration must be a non-negative number, got {}", self.duration));
        }
        if let Some(p) = &self.policy {
            if let Err(e) = mamdr_serve::BatchPolicy::parse(p) {
                return Err(format!("--policy: {e}"));
            }
        }
        if self.publish_every > 0 && self.checkpoint_dir.is_none() {
            return Err("--publish-every requires --checkpoint-dir <dir> (snapshots are \
                        committed next to the checkpoints)"
                .into());
        }
        // NaN-safe: a NaN --canary-pct fails the range check too.
        if self.canary_pct != 0.0 && !(self.canary_pct > 0.0 && self.canary_pct <= 50.0) {
            return Err(format!(
                "--canary-pct must be in (0, 50] (a canary larger than half the pool is a \
                 cutover, not a canary), got {}",
                self.canary_pct
            ));
        }
        if self.serve_live && self.publish_every == 0 {
            return Err("--serve-live requires --publish-every <n> (live serving without \
                        publication has nothing to swap)"
                .into());
        }
        // A multi-shard resume restores from a shard manifest, never from
        // the legacy single-server journal — catch a directory that cannot
        // possibly satisfy it before any training starts.
        if self.shards > 1 {
            if let Some(dir) = &self.resume {
                let has_manifest = std::fs::read_dir(dir)
                    .ok()
                    .into_iter()
                    .flatten()
                    .flatten()
                    .any(|e| e.path().extension().is_some_and(|x| x == "mamdrmf"));
                if !has_manifest {
                    return Err(format!(
                        "--resume {dir} holds no shard manifest (*.mamdrmf); \
                         a {}-shard resume needs a committed manifest",
                        self.shards
                    ));
                }
            }
        }
        Ok(())
    }

    /// Epochs to use given a binary default, after the `--quick` cap.
    pub fn epochs_or(&self, default: usize) -> usize {
        let d = if self.quick { default.min(QUICK_EPOCH_CAP) } else { default };
        if self.epochs == 0 {
            d
        } else {
            self.epochs
        }
    }

    /// Workers to use given a binary default (`--workers 0` keeps it).
    pub fn workers_or(&self, default: usize) -> usize {
        if self.workers == 0 {
            default
        } else {
            self.workers
        }
    }

    /// Applies `--threads` to the process-wide deterministic kernel pool.
    /// Binaries call this once at startup; runs driven through
    /// `TrainConfig::threads` re-apply the same value.
    pub fn apply_kernel_threads(&self) {
        mamdr_tensor::pool::set_threads(self.threads);
    }
}

/// Upper bound [`BenchArgs::validate`] accepts for `--threads`; values past
/// it are always typos, and spawning that many OS threads would thrash.
pub const MAX_THREADS: usize = 1024;

/// Upper bound [`BenchArgs::validate`] accepts for `--pipeline-depth`;
/// a deeper window than this buys nothing and risks absurd batching.
pub const MAX_PIPELINE_DEPTH: usize = 4096;

/// Upper bound [`BenchArgs::validate`] accepts for `--shards`; one
/// loopback process cannot usefully host more servers than this, and the
/// manifest format itself caps a deployment at 4096 shards.
pub const MAX_SHARDS: usize = 64;

/// Upper bound [`BenchArgs::validate`] accepts for `--replicas`; one
/// process cannot usefully host more complete serving stacks than this.
pub const MAX_REPLICAS: usize = 64;

/// `--quick` caps per-binary default epochs at this many.
pub const QUICK_EPOCH_CAP: usize = 3;

/// `--quick` multiplies the dataset scale by this factor.
pub const QUICK_SCALE_FACTOR: f64 = 0.25;

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> BenchArgs {
        BenchArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.epochs, 0);
        let a = parse(&["--scale", "0.25", "--epochs", "3", "--seed", "9"]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.epochs_or(10), 3);
        assert_eq!(parse(&[]).epochs_or(10), 10);
    }

    #[test]
    fn validation_rejects_bad_threads_and_scale() {
        assert!(parse(&[]).validate().is_ok());
        let err = parse(&["--threads", "0"]).validate().unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = parse(&["--threads", "1000000"]).validate().unwrap_err();
        assert!(err.contains("maximum"), "{err}");
        let err = parse(&["--scale", "-2"]).validate().unwrap_err();
        assert!(err.contains("--scale"), "{err}");
        assert!(parse(&["--threads", "4", "--scale", "0.5"]).validate().is_ok());
    }

    #[test]
    fn validation_rejects_unwritable_metrics_out() {
        let err = parse(&["--metrics-out", "/no/such/dir/ever/m.jsonl"]).validate().unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        let dir = std::env::temp_dir();
        let err = parse(&["--metrics-out", dir.to_str().unwrap()]).validate().unwrap_err();
        assert!(err.contains("directory"), "{err}");
        let ok = dir.join("mamdr-args-test.jsonl");
        assert!(parse(&["--metrics-out", ok.to_str().unwrap()]).validate().is_ok());
    }

    #[test]
    fn quick_caps_default_epochs_but_not_explicit_ones() {
        let a = parse(&["--quick"]);
        assert!(a.quick);
        assert_eq!(a.epochs_or(20), QUICK_EPOCH_CAP);
        assert_eq!(a.epochs_or(2), 2);
        let a = parse(&["--quick", "--epochs", "7"]);
        assert_eq!(a.epochs_or(20), 7);
    }

    #[test]
    fn workers_and_fault_plan_parse_and_validate() {
        let a = parse(&[]);
        assert_eq!(a.workers, 0);
        assert_eq!(a.fault_plan, None);
        assert_eq!(a.workers_or(2), 2);
        let a = parse(&["--workers", "4", "--fault-plan", "seed=7,drop_send=0.05,disconnect=3"]);
        assert_eq!(a.workers, 4);
        assert_eq!(a.workers_or(2), 4);
        assert!(a.validate().is_ok());
        let err = parse(&["--workers", "9999"]).validate().unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let err = parse(&["--fault-plan", "drop_send=banana"]).validate().unwrap_err();
        assert!(err.contains("--fault-plan"), "{err}");
        let err = parse(&["--fault-plan", "nonsense=1"]).validate().unwrap_err();
        assert!(err.contains("--fault-plan"), "{err}");
    }

    #[test]
    fn checkpoint_and_resume_flags_parse_and_validate() {
        let a = parse(&[]);
        assert_eq!(a.checkpoint_every, 0);
        assert_eq!(a.checkpoint_dir, None);
        assert_eq!(a.resume, None);
        assert!(a.validate().is_ok());

        // Journaling needs a destination directory.
        let err = parse(&["--checkpoint-every", "2"]).validate().unwrap_err();
        assert!(err.contains("--checkpoint-every"), "{err}");
        let a = parse(&["--checkpoint-every", "2", "--checkpoint-dir", "/tmp/ckpts"]);
        assert_eq!(a.checkpoint_every, 2);
        assert_eq!(a.checkpoint_dir.as_deref(), Some("/tmp/ckpts"));
        assert!(a.validate().is_ok());

        // Resume demands an existing directory up front.
        let err = parse(&["--resume", "/no/such/dir/ever"]).validate().unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        let dir = std::env::temp_dir();
        let a = parse(&["--resume", dir.to_str().unwrap()]);
        assert_eq!(a.resume.as_deref(), dir.to_str());
        assert!(a.validate().is_ok());
        // A resume directory doubles as the checkpoint destination.
        let a = parse(&["--checkpoint-every", "2", "--resume", dir.to_str().unwrap()]);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn metrics_out_is_captured_verbatim() {
        assert_eq!(parse(&[]).metrics_out, None);
        let a = parse(&["--metrics-out", "/tmp/run.jsonl"]);
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/run.jsonl"));
    }

    #[test]
    fn tracing_flags_parse_and_validate() {
        let a = parse(&[]);
        assert_eq!(a.trace_out, None);
        assert!(!a.phase_summary);
        assert_eq!(a.introspect_addr, None);

        let a = parse(&["--trace-out", "/tmp/trace.json", "--phase-summary"]);
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/trace.json"));
        assert!(a.phase_summary);
        assert!(a.validate().is_ok());

        // --trace-out paths get the same early checks as --metrics-out.
        let err = parse(&["--trace-out", "/no/such/dir/ever/t.json"]).validate().unwrap_err();
        assert!(err.contains("--trace-out"), "{err}");
        let dir = std::env::temp_dir();
        let err = parse(&["--trace-out", dir.to_str().unwrap()]).validate().unwrap_err();
        assert!(err.contains("directory"), "{err}");
    }

    #[test]
    fn pipeline_depth_parses_and_validates() {
        let a = parse(&[]);
        assert_eq!(a.pipeline_depth, 0);
        assert!(a.validate().is_ok());
        let a = parse(&["--pipeline-depth", "8"]);
        assert_eq!(a.pipeline_depth, 8);
        assert!(a.validate().is_ok());
        assert!(parse(&["--pipeline-depth", "1"]).validate().is_ok());
        let err = parse(&["--pipeline-depth", "100000"]).validate().unwrap_err();
        assert!(err.contains("--pipeline-depth"), "{err}");
    }

    #[test]
    fn shards_parse_and_validate() {
        let a = parse(&[]);
        assert_eq!(a.shards, 1);
        assert!(a.validate().is_ok());
        let a = parse(&["--shards", "4"]);
        assert_eq!(a.shards, 4);
        assert!(a.validate().is_ok());
        assert!(parse(&["--shards", "64"]).validate().is_ok());
    }

    #[test]
    fn zero_shards_are_rejected() {
        let err = parse(&["--shards", "0"]).validate().unwrap_err();
        assert!(err.contains("--shards"), "{err}");
    }

    #[test]
    fn absurd_shard_counts_are_rejected() {
        let err = parse(&["--shards", "65"]).validate().unwrap_err();
        assert!(err.contains("maximum"), "{err}");
    }

    #[test]
    fn unknown_presets_are_rejected() {
        assert!(parse(&["--preset", "industry"]).validate().is_ok());
        assert!(parse(&["--preset", "longtail"]).validate().is_ok());
        let err = parse(&["--preset", "banana"]).validate().unwrap_err();
        assert!(err.contains("--preset"), "{err}");
    }

    #[test]
    fn sharded_resume_demands_a_committed_manifest() {
        let dir = std::env::temp_dir().join(format!("mamdr-args-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_str().unwrap();

        // A single-server resume from a journal-only directory is still
        // allowed; the trainer itself validates the journal.
        assert!(parse(&["--resume", dir_s]).validate().is_ok());

        // A multi-shard resume from a directory with no manifest cannot
        // work and is rejected up front...
        let err = parse(&["--shards", "2", "--resume", dir_s]).validate().unwrap_err();
        assert!(err.contains("manifest"), "{err}");

        // ...and passes once a committed manifest exists.
        std::fs::write(dir.join("manifest-0000000001.mamdrmf"), b"x").unwrap();
        assert!(parse(&["--shards", "2", "--resume", dir_s]).validate().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_loop_flags_parse_and_validate() {
        let a = parse(&[]);
        assert!(!a.open_loop);
        assert_eq!(a.rate, 0.0);
        assert_eq!(a.duration, 0.0);
        assert_eq!(a.replicas, 1);
        assert_eq!(a.policy, None);
        assert!(a.validate().is_ok());

        let a = parse(&[
            "--open-loop",
            "--rate",
            "50000",
            "--duration",
            "20",
            "--replicas",
            "4",
            "--policy",
            "adaptive",
        ]);
        assert!(a.open_loop);
        assert_eq!(a.rate, 50_000.0);
        assert_eq!(a.duration, 20.0);
        assert_eq!(a.replicas, 4);
        assert_eq!(a.policy.as_deref(), Some("adaptive"));
        assert!(a.validate().is_ok());
        assert!(parse(&["--policy", "fixed"]).validate().is_ok());

        let err = parse(&["--replicas", "0"]).validate().unwrap_err();
        assert!(err.contains("--replicas"), "{err}");
        let err = parse(&["--replicas", "65"]).validate().unwrap_err();
        assert!(err.contains("maximum"), "{err}");
        let err = parse(&["--rate", "-5"]).validate().unwrap_err();
        assert!(err.contains("--rate"), "{err}");
        let err = parse(&["--duration", "-1"]).validate().unwrap_err();
        assert!(err.contains("--duration"), "{err}");
        let err = parse(&["--policy", "banana"]).validate().unwrap_err();
        assert!(err.contains("--policy"), "{err}");
    }

    #[test]
    fn publish_flags_parse_and_validate() {
        let a = parse(&[]);
        assert_eq!(a.publish_every, 0);
        assert_eq!(a.canary_pct, 0.0);
        assert!(!a.serve_live);
        assert!(a.validate().is_ok());

        let a = parse(&[
            "--publish-every",
            "2",
            "--checkpoint-dir",
            "/tmp/ckpts",
            "--canary-pct",
            "25",
            "--serve-live",
        ]);
        assert_eq!(a.publish_every, 2);
        assert_eq!(a.canary_pct, 25.0);
        assert!(a.serve_live);
        assert!(a.validate().is_ok());

        // Snapshots are committed under the checkpoint directory.
        let err = parse(&["--publish-every", "2"]).validate().unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");

        // Live serving without publication has nothing to swap.
        let err = parse(&["--serve-live"]).validate().unwrap_err();
        assert!(err.contains("--publish-every"), "{err}");

        // The canary slice must stay a minority of the pool.
        for bad in ["-1", "0.0000001", "50.5", "100", "NaN"] {
            let words = ["--canary-pct", bad];
            let a = parse(&words);
            if bad == "0.0000001" {
                assert!(a.validate().is_ok(), "tiny positive pct is valid");
            } else {
                let err = a.validate().unwrap_err();
                assert!(err.contains("--canary-pct"), "{bad}: {err}");
            }
        }
        assert!(parse(&["--canary-pct", "50"]).validate().is_ok());
    }

    #[test]
    fn introspect_addr_must_be_a_socket_address() {
        assert!(parse(&["--introspect-addr", "127.0.0.1:0"]).validate().is_ok());
        assert!(parse(&["--introspect-addr", "127.0.0.1:9115"]).validate().is_ok());
        let err = parse(&["--introspect-addr", "localhost"]).validate().unwrap_err();
        assert!(err.contains("--introspect-addr"), "{err}");
        let err = parse(&["--introspect-addr", "9115"]).validate().unwrap_err();
        assert!(err.contains("socket address"), "{err}");
    }
}
