//! Minimal command-line parsing shared by the table binaries.

/// Common knobs for every benchmark binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Dataset size multiplier relative to the preset defaults.
    pub scale: f64,
    /// Training epochs (0 = keep the binary's default).
    pub epochs: usize,
    /// Worker threads for independent runs.
    pub threads: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 1.0, epochs: 0, threads: default_threads(), seed: 42 }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl BenchArgs {
    /// Parses `--scale`, `--epochs`, `--threads` and `--seed` from an
    /// argument iterator (unknown flags abort with a usage message).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut take = |name: &str| -> f64 {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
                    .parse::<f64>()
                    .unwrap_or_else(|e| panic!("bad value for {name}: {e}"))
            };
            match flag.as_str() {
                "--scale" => out.scale = take("--scale"),
                "--epochs" => out.epochs = take("--epochs") as usize,
                "--threads" => out.threads = (take("--threads") as usize).max(1),
                "--seed" => out.seed = take("--seed") as u64,
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --scale <f> --epochs <n> --threads <n> --seed <n>"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Epochs to use given a binary default.
    pub fn epochs_or(&self, default: usize) -> usize {
        if self.epochs == 0 {
            default
        } else {
            self.epochs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> BenchArgs {
        BenchArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.epochs, 0);
        let a = parse(&["--scale", "0.25", "--epochs", "3", "--seed", "9"]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.epochs_or(10), 3);
        assert_eq!(parse(&[]).epochs_or(10), 10);
    }

    #[test]
    fn threads_floor_is_one() {
        let a = parse(&["--threads", "0"]);
        assert_eq!(a.threads, 1);
    }
}
