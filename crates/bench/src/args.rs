//! Minimal command-line parsing shared by the table binaries.

/// Common knobs for every benchmark binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset size multiplier relative to the preset defaults.
    pub scale: f64,
    /// Training epochs (0 = keep the binary's default).
    pub epochs: usize,
    /// Worker threads for independent runs.
    pub threads: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Telemetry sink: JSONL event/metric dump path (plus a sibling
    /// `.prom` Prometheus-style snapshot). `None` disables telemetry.
    pub metrics_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 1.0, epochs: 0, threads: default_threads(), seed: 42, metrics_out: None }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

impl BenchArgs {
    /// Parses `--scale`, `--epochs`, `--threads`, `--seed` and
    /// `--metrics-out` from an argument iterator (unknown flags abort with
    /// a usage message).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        fn num(name: &str, v: String) -> f64 {
            v.parse::<f64>().unwrap_or_else(|e| panic!("bad value for {name}: {e}"))
        }
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut take = |name: &str| -> String {
                args.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => out.scale = num("--scale", take("--scale")),
                "--epochs" => out.epochs = num("--epochs", take("--epochs")) as usize,
                "--threads" => out.threads = (num("--threads", take("--threads")) as usize).max(1),
                "--seed" => out.seed = num("--seed", take("--seed")) as u64,
                "--metrics-out" => out.metrics_out = Some(take("--metrics-out")),
                other => {
                    eprintln!(
                        "unknown flag {other}; supported: --scale <f> --epochs <n> --threads <n> --seed <n> --metrics-out <path>"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Epochs to use given a binary default.
    pub fn epochs_or(&self, default: usize) -> usize {
        if self.epochs == 0 {
            default
        } else {
            self.epochs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> BenchArgs {
        BenchArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.epochs, 0);
        let a = parse(&["--scale", "0.25", "--epochs", "3", "--seed", "9"]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.epochs, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.epochs_or(10), 3);
        assert_eq!(parse(&[]).epochs_or(10), 10);
    }

    #[test]
    fn threads_floor_is_one() {
        let a = parse(&["--threads", "0"]);
        assert_eq!(a.threads, 1);
    }

    #[test]
    fn metrics_out_is_captured_verbatim() {
        assert_eq!(parse(&[]).metrics_out, None);
        let a = parse(&["--metrics-out", "/tmp/run.jsonl"]);
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/run.jsonl"));
    }
}
