//! `--metrics-out` plumbing shared by the benchmark binaries: one
//! process-wide [`MetricsRegistry`] + [`EventLog`] pair, observer handout
//! for training jobs, and the exit-time dump.

use crate::args::BenchArgs;
use mamdr_obs::{EventLog, MetricsRegistry, TelemetryObserver, TrainObserver, Value};
use std::path::PathBuf;
use std::sync::Arc;

/// The telemetry sink of one benchmark process.
///
/// When `--metrics-out` is absent the sink is disabled: [`observer`]
/// returns `None` (training runs fully unobserved and pays nothing) and
/// [`finish`] is a no-op. When present, events stream to the JSONL file as
/// they happen and [`finish`] appends a registry dump plus writes a
/// sibling Prometheus-style `.prom` snapshot.
///
/// [`observer`]: BenchTelemetry::observer
/// [`finish`]: BenchTelemetry::finish
pub struct BenchTelemetry {
    registry: Arc<MetricsRegistry>,
    log: Arc<EventLog>,
    out: Option<PathBuf>,
}

impl BenchTelemetry {
    /// Builds the sink from the parsed arguments.
    pub fn from_args(args: &BenchArgs) -> Self {
        let out = args.metrics_out.as_ref().map(PathBuf::from);
        let log = match &out {
            Some(p) => EventLog::to_file(p)
                .unwrap_or_else(|e| panic!("cannot open --metrics-out {}: {e}", p.display())),
            None => EventLog::in_memory(),
        };
        BenchTelemetry { registry: Arc::new(MetricsRegistry::new()), log: Arc::new(log), out }
    }

    /// Whether `--metrics-out` was given.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// The process-wide registry (e.g. for `DistributedReport::export`).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A shared handle to the registry, for subsystems that keep one
    /// (e.g. the networked trainer's `rpc_*` instrumentation).
    pub fn registry_arc(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The event log, for binaries emitting events outside training runs.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// A fresh observer feeding this sink, or `None` when disabled.
    /// Jobs running in parallel can each hold their own; the shared
    /// registry and log are thread-safe.
    pub fn observer(&self) -> Option<Box<dyn TrainObserver>> {
        self.enabled().then(|| {
            Box::new(TelemetryObserver::new(self.registry.clone(), self.log.clone()))
                as Box<dyn TrainObserver>
        })
    }

    /// Records one finished run's headline quality as a `result` event.
    pub fn emit_result(&self, dataset: &str, r: &mamdr_core::experiment::RunResult) {
        if !self.enabled() {
            return;
        }
        self.log.emit(
            "result",
            &[
                ("dataset", Value::from(dataset)),
                ("model", Value::from(r.model.as_str())),
                ("framework", Value::from(r.framework.as_str())),
                ("mean_auc", Value::from(r.mean_auc)),
                ("wall_secs", Value::from(r.wall_secs)),
            ],
        );
    }

    /// Appends the registry dump to the JSONL stream, flushes it, and
    /// writes the Prometheus-style snapshot. No-op when disabled.
    pub fn finish(&self) {
        let Some(out) = &self.out else { return };
        self.log.append_raw(&self.registry.dump_jsonl());
        self.log.flush();
        let prom = out.with_extension("prom");
        match std::fs::write(&prom, self.registry.render_prometheus()) {
            Ok(()) => eprintln!("[metrics] wrote {} and {}", out.display(), prom.display()),
            Err(e) => eprintln!("[metrics] failed to write {}: {e}", prom.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_hands_out_no_observers_and_writes_nothing() {
        let t = BenchTelemetry::from_args(&BenchArgs::default());
        assert!(!t.enabled());
        assert!(t.observer().is_none());
        t.finish(); // must not panic or write anywhere
        assert!(t.log().is_empty());
    }

    #[test]
    fn enabled_sink_streams_events_and_dumps_at_finish() {
        let dir = std::env::temp_dir().join("mamdr-bench-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let args = BenchArgs {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let t = BenchTelemetry::from_args(&args);
        assert!(t.enabled() && t.observer().is_some());
        t.registry().counter("demo_total").add(3);
        t.log().emit("demo", &[("k", Value::from(1u64))]);
        t.finish();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.contains("\"event\":\"demo\""), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"metric\""), "{jsonl}");
        assert!(jsonl.contains("demo_total"), "{jsonl}");
        let prom = std::fs::read_to_string(dir.join("m.prom")).unwrap();
        assert!(prom.contains("demo_total 3"), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
