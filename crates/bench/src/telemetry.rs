//! `--metrics-out` plumbing shared by the benchmark binaries: one
//! process-wide [`MetricsRegistry`] + [`EventLog`] pair, observer handout
//! for training jobs, and the exit-time dump.

use crate::args::BenchArgs;
use mamdr_obs::{
    EventLog, IntrospectServer, MetricsRegistry, PublishState, TelemetryObserver, Tracer,
    TrainObserver, Value,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The telemetry sink of one benchmark process.
///
/// When `--metrics-out` is absent the sink is disabled: [`observer`]
/// returns `None` (training runs fully unobserved and pays nothing) and
/// [`finish`] is a no-op. When present, events stream to the JSONL file as
/// they happen and [`finish`] appends a registry dump plus writes a
/// sibling Prometheus-style `.prom` snapshot.
///
/// [`observer`]: BenchTelemetry::observer
/// [`finish`]: BenchTelemetry::finish
pub struct BenchTelemetry {
    registry: Arc<MetricsRegistry>,
    log: Arc<EventLog>,
    out: Option<PathBuf>,
    tracer: Option<Arc<Tracer>>,
    trace_out: Option<PathBuf>,
    /// Held for the process lifetime; stops serving when the telemetry
    /// sink (and with it the process's run) ends.
    introspect: Option<IntrospectServer>,
    /// Shared publish-gate health state (`--serve-live`): the gate records
    /// verdicts here and the introspection endpoint reflects them in
    /// `/healthz` and `/publish`.
    publish_state: Option<Arc<PublishState>>,
}

impl BenchTelemetry {
    /// Builds the sink from the parsed arguments.
    pub fn from_args(args: &BenchArgs) -> Self {
        let out = args.metrics_out.as_ref().map(PathBuf::from);
        let log = match &out {
            Some(p) => EventLog::to_file(p)
                .unwrap_or_else(|e| panic!("cannot open --metrics-out {}: {e}", p.display())),
            None => EventLog::in_memory(),
        };
        let registry = Arc::new(MetricsRegistry::new());
        // A tracer exists only when some consumer asked for spans; every
        // traced code path checks for it, so without one tracing costs
        // nothing.
        let tracer =
            (args.trace_out.is_some() || args.phase_summary || args.introspect_addr.is_some())
                .then(|| Arc::new(Tracer::new()));
        let publish_state = args.serve_live.then(|| Arc::new(PublishState::new(0)));
        let introspect = args.introspect_addr.as_deref().map(|addr| {
            let server = IntrospectServer::start_with_publish(
                addr,
                Arc::clone(&registry),
                tracer.clone(),
                publish_state.clone(),
            )
            .unwrap_or_else(|e| panic!("cannot bind --introspect-addr {addr}: {e}"));
            eprintln!(
                "[introspect] serving /healthz /metrics /spans{} on http://{}",
                if publish_state.is_some() { " /publish" } else { "" },
                server.addr()
            );
            server
        });
        BenchTelemetry {
            registry,
            log: Arc::new(log),
            out,
            tracer,
            trace_out: args.trace_out.as_ref().map(PathBuf::from),
            introspect,
            publish_state,
        }
    }

    /// Whether `--metrics-out` was given.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// The process-wide registry (e.g. for `DistributedReport::export`).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A shared handle to the registry, for subsystems that keep one
    /// (e.g. the networked trainer's `rpc_*` instrumentation).
    pub fn registry_arc(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The event log, for binaries emitting events outside training runs.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// A fresh observer feeding this sink, or `None` when disabled.
    /// Jobs running in parallel can each hold their own; the shared
    /// registry and log are thread-safe.
    pub fn observer(&self) -> Option<Box<dyn TrainObserver>> {
        self.enabled().then(|| {
            Box::new(TelemetryObserver::new(self.registry.clone(), self.log.clone()))
                as Box<dyn TrainObserver>
        })
    }

    /// Records one finished run's headline quality as a `result` event.
    pub fn emit_result(&self, dataset: &str, r: &mamdr_core::experiment::RunResult) {
        if !self.enabled() {
            return;
        }
        self.log.emit(
            "result",
            &[
                ("dataset", Value::from(dataset)),
                ("model", Value::from(r.model.as_str())),
                ("framework", Value::from(r.framework.as_str())),
                ("mean_auc", Value::from(r.mean_auc)),
                ("wall_secs", Value::from(r.wall_secs)),
            ],
        );
    }

    /// The process-wide span tracer, when `--trace-out`, `--phase-summary`
    /// or `--introspect-addr` asked for one.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.clone()
    }

    /// The live introspection endpoint, when `--introspect-addr` bound one.
    pub fn introspect_addr(&self) -> Option<std::net::SocketAddr> {
        self.introspect.as_ref().map(|s| s.addr())
    }

    /// The shared publish-gate health state, present under `--serve-live`
    /// (hand it to the gate; `/healthz` and `/publish` read it live).
    pub fn publish_state(&self) -> Option<Arc<PublishState>> {
        self.publish_state.clone()
    }

    /// Appends the registry dump to the JSONL stream, flushes it, writes
    /// the Prometheus-style snapshot, and exports the Chrome trace when
    /// `--trace-out` was given. No-op with neither sink configured.
    pub fn finish(&self) {
        if let (Some(tracer), Some(path)) = (&self.tracer, &self.trace_out) {
            match std::fs::write(path, tracer.to_chrome_trace()) {
                Ok(()) => eprintln!(
                    "[trace] wrote {} ({} spans{}); load it at chrome://tracing",
                    path.display(),
                    tracer.span_count(),
                    match tracer.dropped() {
                        0 => String::new(),
                        n => format!(", {n} evicted from the ring"),
                    }
                ),
                Err(e) => eprintln!("[trace] failed to write {}: {e}", path.display()),
            }
        }
        let Some(out) = &self.out else { return };
        self.log.append_raw(&self.registry.dump_jsonl());
        self.log.flush();
        let prom = out.with_extension("prom");
        match std::fs::write(&prom, self.registry.render_prometheus()) {
            Ok(()) => eprintln!("[metrics] wrote {} and {}", out.display(), prom.display()),
            Err(e) => eprintln!("[metrics] failed to write {}: {e}", prom.display()),
        }
    }
}

/// Renders a tracer's per-phase wall-clock aggregates as an aligned table,
/// sorted by total time. `wall_secs` scales the share column; nested
/// phases overlap their parents, so shares are attribution per phase, not
/// a partition of the wall.
pub fn render_phase_table(tracer: &Tracer, wall_secs: f64) -> String {
    let mut rows = tracer.phase_summary();
    rows.sort_by(|a, b| b.1.total_secs.total_cmp(&a.1.total_secs));
    let mut out = String::new();
    out.push_str(&format!("  {:<16} {:>9} {:>11} {:>8}\n", "phase", "count", "total_s", "share"));
    for (name, p) in rows {
        out.push_str(&format!(
            "  {:<16} {:>9} {:>11.4} {:>7.1}%\n",
            name,
            p.count,
            p.total_secs,
            100.0 * p.total_secs / wall_secs.max(1e-9)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_hands_out_no_observers_and_writes_nothing() {
        let t = BenchTelemetry::from_args(&BenchArgs::default());
        assert!(!t.enabled());
        assert!(t.observer().is_none());
        assert!(t.tracer().is_none());
        assert!(t.introspect_addr().is_none());
        t.finish(); // must not panic or write anywhere
        assert!(t.log().is_empty());
    }

    #[test]
    fn trace_out_builds_a_tracer_and_exports_chrome_json_at_finish() {
        let dir = std::env::temp_dir().join("mamdr-bench-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let args = BenchArgs {
            trace_out: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let t = BenchTelemetry::from_args(&args);
        let tracer = t.tracer().expect("--trace-out implies a tracer");
        tracer.span("demo.work").finish();
        t.finish();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("demo.work"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_table_lists_phases_with_counts() {
        let tracer = Tracer::new();
        tracer.record_phase("wire.encode", std::time::Duration::from_millis(5));
        tracer.record_phase("wire.encode", std::time::Duration::from_millis(5));
        tracer.record_phase("round.pull", std::time::Duration::from_millis(90));
        let table = render_phase_table(&tracer, 0.1);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("phase"), "{table}");
        // Sorted by total time: pull (90ms) above encode (10ms).
        assert!(lines[1].contains("round.pull") && lines[1].contains("90.0%"), "{table}");
        assert!(lines[2].contains("wire.encode") && lines[2].contains('2'), "{table}");
    }

    #[test]
    fn enabled_sink_streams_events_and_dumps_at_finish() {
        let dir = std::env::temp_dir().join("mamdr-bench-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let args = BenchArgs {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let t = BenchTelemetry::from_args(&args);
        assert!(t.enabled() && t.observer().is_some());
        t.registry().counter("demo_total").add(3);
        t.log().emit("demo", &[("k", Value::from(1u64))]);
        t.finish();

        let jsonl = std::fs::read_to_string(&path).unwrap();
        assert!(jsonl.contains("\"event\":\"demo\""), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"metric\""), "{jsonl}");
        assert!(jsonl.contains("demo_total"), "{jsonl}");
        let prom = std::fs::read_to_string(dir.join("m.prom")).unwrap();
        assert!(prom.contains("demo_total 3"), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
