//! Shared experiment plumbing for the table binaries.

use crate::args::BenchArgs;
use mamdr_core::experiment::{run_many, JobError, RunResult};
use mamdr_core::{FrameworkKind, TrainConfig};
use mamdr_data::{presets, MdrDataset};
use mamdr_models::{ModelConfig, ModelKind};

/// Default dataset scale for the table binaries: the presets are already
/// scaled from the paper's sizes (Amazon 1/200, Taobao 1/10); this factor
/// trades another ~2.5× so a full table regenerates in minutes. Override
/// with `--scale`.
pub const DEFAULT_TABLE_SCALE: f64 = 0.4;

/// The five benchmark datasets of paper Table I, in table order.
pub fn benchmark_datasets(args: &BenchArgs) -> Vec<MdrDataset> {
    let s = effective_scale(args);
    vec![
        presets::amazon6(args.seed, s),
        presets::amazon13(args.seed, s),
        presets::taobao(10, args.seed, s),
        presets::taobao(20, args.seed, s),
        presets::taobao(30, args.seed, s),
    ]
}

/// `--scale` interpreted relative to [`DEFAULT_TABLE_SCALE`]: passing 1.0
/// (the default) selects the documented table scale. `--quick` shrinks it
/// further by [`QUICK_SCALE_FACTOR`](crate::args::QUICK_SCALE_FACTOR).
pub fn effective_scale(args: &BenchArgs) -> f64 {
    let quick = if args.quick { crate::args::QUICK_SCALE_FACTOR } else { 1.0 };
    DEFAULT_TABLE_SCALE * args.scale * quick
}

/// The training configuration the tables start from; `--epochs` overrides
/// the default. Hyper-parameters follow the tuning sweep recorded in
/// EXPERIMENTS.md (β = 0.5 per the paper's Fig. 9; γ and the DR lookahead
/// sized so specific parameters can actually fit a domain transform).
/// `--threads` rides along as the kernel worker count — wall-clock only,
/// never results.
pub fn table_config(args: &BenchArgs, default_epochs: usize) -> TrainConfig {
    TrainConfig::bench()
        .with_epochs(args.epochs_or(default_epochs))
        .with_seed(args.seed)
        .with_outer_lr(0.5)
        .with_dr_lr(0.5)
        .with_dr_lookahead_batches(8)
        .with_finetune_epochs(6)
        .with_threads(args.threads)
}

/// Runs one model under several frameworks on one dataset, in parallel.
pub fn run_frameworks(
    ds: &MdrDataset,
    model: ModelKind,
    frameworks: &[FrameworkKind],
    model_cfg: &ModelConfig,
    cfg: TrainConfig,
    threads: usize,
) -> Vec<RunResult> {
    let jobs: Vec<(ModelKind, FrameworkKind)> = frameworks.iter().map(|&f| (model, f)).collect();
    expect_jobs(run_many(ds, &jobs, model_cfg, cfg, threads))
}

/// Unwraps a [`run_many`] result set for table rendering. A table with
/// holes is not worth printing, so every failed job is reported on stderr
/// and the process exits non-zero if any slot failed.
pub fn expect_jobs(results: Vec<Result<RunResult, JobError>>) -> Vec<RunResult> {
    let mut out = Vec::with_capacity(results.len());
    let mut failed = false;
    for r in results {
        match r {
            Ok(r) => out.push(r),
            Err(e) => {
                eprintln!("[bench] {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_cover_the_five_benchmarks() {
        let args = BenchArgs { scale: 0.02, ..Default::default() };
        let ds = benchmark_datasets(&args);
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["amazon-6", "amazon-13", "taobao-10", "taobao-20", "taobao-30"]);
    }

    #[test]
    fn config_applies_overrides() {
        let args = BenchArgs { epochs: 3, seed: 7, threads: 2, ..Default::default() };
        let cfg = table_config(&args, 10);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.outer_lr, 0.5);
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    fn quick_shrinks_scale_and_epochs() {
        let args = BenchArgs { quick: true, ..Default::default() };
        assert!(effective_scale(&args) < DEFAULT_TABLE_SCALE);
        assert_eq!(table_config(&args, 20).epochs, crate::args::QUICK_EPOCH_CAP);
    }
}
