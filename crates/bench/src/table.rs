//! Plain-text table rendering for the benchmark binaries.

use std::fmt::Write as _;

/// Builds fixed-width tables in the layout the paper's tables use.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    header: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        let widths = header.iter().map(|h| h.len()).collect();
        TableBuilder { header, widths, rows: Vec::new() }
    }

    /// Appends a row (cell count must match the header).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
        self
    }

    /// Convenience: a label plus float cells at 4 decimals.
    pub fn metric_row(&mut self, label: &str, values: &[f64]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.row(cells)
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    let _ = write!(out, "{c:<w$}");
                } else {
                    let _ = write!(out, "  {c:>w$}");
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header, &self.widths);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r, &self.widths);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableBuilder::new(&["Method", "AUC", "RANK"]);
        t.metric_row("MLP", &[0.75, 9.0]);
        t.metric_row("MLP+MAMDR (DN+DR)", &[0.7957, 2.5]);
        let s = t.render();
        assert!(s.contains("Method"));
        assert!(s.contains("0.7957"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows equal width
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableBuilder::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
