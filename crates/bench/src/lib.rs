//! # mamdr-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! MAMDR paper's evaluation (§V). Each binary prints one artifact:
//!
//! | binary      | paper artifact |
//! |-------------|----------------|
//! | `table5`    | Table V — main comparison on the 5 benchmark datasets |
//! | `table6`    | Table VI — DN/DR ablation |
//! | `table7`    | Table VII — per-domain ablation on Amazon-6 |
//! | `table8`    | Table VIII — industry dataset, method comparison |
//! | `table9`    | Table IX — top-10 industry domains |
//! | `table10`   | Table X — frameworks × models on Taobao-10 |
//! | `fig8`      | Fig. 8 — AUC vs DR sample count k |
//! | `fig9`      | Fig. 9 — AUC vs inner/outer learning rates |
//! | `conflict`  | Fig. 3 motivation — gradient-conflict measurements |
//! | `pscache`   | §IV-E — embedding-cache traffic ablation |
//! | `dist_bench`| §IV-E over real TCP — networked-trainer loopback drill (`--workers`, `--fault-plan`) |
//!
//! Criterion micro-benches (`cargo bench`) cover tensor/autodiff kernel
//! throughput, O(n)-vs-O(n²) framework scaling, and PS cache overhead.
//!
//! All binaries accept `--scale <f64>` (dataset size multiplier),
//! `--epochs <usize>` and `--quick` (smoke mode: smaller scale, capped
//! epochs) so a fast smoke run and a full reproduction use the same code
//! path. `--threads <n>` sets both the independent-run worker count and
//! the deterministic kernel pool size — results are bit-identical at any
//! value. The table binaries and `pscache` also accept
//! `--metrics-out <path>`: training runs with telemetry observers attached
//! and the process dumps a JSONL event/metric stream to `<path>` plus a
//! Prometheus-style text snapshot to `<path>.prom` at exit.

pub mod args;
pub mod runner;
pub mod table;
pub mod telemetry;

pub use args::{BenchArgs, QUICK_SCALE_FACTOR};
pub use table::TableBuilder;
pub use telemetry::{render_phase_table, BenchTelemetry};
