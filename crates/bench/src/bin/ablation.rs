//! Design-choice ablations (DESIGN.md §6): measures the implementation
//! decisions this reproduction made beyond the paper's pseudo-code, each
//! against its alternative, on Taobao-10.
//!
//! 1. DN inner-optimizer state: persistent across epochs vs rebuilt.
//! 2. DR lookahead optimizer: Algorithm 2's plain SGD vs a fresh adaptive
//!    optimizer.
//! 3. Outer learning rate β: 0.5 vs the paper-nominal 0.1 at equal epochs.
//! 4. Validation-based epoch selection: off vs on.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin ablation
//! ```

use mamdr_bench::runner::{effective_scale, table_config};
use mamdr_bench::{BenchArgs, TableBuilder};
use mamdr_core::experiment::run;
use mamdr_core::{FrameworkKind, TrainConfig};
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

fn main() {
    let args = BenchArgs::from_env();
    let base = table_config(&args, 18);
    let ds = presets::taobao(10, args.seed, effective_scale(&args));
    let mc = ModelConfig::default();

    let variants: Vec<(&str, FrameworkKind, TrainConfig)> = vec![
        ("MAMDR (as designed)", FrameworkKind::Mamdr, base),
        (
            "DN inner opt rebuilt/epoch",
            FrameworkKind::Mamdr,
            base.with_dn_fresh_inner_per_epoch(true),
        ),
        ("DR lookahead w/ Adam", FrameworkKind::Mamdr, base.with_dr_use_inner_optimizer(true)),
        ("outer lr beta=0.1", FrameworkKind::Mamdr, base.with_outer_lr(0.1)),
        ("val-based epoch selection", FrameworkKind::Mamdr, base.with_val_select(true)),
        ("DN only (reference)", FrameworkKind::Dn, base),
        ("Alternate (reference)", FrameworkKind::Alternate, base),
    ];

    eprintln!(
        "[ablation] {} variants on {} (scale {:.2}, {} epochs)...",
        variants.len(),
        ds.name,
        effective_scale(&args),
        base.epochs
    );
    let results: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(_, fk, cfg)| {
                let ds = &ds;
                let mc = &mc;
                let (fk, cfg) = (*fk, *cfg);
                scope.spawn(move || run(ds, ModelKind::Mlp, mc, fk, cfg).mean_auc)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut table = TableBuilder::new(&["variant", "avg AUC", "delta vs designed"]);
    let reference = results[0];
    for ((label, _, _), &auc) in variants.iter().zip(&results) {
        table.row(vec![label.to_string(), format!("{auc:.4}"), format!("{:+.4}", auc - reference)]);
    }
    println!("\n=== Design-choice ablations (DESIGN.md §6, MLP+MAMDR on Taobao-10) ===\n");
    println!("{}", table.render());
}
