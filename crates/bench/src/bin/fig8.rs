//! Regenerates **paper Figure 8**: average AUC of MLP+MAMDR as a function
//! of the Domain Regularization sample count k on Taobao-30.
//!
//! The paper's shape: AUC rises with k, peaks near k = 5, then falls —
//! too many helper domains pull the specific parameters away from the
//! shared ones.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin fig8
//! ```

use mamdr_bench::runner::{effective_scale, table_config};
use mamdr_bench::{BenchArgs, TableBuilder};
use mamdr_core::experiment::run_averaged;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

const KS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let args = BenchArgs::from_env();
    let base_cfg = table_config(&args, 12);
    let ds = presets::taobao(30, args.seed, effective_scale(&args));
    eprintln!("[fig8] sweeping k over {:?} on {} ...", KS, ds.name);

    let aucs: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = KS
            .iter()
            .map(|&k| {
                let ds = &ds;
                scope.spawn(move || {
                    let cfg = base_cfg.with_dr_samples(k);
                    // Two seeds: single-seed variance at this scale is the
                    // same order as the k-effect the figure is after.
                    run_averaged(
                        ds,
                        ModelKind::Mlp,
                        &ModelConfig::default(),
                        FrameworkKind::Mamdr,
                        cfg,
                        &[cfg.seed, cfg.seed + 1],
                    )
                    .mean_auc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut table = TableBuilder::new(&["k", "avg AUC", "bar"]);
    let max = aucs.iter().cloned().fold(f64::MIN, f64::max);
    let min = aucs.iter().cloned().fold(f64::MAX, f64::min);
    for (&k, &a) in KS.iter().zip(&aucs) {
        let frac = if max > min { (a - min) / (max - min) } else { 1.0 };
        let bar = "#".repeat(1 + (frac * 40.0) as usize);
        table.row(vec![k.to_string(), format!("{a:.4}"), bar]);
    }
    println!("\n=== Paper Fig. 8: results under different DR sample number k (Taobao-30) ===");
    println!(
        "(scale {:.2}, {} epochs, seed {})\n",
        effective_scale(&args),
        base_cfg.epochs,
        args.seed
    );
    println!("{}", table.render());
    let best_k =
        KS[aucs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0];
    println!(
        "best k = {} (paper: performance peaks around k = 5 and drops beyond —\n\
         too many helper domains make the specific parameters deviate)",
        best_k
    );
}
