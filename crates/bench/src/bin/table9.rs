//! Regenerates **paper Table IX**: per-domain AUC on the ten *largest*
//! domains of the industry dataset, for the same method rows as Table VIII
//! — the paper's evidence that MAMDR also wins on data-rich domains, not
//! just sparse ones.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table9
//! ```

use mamdr_bench::runner::{expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::run_many_observed;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

const METHODS: &[(&str, ModelKind, FrameworkKind)] = &[
    ("RAW", ModelKind::Raw, FrameworkKind::Alternate),
    ("MMOE", ModelKind::Mmoe, FrameworkKind::Alternate),
    ("CGC", ModelKind::Cgc, FrameworkKind::Alternate),
    ("PLE", ModelKind::Ple, FrameworkKind::Alternate),
    ("RAW+Separate", ModelKind::Raw, FrameworkKind::Separate),
    ("RAW+DN", ModelKind::Raw, FrameworkKind::Dn),
    ("RAW+MAMDR", ModelKind::Raw, FrameworkKind::Mamdr),
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 15);
    let n_domains = ((64.0 * args.scale).round() as usize).clamp(10, 256);
    let ds = presets::industry(n_domains, 2_000, args.seed);
    eprintln!("[table9] top-10 largest of {} industry domains...", ds.n_domains());

    // The ten largest domains by total interactions.
    let mut order: Vec<usize> = (0..ds.n_domains()).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(ds.domains[d].len()));
    let top10: Vec<usize> = order.into_iter().take(10).collect();

    let jobs: Vec<(ModelKind, FrameworkKind)> = METHODS.iter().map(|&(_, m, f)| (m, f)).collect();
    let results = expect_jobs(run_many_observed(
        &ds,
        &jobs,
        &ModelConfig::default(),
        cfg,
        args.threads,
        &|_| telemetry.observer(),
    ));

    let mut header = vec!["Method".to_string()];
    header.extend((1..=10).map(|i| format!("Top {i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TableBuilder::new(&header_refs);
    for (i, (label, _, _)) in METHODS.iter().enumerate() {
        let aucs: Vec<f64> = top10.iter().map(|&d| results[i].domain_auc[d]).collect();
        table.metric_row(label, &aucs);
    }
    println!("\n=== Paper Table IX: top-10 largest domains of the industry dataset ===");
    println!("({} domains total, {} epochs, seed {})\n", ds.n_domains(), cfg.epochs, args.seed);
    println!("{}", table.render());
    println!("expected shape (paper): RAW+MAMDR best on most of the top-10 domains.");
    telemetry.finish();
}
