//! The **§IV-E embedding-cache ablation**: synchronization traffic and
//! final quality of the distributed PS-Worker simulation with and without
//! the static/dynamic cache, across worker counts.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin pscache
//! ```

use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_data::presets;
use mamdr_obs::Value;
use mamdr_ps::{DistributedConfig, DistributedMamdr, SyncMode};

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let n_domains = ((48.0 * args.scale).round() as usize).clamp(8, 256);
    let ds = presets::industry(n_domains, 2_000, args.seed);
    eprintln!(
        "[pscache] industry simulation: {} domains, {} train interactions",
        ds.n_domains(),
        ds.domains.iter().map(|d| d.train.len()).sum::<usize>()
    );

    let mut table = TableBuilder::new(&[
        "workers",
        "mode",
        "pulls",
        "pushes",
        "MB moved",
        "hit rate",
        "max stale",
        "test AUC",
    ]);
    let mut reductions = Vec::new();
    for workers in [1usize, 4, 8] {
        let mut bytes = [0u64; 2];
        for (mi, mode) in [SyncMode::Cached, SyncMode::NoCache].into_iter().enumerate() {
            let cfg = DistributedConfig {
                n_workers: workers,
                epochs: args.epochs_or(3),
                mode,
                seed: args.seed,
                kernel_threads: args.threads,
                ..Default::default()
            };
            let report = DistributedMamdr::new(&ds, cfg).train(&ds);
            if telemetry.enabled() {
                let mode_name = match mode {
                    SyncMode::Cached => "cached",
                    SyncMode::NoCache => "no-cache",
                };
                for (round, &loss) in report.round_losses.iter().enumerate() {
                    telemetry.log().emit(
                        "ps_round",
                        &[
                            ("workers", Value::from(workers)),
                            ("mode", Value::from(mode_name)),
                            ("round", Value::from(round)),
                            ("train_loss", Value::from(loss)),
                        ],
                    );
                }
                // The registry aggregates across configurations: counters
                // sum traffic, gauges keep the last configuration's values.
                report.export(telemetry.registry());
            }
            bytes[mi] = report.total_bytes;
            table.row(vec![
                workers.to_string(),
                match mode {
                    SyncMode::Cached => "cached".into(),
                    SyncMode::NoCache => "no-cache".into(),
                },
                report.pulls.to_string(),
                report.pushes.to_string(),
                format!("{:.2}", report.total_bytes as f64 / 1e6),
                format!("{:.2}", report.cache.hit_ratio()),
                report.max_staleness.to_string(),
                format!("{:.4}", report.mean_auc),
            ]);
        }
        reductions.push(bytes[1] as f64 / bytes[0].max(1) as f64);
    }
    println!("\n=== Paper §IV-E: embedding PS-Worker cache ablation ===");
    println!(
        "({} domains, {} outer rounds, seed {})\n",
        ds.n_domains(),
        args.epochs_or(3),
        args.seed
    );
    println!("{}", table.render());
    println!(
        "traffic reduction (no-cache / cached): {:?}\n\
         expected shape: an order-of-magnitude fewer bytes and RPCs with the\n\
         cache, at equal or better AUC (bounded staleness).",
        reductions.iter().map(|r| format!("{r:.1}x")).collect::<Vec<_>>()
    );
    telemetry.finish();
}
