//! Regenerates **paper Table VIII**: the industry-dataset comparison —
//! RAW (the production model), MMOE, CGC, PLE (alternately trained),
//! RAW+Separate, RAW+DN, and RAW+MAMDR under average AUC over all domains.
//!
//! The industry dataset is the long-tailed many-domain simulation described
//! in DESIGN.md (substitution 2).
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table8
//! cargo run --release -p mamdr-bench --bin table8 -- --scale 0.5   # fewer domains
//! ```

use mamdr_bench::runner::{expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::run_many_observed;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

/// The method rows of Table VIII.
pub const METHODS: &[(&str, ModelKind, FrameworkKind)] = &[
    ("RAW", ModelKind::Raw, FrameworkKind::Alternate),
    ("MMOE", ModelKind::Mmoe, FrameworkKind::Alternate),
    ("CGC", ModelKind::Cgc, FrameworkKind::Alternate),
    ("PLE", ModelKind::Ple, FrameworkKind::Alternate),
    ("RAW+Separate", ModelKind::Raw, FrameworkKind::Separate),
    ("RAW+DN", ModelKind::Raw, FrameworkKind::Dn),
    ("RAW+MAMDR", ModelKind::Raw, FrameworkKind::Mamdr),
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 15);
    // 64 long-tailed domains by default; --scale shrinks the domain count.
    let n_domains = ((64.0 * args.scale).round() as usize).clamp(8, 256);
    let ds = presets::industry(n_domains, 2_000, args.seed);
    eprintln!(
        "[table8] {} methods on the industry simulation ({} domains, {} interactions)...",
        METHODS.len(),
        ds.n_domains(),
        ds.domains.iter().map(|d| d.len()).sum::<usize>()
    );

    let jobs: Vec<(ModelKind, FrameworkKind)> = METHODS.iter().map(|&(_, m, f)| (m, f)).collect();
    let results = expect_jobs(run_many_observed(
        &ds,
        &jobs,
        &ModelConfig::default(),
        cfg,
        args.threads,
        &|_| telemetry.observer(),
    ));

    let mut table = TableBuilder::new(&["Method", "avg AUC"]);
    for (i, (label, _, _)) in METHODS.iter().enumerate() {
        table.metric_row(label, &[results[i].mean_auc]);
    }
    println!("\n=== Paper Table VIII: results on the industry dataset (avg AUC) ===");
    println!("({} domains, {} epochs, seed {})\n", ds.n_domains(), cfg.epochs, args.seed);
    println!("{}", table.render());
    println!(
        "expected shape (paper): RAW+MAMDR best; RAW+DN above RAW;\n\
         RAW+Separate below RAW (sparse tail domains overfit without sharing)."
    );
    telemetry.finish();
}
