//! Regenerates **paper Figure 9**: average AUC of MLP+DN over the grid of
//! inner-loop learning rate α and outer-loop learning rate β on Taobao-30.
//!
//! The paper's shape: best at α = 1e-3 with β ∈ [0.1, 0.5]; α too large
//! (1e-1, 1e-2) barely trains (the Taylor expansion behind DN needs small
//! α); β = 1 degrades DN to Alternate training and loses AUC.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin fig9
//! ```

use mamdr_bench::runner::{effective_scale, table_config};
use mamdr_bench::{BenchArgs, TableBuilder};
use mamdr_core::experiment::run;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};
use mamdr_nn::OptimizerKind;

const ALPHAS: &[f32] = &[1e-1, 1e-2, 1e-3, 1e-4];
const BETAS: &[f32] = &[1.0, 0.5, 0.1, 0.01];

fn main() {
    let args = BenchArgs::from_env();
    let base_cfg = table_config(&args, 12);
    let ds = presets::taobao(30, args.seed, effective_scale(&args));
    eprintln!(
        "[fig9] sweeping alpha {:?} x beta {:?} on {} ({} runs)...",
        ALPHAS,
        BETAS,
        ds.name,
        ALPHAS.len() * BETAS.len()
    );

    let jobs: Vec<(f32, f32)> =
        ALPHAS.iter().flat_map(|&a| BETAS.iter().map(move |&b| (a, b))).collect();
    let aucs: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(alpha, beta)| {
                let ds = &ds;
                scope.spawn(move || {
                    let cfg =
                        base_cfg.with_inner(OptimizerKind::Adam { lr: alpha }).with_outer_lr(beta);
                    run(ds, ModelKind::Mlp, &ModelConfig::default(), FrameworkKind::Dn, cfg)
                        .mean_auc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut header = vec!["alpha \\ beta".to_string()];
    header.extend(BETAS.iter().map(|b| format!("{b}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TableBuilder::new(&header_refs);
    for (ai, &alpha) in ALPHAS.iter().enumerate() {
        let row: Vec<f64> = (0..BETAS.len()).map(|bi| aucs[ai * BETAS.len() + bi]).collect();
        table.metric_row(&format!("{alpha:.0e}"), &row);
    }
    println!("\n=== Paper Fig. 9: DN results under different learning rates (Taobao-30) ===");
    println!(
        "(scale {:.2}, {} epochs, seed {})\n",
        effective_scale(&args),
        base_cfg.epochs,
        args.seed
    );
    println!("{}", table.render());

    // The β=1 degradation check the paper highlights.
    let best_alpha_row = ALPHAS
        .iter()
        .enumerate()
        .max_by(|a, b| {
            let ra: f64 = (0..BETAS.len()).map(|bi| aucs[a.0 * BETAS.len() + bi]).sum();
            let rb: f64 = (0..BETAS.len()).map(|bi| aucs[b.0 * BETAS.len() + bi]).sum();
            ra.partial_cmp(&rb).unwrap()
        })
        .unwrap()
        .0;
    let beta1 = aucs[best_alpha_row * BETAS.len()];
    let beta_mid: f64 =
        aucs[best_alpha_row * BETAS.len() + 1].max(aucs[best_alpha_row * BETAS.len() + 2]);
    println!(
        "\nat the best alpha ({:.0e}): beta=1 gives {:.4} vs best beta in [0.1,0.5] {:.4}\n\
         (paper: beta=1 degrades DN to Alternate training and loses AUC)",
        ALPHAS[best_alpha_row], beta1, beta_mid
    );
}
