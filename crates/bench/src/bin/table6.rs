//! Regenerates **paper Table VI**: the DN/DR ablation of MAMDR on the five
//! benchmark datasets (MLP base model).
//!
//! Rows: full MAMDR (DN+DR), `w/o DN` (DR only), `w/o DR` (DN only),
//! `w/o DN+DR` (plain Alternate). RANK is computed within these four
//! variants per domain.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table6
//! ```

use mamdr_bench::runner::{benchmark_datasets, expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::run_many_observed;
use mamdr_core::metrics::average_rank;
use mamdr_core::FrameworkKind;
use mamdr_models::{ModelConfig, ModelKind};

const VARIANTS: &[(&str, FrameworkKind)] = &[
    ("MLP+MAMDR (DN+DR)", FrameworkKind::Mamdr),
    ("w/o DN", FrameworkKind::Dr),
    ("w/o DR", FrameworkKind::Dn),
    ("w/o DN+DR", FrameworkKind::Alternate),
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 20);
    let model_cfg = ModelConfig::default();
    let datasets = benchmark_datasets(&args);

    let mut table = TableBuilder::new(&[
        "Variant",
        "Am-6 AUC",
        "Am-6 RANK",
        "Am-13 AUC",
        "Am-13 RANK",
        "Tb-10 AUC",
        "Tb-10 RANK",
        "Tb-20 AUC",
        "Tb-20 RANK",
        "Tb-30 AUC",
        "Tb-30 RANK",
    ]);
    let mut cells: Vec<Vec<String>> =
        VARIANTS.iter().map(|(label, _)| vec![label.to_string()]).collect();

    for ds in &datasets {
        eprintln!("[table6] ablation on {} ...", ds.name);
        let jobs: Vec<(ModelKind, FrameworkKind)> =
            VARIANTS.iter().map(|&(_, f)| (ModelKind::Mlp, f)).collect();
        let results =
            expect_jobs(run_many_observed(ds, &jobs, &model_cfg, cfg, args.threads, &|_| {
                telemetry.observer()
            }));
        let auc_matrix: Vec<Vec<f64>> = results.iter().map(|r| r.domain_auc.clone()).collect();
        let ranks = average_rank(&auc_matrix);
        for (i, r) in results.iter().enumerate() {
            cells[i].push(format!("{:.4}", r.mean_auc));
            cells[i].push(format!("{:.1}", ranks[i]));
        }
    }
    for row in cells {
        table.row(row);
    }
    println!("\n=== Paper Table VI: ablation study of DN and DR (MLP base model) ===");
    println!(
        "(datasets at scale {:.2}, {} epochs, seed {}; RANK within the 4 variants)\n",
        mamdr_bench::runner::effective_scale(&args),
        cfg.epochs,
        args.seed
    );
    println!("{}", table.render());
    println!(
        "expected shape (paper): both components help; removing DR hurts most on the\n\
         sparse-domain dataset (Amazon-13); removing DN hurts more as the domain\n\
         count grows (Taobao-30); removing both is worst everywhere."
    );
    telemetry.finish();
}
