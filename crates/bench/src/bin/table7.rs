//! Regenerates **paper Table VII**: per-domain AUC of the DN/DR ablation
//! variants on Amazon-6 — the table behind the claim that DR's biggest
//! effect is on the sparsest domain ("Prime Pantry").
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table7
//! ```

use mamdr_bench::runner::{effective_scale, expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::run_many_observed;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

const VARIANTS: &[(&str, FrameworkKind)] = &[
    ("MLP+MAMDR (DN+DR)", FrameworkKind::Mamdr),
    ("w/o DN", FrameworkKind::Dr),
    ("w/o DR", FrameworkKind::Dn),
    ("w/o DN+DR", FrameworkKind::Alternate),
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 20);
    let ds = presets::amazon6(args.seed, effective_scale(&args));
    eprintln!("[table7] ablation per domain on {} ...", ds.name);

    let jobs: Vec<(ModelKind, FrameworkKind)> =
        VARIANTS.iter().map(|&(_, f)| (ModelKind::Mlp, f)).collect();
    let results = expect_jobs(run_many_observed(
        &ds,
        &jobs,
        &ModelConfig::default(),
        cfg,
        args.threads,
        &|_| telemetry.observer(),
    ));

    let mut header: Vec<&str> = vec!["Variant"];
    let domain_names: Vec<String> = ds.domains.iter().map(|d| d.name.clone()).collect();
    for name in &domain_names {
        header.push(name);
    }
    let mut table = TableBuilder::new(&header);
    for (i, (label, _)) in VARIANTS.iter().enumerate() {
        table.metric_row(label, &results[i].domain_auc);
    }
    println!("\n=== Paper Table VII: results of each domain on Amazon-6 ===");
    println!("(scale {:.2}, {} epochs, seed {})\n", effective_scale(&args), cfg.epochs, args.seed);
    println!("{}", table.render());

    // Quantify the DR effect on the sparsest domain, as the paper does.
    let sparse =
        ds.domains.iter().enumerate().min_by_key(|(_, d)| d.len()).map(|(i, _)| i).unwrap();
    let full = results[0].domain_auc[sparse];
    let without_dr = results[2].domain_auc[sparse];
    println!(
        "\nsparsest domain '{}': MAMDR {:.4} vs w/o DR {:.4} ({:+.2}% — the paper reports\n\
         the largest drop on this domain when DR is removed)",
        ds.domains[sparse].name,
        full,
        without_dr,
        100.0 * (full - without_dr) / without_dr.max(1e-9)
    );
    telemetry.finish();
}
