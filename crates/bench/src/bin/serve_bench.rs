//! `serve_bench` — closed-loop load generator for the `mamdr-serve`
//! subsystem.
//!
//! Trains a tiny MLP under MAMDR, freezes it into serving snapshot v1 (and
//! a retrained v2), then drives the micro-batching server with `--threads`
//! closed-loop clients. Halfway through the run the model is hot-swapped to
//! v2 **while clients are in flight**; the binary fails (exit 1) if any
//! request is dropped, rejected, or answered by an unknown snapshot
//! version.
//!
//! Reports QPS and latency quantiles (p50/p99) on stdout; with
//! `--metrics-out <path>` the full `serve_*` metric set (counters,
//! queue-depth gauge, latency/batch-size histograms) is dumped as JSONL
//! plus a Prometheus-style `.prom` snapshot.
//!
//! Knobs: `--scale` multiplies the request count (default 1 000 requests),
//! `--threads` sets both the client count and the kernel pool, `--quick`
//! caps training epochs, `--seed` and `--epochs` as everywhere else.
//!
//! Tracing: `--trace-out <path>` records every request's lifecycle span
//! chain (queue → coalesce → score → respond, plus hot-swap spans) as
//! Chrome `trace_event` JSON; `--phase-summary` prints the wall-clock
//! attribution table; `--introspect-addr <addr>` serves live `/healthz`
//! `/metrics` `/spans` over HTTP while the bench runs.

use mamdr_bench::{render_phase_table, BenchArgs, BenchTelemetry};
use mamdr_core::{FrameworkKind, TrainConfig, TrainEnv, TrainedModel};
use mamdr_data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};
use mamdr_obs::Value;
use mamdr_serve::{
    ModelSpec, ScoreRequest, ScoringEngine, ServeConfig, ServeResult, Server, ServingSnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dataset(args: &BenchArgs) -> MdrDataset {
    let mut gen = GeneratorConfig::base("serve-bench", 200, 120, args.seed);
    gen.conflict = 0.3;
    gen.domains = vec![
        DomainSpec::new("large", 1_200, 0.3),
        DomainSpec::new("mid", 600, 0.35),
        DomainSpec::new("small", 200, 0.4),
    ];
    gen.generate()
}

fn train_snapshot(
    ds: &MdrDataset,
    args: &BenchArgs,
    version: u64,
    seed: u64,
) -> (ModelSpec, ServingSnapshot) {
    let fc = FeatureConfig::from_dataset(ds);
    let mc = ModelConfig::tiny();
    let built = build_model(ModelKind::Mlp, &fc, &mc, ds.n_domains(), seed);
    let cfg = TrainConfig::quick().with_seed(seed).with_epochs(args.epochs_or(3));
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    let trained: TrainedModel = FrameworkKind::Mamdr.build().train(&mut env);
    let spec =
        ModelSpec { kind: ModelKind::Mlp, features: fc, config: mc, n_domains: ds.n_domains() };
    let snap = ServingSnapshot::from_trained(version, spec.clone(), trained)
        .expect("freshly trained model always freezes");
    (spec, snap)
}

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let total_requests = ((1_000.0 * args.scale).round() as usize).max(100);
    let clients = args.threads.max(1);

    eprintln!("[serve_bench] training snapshot versions 1 and 2 ...");
    let ds = dataset(&args);
    let fc = FeatureConfig::from_dataset(&ds);
    let (_, v1) = train_snapshot(&ds, &args, 1, args.seed);
    let (_, v2) = train_snapshot(&ds, &args, 2, args.seed ^ 0xBEEF);

    let engine =
        Arc::new(ScoringEngine::new(v1, telemetry.registry()).with_tracer(telemetry.tracer()));
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            queue_cap: total_requests.max(1024),
            n_workers: clients.min(8),
            ..ServeConfig::default()
        },
    );

    eprintln!(
        "[serve_bench] {total_requests} requests, {clients} closed-loop clients, hot swap at 50% ..."
    );
    let per_client = total_requests.div_ceil(clients);
    let scored_v1 = AtomicU64::new(0);
    let scored_v2 = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = &server;
            let fc = &fc;
            let (scored_v1, scored_v2, dropped, done) = (&scored_v1, &scored_v2, &dropped, &done);
            let n_domains = ds.n_domains();
            s.spawn(move || {
                for i in 0..per_client {
                    let k = (c * per_client + i) as u32;
                    let req = ScoreRequest::new(
                        (k as usize) % n_domains,
                        (k * 7) % fc.n_users as u32,
                        (k * 3) % fc.n_items as u32,
                        k % fc.n_user_groups as u32,
                        k % fc.n_item_cats as u32,
                    );
                    match server.submit(req, Some(Duration::from_secs(30))) {
                        Ok(pending) => match pending.wait() {
                            ServeResult::Scored(r) if r.snapshot_version == 1 => {
                                scored_v1.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeResult::Scored(r) if r.snapshot_version == 2 => {
                                scored_v2.fetch_add(1, Ordering::Relaxed);
                            }
                            other => {
                                eprintln!("[serve_bench] bad outcome: {other:?}");
                                dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(e) => {
                            eprintln!("[serve_bench] submission rejected: {e}");
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Hot swap once half the load has been served, mid-flight.
        let half = (clients * per_client) as u64 / 2;
        while done.load(Ordering::Relaxed) < half {
            std::thread::sleep(Duration::from_micros(200));
        }
        let retired = engine.publish(v2);
        eprintln!(
            "[serve_bench] swapped v{} -> v{} after {} responses",
            retired.version(),
            engine.current_version(),
            done.load(Ordering::Relaxed)
        );
    });
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();

    let served = clients * per_client;
    let (n1, n2, bad) = (
        scored_v1.load(Ordering::Relaxed),
        scored_v2.load(Ordering::Relaxed),
        dropped.load(Ordering::Relaxed),
    );
    let qps = served as f64 / elapsed;
    let lat = engine.metrics().latency_seconds.snapshot();
    let batch = engine.metrics().batch_size.snapshot();
    let queue_wait = engine.metrics().queue_wait_us.snapshot();
    let compute = engine.metrics().batch_compute_us.snapshot();

    println!("serve_bench: {served} requests, {clients} clients, threads={}", args.threads);
    println!("  qps          {qps:.1}");
    println!("  p50_latency  {:.1} us", lat.p50 * 1e6);
    println!("  p99_latency  {:.1} us", lat.p99 * 1e6);
    println!("  queue_wait   p50 {:.1} us  p99 {:.1} us", queue_wait.p50, queue_wait.p99);
    println!("  batch_compute p50 {:.1} us  p99 {:.1} us", compute.p50, compute.p99);
    println!(
        "  mean_batch   {:.2}",
        if batch.count > 0 { batch.sum / batch.count as f64 } else { 0.0 }
    );
    println!("  versions     v1={n1} v2={n2}");
    println!("  dropped      {bad}");

    if let Some(tracer) = telemetry.tracer() {
        if args.phase_summary {
            println!("  phase attribution (wall {elapsed:.3} s):");
            print!("{}", render_phase_table(&tracer, elapsed));
        }
        // Mean shares of the request lifecycle, from the span chain: wait
        // (queue + coalesce) vs score vs respond per request.
        let request = tracer.phase("serve.request");
        let score = tracer.phase("serve.score");
        if request.count > 0 {
            println!(
                "  attribution  score {:.1}% of request lifecycle ({} request spans)",
                100.0 * score.total_secs / request.total_secs.max(1e-9),
                request.count
            );
        }
    }

    telemetry.log().emit(
        "serve_bench",
        &[
            ("requests", Value::from(served as u64)),
            ("clients", Value::from(clients as u64)),
            ("qps", Value::from(qps)),
            ("p50_seconds", Value::from(lat.p50)),
            ("p99_seconds", Value::from(lat.p99)),
            ("queue_wait_p50_us", Value::from(queue_wait.p50)),
            ("queue_wait_p99_us", Value::from(queue_wait.p99)),
            ("batch_compute_p50_us", Value::from(compute.p50)),
            ("batch_compute_p99_us", Value::from(compute.p99)),
            ("scored_v1", Value::from(n1)),
            ("scored_v2", Value::from(n2)),
            ("dropped", Value::from(bad)),
        ],
    );
    telemetry.finish();

    if bad > 0 || n1 + n2 != served as u64 {
        eprintln!("[serve_bench] FAILED: {bad} dropped/incorrect of {served}");
        std::process::exit(1);
    }
    if n2 == 0 {
        // The swap landed after the last response — the zero-loss guarantee
        // was still exercised, but flag it for the log.
        eprintln!("[serve_bench] note: swap landed after all responses (no v2 scores)");
    }
}
