//! `serve_bench` — load generator for the `mamdr-serve` subsystem, closed-
//! and open-loop.
//!
//! Trains a tiny MLP under MAMDR, freezes it into serving snapshot v1 (and
//! a retrained v2), then drives a pool of `--replicas` serving stacks
//! behind the deterministic user router. The model is hot-swapped to v2
//! mid-run **while requests are in flight**; the binary fails (exit 1) if
//! any request is dropped, rejected unexpectedly, or answered by an
//! unknown snapshot version.
//!
//! Two load modes:
//!
//! * **Closed loop** (default): `--threads` clients, each submitting the
//!   next request when the previous one answers. Measures best-case
//!   latency; cannot see overload (the offered rate adapts to capacity).
//! * **Open loop** (`--open-loop`): a seeded trace (Zipf users/domains,
//!   diurnal Poisson arrivals, interactive/bulk SLO split from
//!   `mamdr-load`) submits on the trace clock at `--rate` rps for
//!   `--duration` seconds regardless of completions. Overload fills the
//!   bounded queues and sheds — typed per class — and the binary asserts
//!   the accounting identities `submitted = admitted + shed + rejected`
//!   and `admitted = scored + deadline + invalid` per class, failing on
//!   any silent drop.
//!
//! Both modes print a `probe_digest`: an FNV-1a digest over the scores of
//! a fixed probe set served through the pool before the run. The digest is
//! invariant across `--replicas` and `--policy` — bit-identical scoring is
//! a hard guarantee, and CI diffs it across configurations.
//!
//! Knobs: `--scale` multiplies the closed-loop request count (default
//! 1 000), `--threads` sets the client count and kernel pool, `--replicas`
//! the serving-stack count, `--policy fixed|adaptive` the micro-batch
//! close policy, `--rate`/`--duration` the open-loop trace, `--quick` caps
//! training epochs and shrinks the default trace. `--metrics-out`,
//! `--trace-out`, `--phase-summary`, `--introspect-addr` as everywhere
//! else.

use mamdr_bench::{render_phase_table, BenchArgs, BenchTelemetry};
use mamdr_core::{FrameworkKind, TrainConfig, TrainEnv, TrainedModel};
use mamdr_data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_load::{run_open_loop, LoadOptions, TraceConfig, TraceGen};
use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};
use mamdr_obs::Value;
use mamdr_serve::{
    BatchPolicy, ModelSpec, ReplicatedServer, ScoreRequest, ServeConfig, ServeResult,
    ServingSnapshot, SloClass,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn dataset(args: &BenchArgs) -> MdrDataset {
    let mut gen = GeneratorConfig::base("serve-bench", 200, 120, args.seed);
    gen.conflict = 0.3;
    gen.domains = vec![
        DomainSpec::new("large", 1_200, 0.3),
        DomainSpec::new("mid", 600, 0.35),
        DomainSpec::new("small", 200, 0.4),
    ];
    gen.generate()
}

fn train_snapshot(
    ds: &MdrDataset,
    args: &BenchArgs,
    version: u64,
    seed: u64,
) -> (ModelSpec, ServingSnapshot) {
    let fc = FeatureConfig::from_dataset(ds);
    let mc = ModelConfig::tiny();
    let built = build_model(ModelKind::Mlp, &fc, &mc, ds.n_domains(), seed);
    let cfg = TrainConfig::quick().with_seed(seed).with_epochs(args.epochs_or(3));
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    let trained: TrainedModel = FrameworkKind::Mamdr.build().train(&mut env);
    let spec =
        ModelSpec { kind: ModelKind::Mlp, features: fc, config: mc, n_domains: ds.n_domains() };
    let snap = ServingSnapshot::from_trained(version, spec.clone(), trained)
        .expect("freshly trained model always freezes");
    (spec, snap)
}

/// Scores a fixed probe set through the pool and digests the score bits
/// with FNV-1a. Identical across replica counts and batch policies — the
/// bit-identity evidence CI diffs.
fn probe_digest(pool: &ReplicatedServer, fc: &FeatureConfig, n_domains: usize) -> u64 {
    let pending: Vec<_> = (0..64u32)
        .map(|k| {
            let req = ScoreRequest::new(
                (k as usize) % n_domains,
                (k * 13) % fc.n_users as u32,
                (k * 5) % fc.n_items as u32,
                k % fc.n_user_groups as u32,
                k % fc.n_item_cats as u32,
            );
            pool.submit(req, None).expect("probe admitted on an idle pool")
        })
        .collect();
    let mut digest = mamdr_util::Checksum::new();
    for p in pending {
        match p.wait() {
            ServeResult::Scored(r) => digest.update(&r.score.to_bits().to_le_bytes()),
            other => panic!("probe request not scored: {other:?}"),
        }
    }
    digest.digest()
}

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let policy = match args.policy.as_deref() {
        Some(p) => BatchPolicy::parse(p).expect("validated at parse time"),
        None => BatchPolicy::default(),
    };

    eprintln!("[serve_bench] training snapshot versions 1 and 2 ...");
    let ds = dataset(&args);
    let fc = FeatureConfig::from_dataset(&ds);
    let (_, v1) = train_snapshot(&ds, &args, 1, args.seed);
    let (_, v2) = train_snapshot(&ds, &args, 2, args.seed ^ 0xBEEF);
    let n_domains = ds.n_domains();

    let config = ServeConfig {
        queue_cap: 4096,
        // Bulk admission is bounded well below the global cap: a bulk
        // flood sheds (typed) long before it can crowd out interactive.
        class_caps: [0, 1024],
        n_workers: args.threads.clamp(1, 8),
        policy,
        ..ServeConfig::default()
    };
    let pool = ReplicatedServer::start(
        v1,
        args.replicas,
        config,
        telemetry.registry(),
        telemetry.tracer(),
    );
    let digest = probe_digest(&pool, &fc, n_domains);

    if args.open_loop {
        run_open(&args, &telemetry, &pool, &fc, n_domains, v2, digest);
    } else {
        run_closed(&args, &telemetry, &pool, &fc, n_domains, v2, digest);
    }
}

/// The trace-driven open-loop mode.
fn run_open(
    args: &BenchArgs,
    telemetry: &BenchTelemetry,
    pool: &ReplicatedServer,
    fc: &FeatureConfig,
    n_domains: usize,
    v2: ServingSnapshot,
    digest: u64,
) {
    let rate = if args.rate > 0.0 {
        args.rate
    } else if args.quick {
        4_000.0
    } else {
        60_000.0
    };
    let duration = if args.duration > 0.0 {
        args.duration
    } else if args.quick {
        0.5
    } else {
        18.0
    };
    let mut trace_cfg = TraceConfig::new(args.seed, rate, duration);
    trace_cfg.n_domains = n_domains;
    trace_cfg.n_users = fc.n_users as u32;
    trace_cfg.n_items = fc.n_items as u32;
    trace_cfg.n_user_groups = fc.n_user_groups as u32;
    trace_cfg.n_item_cats = fc.n_item_cats as u32;
    let trace = TraceGen::new(trace_cfg);

    let opts = LoadOptions {
        // Interactive traffic carries a deadline: under overload the
        // dispatcher sheds what it can no longer serve in time (counted in
        // serve_deadline_expired_total). Bulk waits as long as it takes.
        deadline: [Some(Duration::from_millis(20)), None],
        time_scale: 1.0,
    };
    let swap_at_us = (duration * 1e6 / 2.0) as u64;
    eprintln!(
        "[serve_bench] open loop: {rate:.0} rps for {duration}s (~{:.0} requests), \
         {} replica(s), hot swap at trace t={:.1}s ...",
        rate * duration,
        pool.n_replicas(),
        duration / 2.0
    );

    let mut v2_slot = Some(v2);
    let retired_version = AtomicU64::new(u64::MAX);
    let report = run_open_loop(pool, trace, &opts, Some(swap_at_us), |at_us| {
        if let Some(next) = v2_slot.take() {
            let retired = pool.publish(next);
            retired_version.store(retired, Ordering::Relaxed);
            eprintln!(
                "[serve_bench] swapped v{retired} -> v{} at trace t={:.3}s",
                pool.current_version(),
                at_us as f64 / 1e6
            );
        }
    });
    let retired = retired_version.load(Ordering::Relaxed);

    let engine = pool.engine(0);
    let batch = engine.metrics().batch_size.snapshot();
    let queue_wait = engine.metrics().queue_wait_us.snapshot();
    let compute = engine.metrics().batch_compute_us.snapshot();

    println!(
        "serve_bench[open]: rate={rate:.0} duration={duration}s replicas={} policy={} threads={}",
        pool.n_replicas(),
        args.policy.as_deref().unwrap_or("adaptive"),
        args.threads
    );
    println!("  submitted    {}", report.submitted());
    println!("  scored       {}", report.scored());
    println!("  scored_qps   {:.1}", report.scored_qps());
    println!("  wall         {:.3} s", report.wall_secs);
    println!("  max_sched_lag {} us", report.max_sched_lag_us);
    for class in SloClass::ALL {
        let c = report.class(class);
        println!(
            "  class {:<11} submitted={} admitted={} scored={} shed={} rejected={} deadline={} invalid={} shed_rate={:.4} p50={:.1}us p99={:.1}us",
            class.label(),
            c.submitted,
            c.admitted,
            c.scored,
            c.shed_overload,
            c.rejected_full,
            c.deadline_expired,
            c.invalid,
            c.shed_rate(),
            c.latency_us.p50,
            c.latency_us.p99,
        );
    }
    println!("  batch_size   p50 {:.1}  p99 {:.1}  mean {:.2}", batch.p50, batch.p99, batch.mean());
    println!("  queue_wait   p50 {:.1} us  p99 {:.1} us", queue_wait.p50, queue_wait.p99);
    println!("  batch_compute p50 {:.1} us  p99 {:.1} us", compute.p50, compute.p99);
    let total_shed: u64 =
        report.classes.iter().map(|c| c.shed_overload + c.rejected_full + c.deadline_expired).sum();
    println!("  overload     total_shed={total_shed} (class sheds + queue-full + deadline)");
    println!("  versions_seen {:?}", report.versions_seen);
    println!("  swap         retired_version={retired}");
    println!("  probe_digest 0x{digest:016x}");
    println!("  accounting   {}", if report.accounting_ok() { "OK" } else { "VIOLATED" });

    let mut fields = vec![
        ("mode", Value::from("open_loop".to_string())),
        ("rate_rps", Value::from(rate)),
        ("duration_secs", Value::from(duration)),
        ("replicas", Value::from(pool.n_replicas() as u64)),
        ("submitted", Value::from(report.submitted())),
        ("scored", Value::from(report.scored())),
        ("scored_qps", Value::from(report.scored_qps())),
        ("wall_secs", Value::from(report.wall_secs)),
        ("batch_p50", Value::from(batch.p50)),
        ("batch_p99", Value::from(batch.p99)),
        ("probe_digest", Value::from(format!("0x{digest:016x}"))),
        ("accounting_ok", Value::from(report.accounting_ok())),
    ];
    for class in SloClass::ALL {
        let c = report.class(class);
        let l = class.label();
        fields.push((leak(format!("{l}_submitted")), Value::from(c.submitted)));
        fields.push((leak(format!("{l}_scored")), Value::from(c.scored)));
        fields.push((leak(format!("{l}_shed")), Value::from(c.shed_overload)));
        fields.push((leak(format!("{l}_rejected")), Value::from(c.rejected_full)));
        fields.push((leak(format!("{l}_deadline")), Value::from(c.deadline_expired)));
        fields.push((leak(format!("{l}_p50_us")), Value::from(c.latency_us.p50)));
        fields.push((leak(format!("{l}_p99_us")), Value::from(c.latency_us.p99)));
    }
    telemetry.log().emit("serve_bench_open", &fields);
    telemetry.finish();

    if !report.accounting_ok() {
        eprintln!("[serve_bench] FAILED: per-class accounting identity violated (silent drop)");
        std::process::exit(1);
    }
    if report.scored() == 0 {
        eprintln!("[serve_bench] FAILED: nothing scored");
        std::process::exit(1);
    }
}

/// One emitted field name lives for the rest of the process — a handful
/// per run, so leaking beats threading a string arena through the log.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// The PR 3 closed-loop mode, generalized over the replica pool.
fn run_closed(
    args: &BenchArgs,
    telemetry: &BenchTelemetry,
    pool: &ReplicatedServer,
    fc: &FeatureConfig,
    n_domains: usize,
    v2: ServingSnapshot,
    digest: u64,
) {
    let total_requests = ((1_000.0 * args.scale).round() as usize).max(100);
    let clients = args.threads.max(1);
    eprintln!(
        "[serve_bench] {total_requests} requests, {clients} closed-loop clients, {} replica(s), hot swap at 50% ...",
        pool.n_replicas()
    );
    let per_client = total_requests.div_ceil(clients);
    let scored_v1 = AtomicU64::new(0);
    let scored_v2 = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (scored_v1, scored_v2, dropped, done) = (&scored_v1, &scored_v2, &dropped, &done);
            let pool = &pool;
            s.spawn(move || {
                for i in 0..per_client {
                    let k = (c * per_client + i) as u32;
                    let req = ScoreRequest::new(
                        (k as usize) % n_domains,
                        (k * 7) % fc.n_users as u32,
                        (k * 3) % fc.n_items as u32,
                        k % fc.n_user_groups as u32,
                        k % fc.n_item_cats as u32,
                    );
                    match pool.submit(req, Some(Duration::from_secs(30))) {
                        Ok(pending) => match pending.wait() {
                            ServeResult::Scored(r) if r.snapshot_version == 1 => {
                                scored_v1.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeResult::Scored(r) if r.snapshot_version == 2 => {
                                scored_v2.fetch_add(1, Ordering::Relaxed);
                            }
                            other => {
                                eprintln!("[serve_bench] bad outcome: {other:?}");
                                dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(e) => {
                            eprintln!("[serve_bench] submission rejected: {e}");
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Hot swap once half the load has been served, mid-flight.
        let half = (clients * per_client) as u64 / 2;
        while done.load(Ordering::Relaxed) < half {
            std::thread::sleep(Duration::from_micros(200));
        }
        let retired = pool.publish(v2);
        eprintln!(
            "[serve_bench] swapped v{retired} -> v{} after {} responses",
            pool.current_version(),
            done.load(Ordering::Relaxed)
        );
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let served = clients * per_client;
    let (n1, n2, bad) = (
        scored_v1.load(Ordering::Relaxed),
        scored_v2.load(Ordering::Relaxed),
        dropped.load(Ordering::Relaxed),
    );
    let qps = served as f64 / elapsed;
    let engine = pool.engine(0);
    let lat = engine.metrics().latency_seconds.snapshot();
    let batch = engine.metrics().batch_size.snapshot();
    let queue_wait = engine.metrics().queue_wait_us.snapshot();
    let compute = engine.metrics().batch_compute_us.snapshot();

    println!(
        "serve_bench: {served} requests, {clients} clients, replicas={}, threads={}",
        pool.n_replicas(),
        args.threads
    );
    println!("  qps          {qps:.1}");
    println!("  p50_latency  {:.1} us", lat.p50 * 1e6);
    println!("  p99_latency  {:.1} us", lat.p99 * 1e6);
    println!("  queue_wait   p50 {:.1} us  p99 {:.1} us", queue_wait.p50, queue_wait.p99);
    println!("  batch_compute p50 {:.1} us  p99 {:.1} us", compute.p50, compute.p99);
    println!("  batch_size   p50 {:.1}  p99 {:.1}  mean {:.2}", batch.p50, batch.p99, batch.mean());
    println!("  versions     v1={n1} v2={n2}");
    println!("  probe_digest 0x{digest:016x}");
    println!("  dropped      {bad}");

    if let Some(tracer) = telemetry.tracer() {
        if args.phase_summary {
            println!("  phase attribution (wall {elapsed:.3} s):");
            print!("{}", render_phase_table(&tracer, elapsed));
        }
        // Mean shares of the request lifecycle, from the span chain: wait
        // (queue + coalesce) vs score vs respond per request.
        let request = tracer.phase("serve.request");
        let score = tracer.phase("serve.score");
        if request.count > 0 {
            println!(
                "  attribution  score {:.1}% of request lifecycle ({} request spans)",
                100.0 * score.total_secs / request.total_secs.max(1e-9),
                request.count
            );
        }
    }

    telemetry.log().emit(
        "serve_bench",
        &[
            ("requests", Value::from(served as u64)),
            ("clients", Value::from(clients as u64)),
            ("replicas", Value::from(pool.n_replicas() as u64)),
            ("qps", Value::from(qps)),
            ("p50_seconds", Value::from(lat.p50)),
            ("p99_seconds", Value::from(lat.p99)),
            ("queue_wait_p50_us", Value::from(queue_wait.p50)),
            ("queue_wait_p99_us", Value::from(queue_wait.p99)),
            ("batch_compute_p50_us", Value::from(compute.p50)),
            ("batch_compute_p99_us", Value::from(compute.p99)),
            ("batch_p50", Value::from(batch.p50)),
            ("batch_p99", Value::from(batch.p99)),
            ("scored_v1", Value::from(n1)),
            ("scored_v2", Value::from(n2)),
            ("probe_digest", Value::from(format!("0x{digest:016x}"))),
            ("dropped", Value::from(bad)),
        ],
    );
    telemetry.finish();

    if bad > 0 || n1 + n2 != served as u64 {
        eprintln!("[serve_bench] FAILED: {bad} dropped/incorrect of {served}");
        std::process::exit(1);
    }
    if n2 == 0 {
        // The swap landed after the last response — the zero-loss guarantee
        // was still exercised, but flag it for the log.
        eprintln!("[serve_bench] note: swap landed after all responses (no v2 scores)");
    }
}
