//! Regenerates **paper Table V**: the main comparison of multi-domain
//! recommendation methods — five single-domain baselines and four
//! multi-task/multi-domain baselines (all alternately trained) against
//! MLP+MAMDR — under average AUC and average RANK on the five benchmark
//! datasets.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table5            # documented scale
//! cargo run --release -p mamdr-bench --bin table5 -- --scale 0.25 --epochs 6   # smoke
//! ```

use mamdr_bench::runner::{benchmark_datasets, expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::{run_many_observed, RunResult};
use mamdr_core::metrics::average_rank;
use mamdr_core::FrameworkKind;
use mamdr_models::{ModelConfig, ModelKind};

/// The method rows of Table V: `(label, model, framework)`.
const METHODS: &[(&str, ModelKind, FrameworkKind)] = &[
    ("MLP", ModelKind::Mlp, FrameworkKind::Alternate),
    ("WDL", ModelKind::Wdl, FrameworkKind::Alternate),
    ("NeurFM", ModelKind::NeurFm, FrameworkKind::Alternate),
    ("AutoInt", ModelKind::AutoInt, FrameworkKind::Alternate),
    ("DeepFM", ModelKind::DeepFm, FrameworkKind::Alternate),
    ("Shared-bottom", ModelKind::SharedBottom, FrameworkKind::Alternate),
    ("MMOE", ModelKind::Mmoe, FrameworkKind::Alternate),
    ("PLE", ModelKind::Ple, FrameworkKind::Alternate),
    ("Star", ModelKind::Star, FrameworkKind::Alternate),
    ("MLP+MAMDR", ModelKind::Mlp, FrameworkKind::Mamdr),
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 20);
    let model_cfg = ModelConfig::default();
    let datasets = benchmark_datasets(&args);

    let mut table = TableBuilder::new(&[
        "Method",
        "Am-6 AUC",
        "Am-6 RANK",
        "Am-13 AUC",
        "Am-13 RANK",
        "Tb-10 AUC",
        "Tb-10 RANK",
        "Tb-20 AUC",
        "Tb-20 RANK",
        "Tb-30 AUC",
        "Tb-30 RANK",
    ]);
    let mut cells: Vec<Vec<String>> =
        METHODS.iter().map(|(label, _, _)| vec![label.to_string()]).collect();

    for ds in &datasets {
        eprintln!("[table5] training {} methods on {} ...", METHODS.len(), ds.name);
        let jobs: Vec<(ModelKind, FrameworkKind)> =
            METHODS.iter().map(|&(_, m, f)| (m, f)).collect();
        let results: Vec<RunResult> =
            expect_jobs(run_many_observed(ds, &jobs, &model_cfg, cfg, args.threads, &|_| {
                telemetry.observer()
            }));
        let auc_matrix: Vec<Vec<f64>> = results.iter().map(|r| r.domain_auc.clone()).collect();
        let ranks = average_rank(&auc_matrix);
        for (i, r) in results.iter().enumerate() {
            telemetry.emit_result(&ds.name, r);
            cells[i].push(format!("{:.4}", r.mean_auc));
            cells[i].push(format!("{:.1}", ranks[i]));
        }
    }
    for row in cells {
        table.row(row);
    }
    println!("\n=== Paper Table V: comparison with multi-domain recommendation methods ===");
    println!(
        "(datasets at scale {:.2}, {} epochs, seed {})\n",
        mamdr_bench::runner::effective_scale(&args),
        cfg.epochs,
        args.seed
    );
    println!("{}", table.render());
    println!(
        "expected shape (paper): MLP+MAMDR best AUC and best RANK on every dataset;\n\
         multi-domain models (Shared-bottom/MMOE/PLE) above plain single-domain models."
    );
    telemetry.finish();
}
