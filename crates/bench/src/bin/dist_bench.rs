//! `dist_bench` — loopback drill for the `mamdr-rpc` networked PS–worker
//! runtime.
//!
//! Runs the same MAMDR outer-loop twice: once with the in-process
//! synchronous trainer (the ground truth) and once with `--workers`
//! clients training against a real loopback TCP parameter server,
//! optionally under a deterministic `--fault-plan`. The binary fails
//! (exit 1) if the networked run diverges from the in-process run in any
//! round loss, in the final AUC bits, or in the number of outer updates
//! the store applied — i.e. if the wire, retry, or dedup layer lost or
//! double-applied a single update.
//!
//! Reports wall time, slowdown, and the `rpc_*` counter set on stdout;
//! with `--metrics-out <path>` the full registry (rpc frames/retries/
//! faults, ps traffic, kv gauges) is dumped as JSONL plus a
//! Prometheus-style `.prom` snapshot.
//!
//! Knobs: `--workers` sets the client count (default 2), `--fault-plan`
//! injects seeded drops/delays/duplicates/disconnects plus scheduled
//! worker kills/hangs/poisons and shard kills (default: perfect
//! network), `--scale` multiplies the dataset size, and `--threads`,
//! `--epochs`, `--seed`, `--quick` behave as everywhere else.
//!
//! Sharding: `--shards N` splits the key space across N loopback servers
//! by consistent hash — the run must stay bit-identical to the
//! single-store in-process ground truth at any N. `--preset longtail`
//! swaps the 64-domain industry simulation for the 2048-domain Zipf
//! stress preset whose key space gives a shard fleet real routing work;
//! the summary adds a `rounds_per_s` line so shard scaling is one grep
//! away. With a checkpoint directory the final merged parameters are
//! also written to `<dir>/final-state.mamdrps`, byte-comparable across
//! shard counts.
//!
//! Tracing: `--trace-out <path>` records the loopback run's span tree
//! (rounds, per-worker pull/compute, RPC attempts, server-side applies)
//! as Chrome `trace_event` JSON; `--phase-summary` prints a wall-clock
//! attribution table plus the wire-overhead row (frame encode/checksum
//! and decode seconds); `--introspect-addr <addr>` serves live
//! `/healthz` `/metrics` `/spans` over HTTP for the duration of the run.
//! The in-process ground truth always runs untraced, so every traced
//! invocation re-proves tracing neutrality through the bit-identity gate.
//!
//! Crash-resume drill: `--checkpoint-every N --checkpoint-dir <dir>`
//! journals every N rounds; a later invocation with `--resume <dir>`
//! restores the newest journal and runs only the remaining rounds. The
//! resumed run must still match the uninterrupted in-process ground truth
//! in every round loss and the final AUC bits (the push-count gates are
//! skipped, since the RPC counters only cover the resumed segment).
//!
//! Continual-serving drill: `--serve-live --publish-every N` stands up a
//! gated replica pool next to the trainer. Every N rounds the merged
//! store is committed as a serving snapshot under
//! `<checkpoint-dir>/publish/` and offered to the publish gate
//! (`--canary-pct` enables the live canary phase); a closed-loop load
//! thread scores through the pool across every swap. Scheduled publisher
//! faults (`kill_publish=r`, `corrupt_snapshot=r` in the fault plan) must
//! leave the pool answering from the last-good version with **zero**
//! dropped requests; at exit the final served snapshot must be
//! byte-identical to one built offline from the in-process ground-truth
//! store, and is written to `<checkpoint-dir>/serve-final.mamdrsv` for
//! cross-run `cmp`. The `publish_*` gate counters are printed one per
//! line for exact grepping.

use mamdr_bench::{render_phase_table, BenchArgs, BenchTelemetry, QUICK_SCALE_FACTOR};
use mamdr_data::presets;
use mamdr_obs::Value;
use mamdr_ps::{DistributedConfig, DistributedMamdr};
use mamdr_rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, PublishHook, RetryPolicy};
use mamdr_serve::{
    GateConfig, PublishGate, ReplicatedServer, ServeConfig, ServeResult, ServingSnapshot,
    GATE_REASONS,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What the closed-loop load thread observed across the whole run.
struct LoadReport {
    scored: u64,
    dropped: u64,
    versions: Vec<u64>,
}

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let scale = if args.quick { args.scale * QUICK_SCALE_FACTOR } else { args.scale };
    let preset = args.preset.as_deref().unwrap_or("industry");
    let ds = match preset {
        "longtail" => {
            // Domain count stays fixed (the preset's point is key-space
            // pressure); --scale moves the Zipf head instead.
            let head = ((400.0 * scale).round() as usize).max(50);
            presets::longtail(2_048, head, args.seed)
        }
        _ => {
            let n_domains = ((12.0 * scale).round() as usize).clamp(4, 64);
            let per_domain = ((1_200.0 * scale).round() as usize).max(100);
            presets::industry(n_domains, per_domain, args.seed)
        }
    };
    eprintln!(
        "[dist_bench] {preset} simulation: {} domains, {} train interactions",
        ds.n_domains(),
        ds.domains.iter().map(|d| d.train.len()).sum::<usize>()
    );

    let cfg = DistributedConfig {
        n_workers: args.workers_or(2),
        epochs: args.epochs_or(3),
        sync_rounds: true,
        seed: args.seed,
        kernel_threads: args.threads,
        route_shards: args.shards,
        ..Default::default()
    };
    let plan = args
        .fault_plan
        .as_deref()
        .map(|spec| FaultPlan::parse(spec).expect("validated by BenchArgs"));

    eprintln!("[dist_bench] in-process ground truth ({} workers) ...", cfg.n_workers);
    let t0 = Instant::now();
    let local_trainer = DistributedMamdr::new(&ds, cfg);
    // The version-0 snapshot the serving pool starts on: built from the
    // freshly seeded (untrained) store, which is bit-identical to the
    // networked trainer's merged initial state by construction.
    let serve_initial = args
        .serve_live
        .then(|| ServingSnapshot::from_ps(0, local_trainer.server(), ds.n_domains()));
    let local = local_trainer.train(&ds);
    let local_secs = t0.elapsed().as_secs_f64();

    let resuming = args.resume.is_some();
    let checkpoint_dir: Option<PathBuf> =
        args.resume.as_deref().or(args.checkpoint_dir.as_deref()).map(PathBuf::from);
    eprintln!(
        "[dist_bench] loopback TCP run ({} workers, {} shards, faults: {}, journal every {} rounds{}) ...",
        cfg.n_workers,
        args.shards,
        args.fault_plan.as_deref().unwrap_or("none"),
        args.checkpoint_every,
        if resuming { ", resuming" } else { "" },
    );
    // The tracer observes the loopback run only — the in-process ground
    // truth stays untraced, so the bit-identity gate below doubles as a
    // tracing-neutrality check on every traced invocation.
    let mut retry = RetryPolicy { base_backoff_micros: 20, ..Default::default() };
    if args.pipeline_depth > 0 {
        retry.pipeline_depth = args.pipeline_depth;
    }
    // --serve-live: a gated replica pool fed by the trainer's publish
    // hook. Scores are sigmoid outputs in [0, 1], so a divergence/drift
    // bound of 1.0 admits every structurally sound, finite round — the
    // drill is about *fault* containment, not semantic drift.
    let serve = serve_initial.map(|snap0| {
        let registry = telemetry.registry_arc();
        let pool = Arc::new(ReplicatedServer::start(
            snap0,
            args.replicas,
            ServeConfig::default(),
            &registry,
            telemetry.tracer(),
        ));
        let gate_cfg = GateConfig {
            max_divergence: 1.0,
            canary_pct: args.canary_pct,
            max_canary_drift: 1.0,
            ..Default::default()
        };
        let gate = Arc::new(PublishGate::new(
            gate_cfg,
            pool.engine(0).snapshot(),
            &registry,
            telemetry.publish_state(),
            telemetry.tracer(),
        ));
        let publish_dir =
            checkpoint_dir.clone().expect("--serve-live requires --checkpoint-dir").join("publish");
        (pool, gate, publish_dir)
    });
    let publish_hook = serve.as_ref().map(|(pool, gate, publish_dir)| {
        let n_domains = ds.n_domains();
        let gate = Arc::clone(gate);
        let pool = Arc::clone(pool);
        PublishHook {
            every: args.publish_every,
            dir: publish_dir.clone(),
            encode: Arc::new(move |round, ps| {
                let mut buf = Vec::new();
                ServingSnapshot::from_ps(round, ps, n_domains)
                    .write_to(&mut buf)
                    .map_err(|e| e.to_string())?;
                Ok(buf)
            }),
            // A rejection is the gate's verdict, fully recorded in its
            // counters and health state — training never stops for it.
            on_commit: Arc::new(move |round, path| {
                let _ = gate.offer_file(round, path, &pool);
            }),
        }
    });
    let loopback = LoopbackConfig {
        fault: plan,
        retry,
        shards: args.shards,
        checkpoint_dir: checkpoint_dir.clone(),
        checkpoint_every: args.checkpoint_every,
        resume: resuming,
        tracer: telemetry.tracer(),
        publish: publish_hook,
        ..LoopbackConfig::new(cfg)
    };
    let t0 = Instant::now();
    let mut net_trainer = DistributedTrainer::new(&ds, loopback, telemetry.registry_arc())
        .unwrap_or_else(|e| {
            eprintln!("[dist_bench] FAILED to start the loopback trainer: {e}");
            std::process::exit(1);
        });
    let start_epoch = net_trainer.start_epoch();
    if resuming {
        eprintln!("[dist_bench] resumed at round {start_epoch}");
    }
    // The closed-loop load thread: scores the fixed probe set through the
    // pool, over and over, across every publish/rollback the gate performs
    // while training runs. Every submitted request must come back scored —
    // a shed, deadline, or invalid result is a drop, and the drill demands
    // zero.
    let load_stop = Arc::new(AtomicBool::new(false));
    let load_thread = serve.as_ref().map(|(pool, _, _)| {
        let pool = Arc::clone(pool);
        let stop = Arc::clone(&load_stop);
        std::thread::spawn(move || {
            let probes = pool.engine(0).snapshot().probe_requests(0xBEEF, 8);
            let mut scored = 0u64;
            let mut dropped = 0u64;
            let mut versions = std::collections::BTreeSet::new();
            'outer: loop {
                for req in &probes {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    match pool.submit(req.clone(), None) {
                        Ok(pending) => match pending.wait() {
                            ServeResult::Scored(r) => {
                                scored += 1;
                                versions.insert(r.snapshot_version);
                            }
                            _ => dropped += 1,
                        },
                        Err(_) => dropped += 1,
                    }
                }
                // Keep the pool busy but leave the trainer the CPU.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            LoadReport { scored, dropped, versions: versions.into_iter().collect() }
        })
    });
    let remote = net_trainer.train(&ds).unwrap_or_else(|e| {
        eprintln!("[dist_bench] FAILED: distributed run did not complete: {e}");
        std::process::exit(1);
    });
    let remote_secs = t0.elapsed().as_secs_f64();
    load_stop.store(true, Ordering::Relaxed);
    let load_report = load_thread.map(|h| h.join().expect("load thread"));
    // At one shard the driver's store IS the deployment; at N the report
    // already sums every shard's traffic counters.
    let store_pushes =
        if args.shards == 1 { net_trainer.store().traffic().snapshot().1 } else { remote.pushes };
    // The merged final state, byte-comparable across shard counts: the
    // CI shard-smoke job diffs this file between a 1-shard and a killed-
    // and-recovered 4-shard run.
    if let Some(dir) = &checkpoint_dir {
        let path = dir.join("final-state.mamdrps");
        let mut buf = Vec::new();
        let written = mamdr_ps::checkpoint::save(&net_trainer.merged_store(), cfg.dim, &mut buf)
            .map_err(|e| format!("{e}"))
            .and_then(|()| std::fs::write(&path, &buf).map_err(|e| format!("{e}")));
        if let Err(e) = written {
            eprintln!("[dist_bench] FAILED to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("[dist_bench] merged final state -> {}", path.display());
    }
    net_trainer.shutdown();
    // Release the publish hook's pool/gate handles so the pool can be
    // unwrapped and drained below.
    drop(net_trainer);

    let reg = telemetry.registry();
    let frames = reg.counter("rpc_frames_total").get();
    let retries = reg.counter("rpc_retries_total").get();
    let applied = reg.counter("rpc_push_applied_total").get();
    let deduped = reg.counter("rpc_push_deduped_total").get();
    let dropped = reg.counter("rpc_faults_dropped_total").get();
    let duplicated = reg.counter("rpc_faults_duplicated_total").get();
    let disconnects = reg.counter("rpc_faults_disconnects_total").get();

    let shard_kills = reg.counter("rpc_faults_shard_kills_total").get();
    let shard_restarts = reg.counter("rpc_shard_restarts_total").get();
    let rounds_run = cfg.epochs.saturating_sub(start_epoch);

    println!(
        "dist_bench: {} workers, {} rounds, {} shards, {} domains, threads={}",
        cfg.n_workers,
        cfg.epochs,
        args.shards,
        ds.n_domains(),
        args.threads
    );
    println!("  in_process   {local_secs:.3} s");
    println!("  loopback     {remote_secs:.3} s  ({:.2}x)", remote_secs / local_secs.max(1e-9));
    println!("  rounds_per_s {:.3}", rounds_run as f64 / remote_secs.max(1e-9));
    println!("  test_auc     {:.6}", remote.mean_auc);
    println!("  pulls        {}", remote.pulls);
    println!("  pushes       {}", remote.pushes);
    println!("  MB_moved     {:.2}", remote.total_bytes as f64 / 1e6);
    println!("  frames       {frames}");
    println!("  retries      {retries}");
    println!("  applied      {applied}  deduped {deduped}");
    println!("  faults       dropped={dropped} duplicated={duplicated} disconnects={disconnects}");
    println!("  shards       rpc_faults_shard_kills_total={shard_kills} rpc_shard_restarts_total={shard_restarts}");

    // --serve-live verdict: print every publish counter one per line
    // (exact-greppable by CI), enforce zero dropped requests, and prove
    // the final served snapshot is byte-identical to one built offline
    // from the in-process ground-truth store.
    let mut serve_failures: Vec<String> = Vec::new();
    if let Some((pool, gate, _)) = serve {
        let report = load_report.expect("--serve-live starts the load thread");
        let final_version = gate.last_good().version();
        println!(
            "  serve_live   scored={} versions_served={:?} final_version={final_version}",
            report.scored, report.versions
        );
        println!("  serve_live_dropped={}", report.dropped);
        for name in [
            "publish_attempts_total",
            "publish_commits_total",
            "publish_kills_total",
            "publish_corruptions_total",
            "publish_offered_total",
            "publish_accepted_total",
            "publish_rollbacks_total",
            "publish_canary_phases_total",
        ] {
            println!("  {name}={}", reg.counter(name).get());
        }
        for reason in GATE_REASONS {
            let name = format!("publish_rejected_total{{reason=\"{reason}\"}}");
            println!("  {name}={}", reg.counter(&name).get());
        }
        if report.dropped != 0 {
            serve_failures.push(format!(
                "{} live requests dropped across publishes (the drill demands 0)",
                report.dropped
            ));
        }
        if pool.current_version() != final_version {
            serve_failures.push(format!(
                "pool serves v{} but the gate's last-good is v{final_version}",
                pool.current_version()
            ));
        }
        let mut served = Vec::new();
        gate.last_good().write_to(&mut served).expect("encode served snapshot");
        let out = checkpoint_dir.as_ref().expect("validated").join("serve-final.mamdrsv");
        if let Err(e) = std::fs::write(&out, &served) {
            serve_failures.push(format!("cannot write {}: {e}", out.display()));
        } else {
            eprintln!("[dist_bench] final served snapshot -> {}", out.display());
        }
        if final_version == cfg.epochs as u64 {
            // The offline ground truth: the in-process trainer's store is
            // the end-of-training state, so a snapshot built from it must
            // match the served bytes exactly when the final round's
            // publication was accepted.
            let mut offline = Vec::new();
            ServingSnapshot::from_ps(final_version, local_trainer.server(), ds.n_domains())
                .write_to(&mut offline)
                .expect("encode offline snapshot");
            if served != offline {
                serve_failures.push(
                    "final served snapshot is not byte-identical to the offline snapshot built \
                     from the in-process ground-truth store"
                        .into(),
                );
            }
        } else {
            serve_failures.push(format!(
                "final served version v{final_version} is not the final round ({}); the \
                 byte-identity gate needs the last publish round to commit cleanly",
                cfg.epochs
            ));
        }
        match Arc::try_unwrap(pool) {
            Ok(p) => p.shutdown(),
            Err(_) => eprintln!("[dist_bench] warning: pool still shared, skipping drain"),
        }
    }
    if args.phase_summary && args.shards > 1 {
        println!("  per-shard occupancy and wire traffic:");
        for s in 0..args.shards {
            let entries = reg.gauge(&format!("ps_kv_entries{{shard=\"{s}\"}}")).get();
            let bytes = reg.gauge(&format!("ps_kv_bytes{{shard=\"{s}\"}}")).get();
            let shard_frames = reg.counter(&format!("rpc_frames_total{{shard=\"{s}\"}}")).get();
            println!("    shard {s}: entries={entries:.0} bytes={bytes:.0} frames={shard_frames}");
        }
    }

    if let Some(tracer) = telemetry.tracer() {
        // Wire overhead = serialization + checksum on both directions;
        // decode is timed from the first magic byte, so waiting on the
        // peer is excluded.
        let encode = tracer.phase("wire.encode");
        let decode = tracer.phase("wire.decode");
        let wire_secs = encode.total_secs + decode.total_secs;
        if args.phase_summary {
            println!("  phase attribution (loopback wall {remote_secs:.3} s):");
            print!("{}", render_phase_table(&tracer, remote_secs));
        }
        println!(
            "  wire_overhead {:.4} s  (encode {} frames {:.4} s, decode {} frames {:.4} s)",
            wire_secs, encode.count, encode.total_secs, decode.count, decode.total_secs
        );
        if telemetry.enabled() {
            for (name, p) in tracer.phase_summary() {
                telemetry.log().emit(
                    "dist_phase",
                    &[
                        ("phase", Value::from(name.as_str())),
                        ("count", Value::from(p.count)),
                        ("total_secs", Value::from(p.total_secs)),
                    ],
                );
            }
        }
    }

    if telemetry.enabled() {
        for (round, &loss) in remote.round_losses.iter().enumerate() {
            telemetry.log().emit(
                "dist_round",
                &[
                    ("workers", Value::from(cfg.n_workers)),
                    ("round", Value::from(round)),
                    ("train_loss", Value::from(loss)),
                ],
            );
        }
        telemetry.log().emit(
            "dist_bench",
            &[
                ("workers", Value::from(cfg.n_workers as u64)),
                ("rounds", Value::from(cfg.epochs as u64)),
                ("shards", Value::from(args.shards as u64)),
                ("fault_plan", Value::from(args.fault_plan.as_deref().unwrap_or("none"))),
                ("in_process_secs", Value::from(local_secs)),
                ("loopback_secs", Value::from(remote_secs)),
                ("mean_auc", Value::from(remote.mean_auc)),
            ],
        );
        remote.export(telemetry.registry());
    }
    telemetry.finish();

    // The acceptance gate: the network layer must be invisible to the
    // math. Any lost, reordered, or double-applied outer update shifts a
    // round loss or the final parameters.
    let mut failures = serve_failures;
    if remote.round_losses != local.round_losses {
        failures.push(format!(
            "round losses diverged: {:?} vs {:?}",
            remote.round_losses, local.round_losses
        ));
    }
    if remote.mean_auc.to_bits() != local.mean_auc.to_bits() {
        failures.push(format!("AUC diverged: {} vs {}", remote.mean_auc, local.mean_auc));
    }
    // The RPC push counters only cover the resumed segment, so the
    // exactly-once audit against the full-run push count applies to
    // uninterrupted runs only; a resumed run is gated on losses and AUC.
    if !resuming {
        if applied != local.pushes {
            failures
                .push(format!("applied {} of {} expected outer updates", applied, local.pushes));
        }
        if store_pushes != local.pushes {
            failures.push(format!("store saw {store_pushes} pushes, expected {}", local.pushes));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[dist_bench] FAILED: {f}");
        }
        std::process::exit(1);
    }
    if resuming {
        eprintln!(
            "[dist_bench] OK: resumed run bit-identical to uninterrupted in-process run \
             ({applied} updates applied in the resumed segment)"
        );
    } else {
        eprintln!(
            "[dist_bench] OK: loopback run bit-identical to in-process run, \
             {applied} updates applied exactly once"
        );
    }
}
