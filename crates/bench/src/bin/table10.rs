//! Regenerates **paper Table X**: the learning-framework comparison — six
//! model architectures each trained under ten model-agnostic frameworks on
//! Taobao-10. This is the experiment behind the model-agnosticism claim:
//! every cell is the same framework code wrapping a different architecture.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin table10
//! cargo run --release -p mamdr-bench --bin table10 -- --scale 0.5 --epochs 8  # smoke
//! ```

use mamdr_bench::runner::{effective_scale, expect_jobs, table_config};
use mamdr_bench::{BenchArgs, BenchTelemetry, TableBuilder};
use mamdr_core::experiment::run_many_observed;
use mamdr_core::FrameworkKind;
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

const MODELS: &[ModelKind] = &[
    ModelKind::Mlp,
    ModelKind::Wdl,
    ModelKind::NeurFm,
    ModelKind::DeepFm,
    ModelKind::SharedBottom,
    ModelKind::Star,
];

const FRAMEWORKS: &[FrameworkKind] = &[
    FrameworkKind::Alternate,
    FrameworkKind::AlternateFinetune,
    FrameworkKind::WeightedLoss,
    FrameworkKind::PcGrad,
    FrameworkKind::Maml,
    FrameworkKind::Reptile,
    FrameworkKind::Mldg,
    FrameworkKind::Dn,
    FrameworkKind::Dr,
    FrameworkKind::Mamdr,
];

fn main() {
    let args = BenchArgs::from_env();
    let telemetry = BenchTelemetry::from_args(&args);
    let cfg = table_config(&args, 15);
    let ds = presets::taobao(10, args.seed, effective_scale(&args));
    eprintln!(
        "[table10] {} models x {} frameworks on {} ({} runs)...",
        MODELS.len(),
        FRAMEWORKS.len(),
        ds.name,
        MODELS.len() * FRAMEWORKS.len()
    );

    let jobs: Vec<(ModelKind, FrameworkKind)> =
        MODELS.iter().flat_map(|&m| FRAMEWORKS.iter().map(move |&f| (m, f))).collect();
    let results = expect_jobs(run_many_observed(
        &ds,
        &jobs,
        &ModelConfig::default(),
        cfg,
        args.threads,
        &|_| telemetry.observer(),
    ));

    let mut header = vec!["Model"];
    for f in FRAMEWORKS {
        header.push(f.name());
    }
    let mut table = TableBuilder::new(&header);
    for (mi, m) in MODELS.iter().enumerate() {
        let row: Vec<f64> =
            (0..FRAMEWORKS.len()).map(|fi| results[mi * FRAMEWORKS.len() + fi].mean_auc).collect();
        table.metric_row(m.name(), &row);
    }
    println!("\n=== Paper Table X: comparison with other learning frameworks (Taobao-10) ===");
    println!("(scale {:.2}, {} epochs, seed {})\n", effective_scale(&args), cfg.epochs, args.seed);
    println!("{}", table.render());

    // Count per-model wins for MAMDR, the paper's headline for this table.
    let mamdr_col = FRAMEWORKS.len() - 1;
    let wins = (0..MODELS.len())
        .filter(|&mi| {
            let row: Vec<f64> = (0..FRAMEWORKS.len())
                .map(|fi| results[mi * FRAMEWORKS.len() + fi].mean_auc)
                .collect();
            row[mamdr_col] >= row.iter().cloned().fold(f64::MIN, f64::max) - 1e-12
        })
        .count();
    println!(
        "\nMAMDR is the best framework for {}/{} architectures\n\
         (paper: best for all; DR strongest on single-domain models, DN on\n\
         models with their own specific parameters).",
        wins,
        MODELS.len()
    );
    telemetry.finish();
}
