//! The motivation measurement behind **paper Figure 3 / §III-B**: pairwise
//! gradient conflict across domains, at the initialization and after
//! training under Alternate vs Domain Negotiation, for increasing
//! ground-truth conflict strength.
//!
//! ```sh
//! cargo run --release -p mamdr-bench --bin conflict
//! ```

use mamdr_bench::{BenchArgs, TableBuilder};
use mamdr_core::conflict::measure_conflict;
use mamdr_core::env::TrainEnv;
use mamdr_core::{FrameworkKind, TrainConfig};
use mamdr_data::{DomainSpec, GeneratorConfig};
use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};

fn dataset(conflict: f32, seed: u64) -> mamdr_data::MdrDataset {
    let mut cfg = GeneratorConfig::base("conflict-sweep", 400, 200, seed);
    cfg.conflict = conflict;
    cfg.domains = (0..6).map(|i| DomainSpec::new(format!("D{}", i + 1), 2_000, 0.3)).collect();
    cfg.generate()
}

fn main() {
    let args = BenchArgs::from_env();
    let cfg = TrainConfig::bench()
        .with_epochs(args.epochs_or(8))
        .with_outer_lr(0.5)
        .with_seed(args.seed)
        .with_threads(args.threads);
    let model_cfg = ModelConfig::default();

    let mut table = TableBuilder::new(&[
        "ground-truth conflict",
        "init cos",
        "Alt cos",
        "Alt conflict%",
        "Alt AUC",
        "DN cos",
        "DN conflict%",
        "DN AUC",
    ]);
    for knob in [0.0f32, 0.3, 0.6, 0.9] {
        eprintln!("[conflict] knob = {knob} ...");
        let ds = dataset(knob, args.seed);
        let fc = FeatureConfig::from_dataset(&ds);

        let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds.n_domains(), cfg.seed);
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), cfg);
        let init = env.init_flat();
        let r0 = measure_conflict(&mut env, &init);

        let mut row = vec![format!("{knob:.1}"), format!("{:.3}", r0.mean_cosine)];
        for fk in [FrameworkKind::Alternate, FrameworkKind::Dn] {
            let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds.n_domains(), cfg.seed);
            let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params, cfg);
            let tm = fk.build().train(&mut env);
            let r = measure_conflict(&mut env, &tm.shared);
            let auc = mamdr_core::metrics::mean(&env.evaluate(&tm, mamdr_data::Split::Test));
            row.push(format!("{:.3}", r.mean_cosine));
            row.push(format!("{:.0}%", 100.0 * r.conflict_rate));
            row.push(format!("{auc:.4}"));
        }
        table.row(row);
    }
    println!("\n=== Paper Fig. 3 / §III-B: gradient conflict across domains ===");
    println!("(6 domains x 2000 interactions, MLP, {} epochs, seed {})\n", cfg.epochs, args.seed);
    println!("{}", table.render());
    println!(
        "expected shape: gradients agree at the random init (cos ~ 1); conflict\n\
         (negative pairwise inner products) emerges as shared training converges;\n\
         DN ends at points with better AUC than the Alternate compromise as the\n\
         ground-truth conflict grows."
    );
}
