//! Hyper-parameter probe: sweeps Domain Regularization strength for MAMDR
//! on Taobao-30 (where the paper's Fig. 8 lives) so the table defaults can
//! be chosen on evidence. Not a paper artifact — a development tool.

use mamdr_bench::BenchArgs;
use mamdr_bench::TableBuilder;
use mamdr_core::experiment::run;
use mamdr_core::{FrameworkKind, TrainConfig};
use mamdr_data::presets;
use mamdr_models::{ModelConfig, ModelKind};

fn main() {
    let args = BenchArgs::from_env();
    let ds = presets::taobao(30, args.seed, args.scale * 0.4);
    let mc = ModelConfig::default();

    let base = TrainConfig::bench()
        .with_epochs(args.epochs_or(25))
        .with_outer_lr(0.5)
        .with_seed(args.seed)
        .with_threads(args.threads);

    // Baselines once.
    let mut table = TableBuilder::new(&["config", "AUC"]);
    for fk in [FrameworkKind::Alternate, FrameworkKind::Dn] {
        let r = run(&ds, ModelKind::Mlp, &mc, fk, base);
        table.metric_row(fk.name(), &[r.mean_auc]);
        println!("{}", table.render());
    }

    // MAMDR DR-strength grid.
    let grid: Vec<(f32, usize, usize)> =
        vec![(0.8, 16, 5), (0.5, 8, 5), (0.3, 8, 5), (0.2, 4, 5), (0.2, 8, 3)];
    let results: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = grid
            .iter()
            .map(|&(gamma, look, k)| {
                let ds = &ds;
                let mc = &mc;
                s.spawn(move || {
                    let cfg =
                        base.with_dr_lr(gamma).with_dr_lookahead_batches(look).with_dr_samples(k);
                    run(ds, ModelKind::Mlp, mc, FrameworkKind::Mamdr, cfg).mean_auc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (&(gamma, look, k), auc) in grid.iter().zip(&results) {
        table.metric_row(&format!("MAMDR g{gamma} L{look} k{k}"), &[*auc]);
    }
    println!("{}", table.render());
}
