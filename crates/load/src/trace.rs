//! Seeded trace generation: who arrives, when, asking for what.
//!
//! A trace is a deterministic function of its [`TraceConfig`] — the same
//! seed always produces the same arrival sequence, byte for byte, which
//! is what lets CI pin exact per-class request counts and lets two bench
//! runs at different replica counts serve the *same* million requests.
//!
//! Three statistical properties model real multi-domain traffic:
//!
//! * **Zipf users and domains** — a few head users/domains dominate, a
//!   long tail trickles (the `longtail` preset's law, applied to request
//!   arrival instead of training-data volume).
//! * **Poisson arrivals** — requests are memoryless in open loop:
//!   exponential inter-arrival gaps at the instantaneous rate, so bursts
//!   and lulls happen naturally rather than on a metronome.
//! * **Diurnal modulation** — the instantaneous rate follows a sinusoid
//!   around the base rate (peak/trough like day/night traffic),
//!   implemented by Poisson thinning against the peak rate so the
//!   process stays exact, not binned.
//!
//! Generation is streaming: [`TraceGen`] is an iterator, so a ≥1M-request
//! trace never materializes in memory.

use mamdr_serve::SloClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one synthetic traffic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Trace seed: same seed, same arrivals, always.
    pub seed: u64,
    /// Base arrival rate, requests per second (the diurnal mean).
    pub rate_rps: f64,
    /// Virtual duration of the trace, seconds. Expected request count is
    /// `rate_rps * duration_secs`.
    pub duration_secs: f64,
    /// Domain id space (`0..n_domains`), Zipf-ranked by id.
    pub n_domains: usize,
    /// User id space (`0..n_users`), Zipf-ranked by id: user 0 is the
    /// heaviest head user.
    pub n_users: u32,
    /// Item id space, sampled uniformly.
    pub n_items: u32,
    /// User-group feature space, sampled uniformly.
    pub n_user_groups: u32,
    /// Item-category feature space, sampled uniformly.
    pub n_item_cats: u32,
    /// Zipf exponent of the user popularity law (`~1.1` is web-like;
    /// `0` degenerates to uniform).
    pub user_zipf: f64,
    /// Zipf exponent of the domain popularity law.
    pub domain_zipf: f64,
    /// Diurnal swing as a fraction of the base rate, in `[0, 1)`:
    /// instantaneous rate is `rate_rps * (1 + a·sin(2πt/period))`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid, seconds (a compressed "day").
    pub diurnal_period_secs: f64,
    /// Probability an arrival is [`SloClass::Bulk`] instead of
    /// [`SloClass::Interactive`].
    pub bulk_fraction: f64,
}

impl TraceConfig {
    /// A web-like default: Zipf(1.1) users, Zipf(1.0) domains, ±50%
    /// diurnal swing over a 20-second compressed day, 20% bulk traffic.
    pub fn new(seed: u64, rate_rps: f64, duration_secs: f64) -> Self {
        TraceConfig {
            seed,
            rate_rps,
            duration_secs,
            n_domains: 3,
            n_users: 200,
            n_items: 120,
            n_user_groups: 8,
            n_item_cats: 8,
            user_zipf: 1.1,
            domain_zipf: 1.0,
            diurnal_amplitude: 0.5,
            diurnal_period_secs: 20.0,
            bulk_fraction: 0.2,
        }
    }

    /// Validates the shape before any generation starts.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_rps.is_finite() && self.rate_rps > 0.0) {
            return Err(format!("rate_rps must be positive, got {}", self.rate_rps));
        }
        if !(self.duration_secs.is_finite() && self.duration_secs > 0.0) {
            return Err(format!("duration_secs must be positive, got {}", self.duration_secs));
        }
        if self.n_domains == 0 || self.n_users == 0 || self.n_items == 0 {
            return Err("domain/user/item spaces must be non-empty".into());
        }
        if self.n_user_groups == 0 || self.n_item_cats == 0 {
            return Err("feature spaces must be non-empty".into());
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0, 1), got {}",
                self.diurnal_amplitude
            ));
        }
        if !(self.diurnal_period_secs.is_finite() && self.diurnal_period_secs > 0.0) {
            return Err("diurnal_period_secs must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.bulk_fraction) {
            return Err(format!("bulk_fraction must be in [0, 1], got {}", self.bulk_fraction));
        }
        Ok(())
    }
}

/// One scheduled request: when it arrives and what it asks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from trace start, microseconds.
    pub at_us: u64,
    /// Target domain.
    pub domain: usize,
    /// Requesting user (Zipf-ranked id).
    pub user: u32,
    /// Candidate item.
    pub item: u32,
    /// User-group side feature.
    pub user_group: u32,
    /// Item-category side feature.
    pub item_cat: u32,
    /// Service class.
    pub class: SloClass,
}

/// Cumulative Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1/(k+1)^s`. Sampling is one uniform draw plus a binary
/// search — O(log n), no rejection.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the CDF for `n` ranks (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        ZipfSampler { cum }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of ranks with cum < u, i.e.
        // the first rank whose cumulative mass reaches u.
        self.cum.partition_point(|&c| c < u).min(self.cum.len() - 1)
    }
}

/// Streaming generator of one trace. Iterates [`Arrival`]s in
/// non-decreasing `at_us` order until the virtual duration is exhausted.
#[derive(Debug)]
pub struct TraceGen {
    cfg: TraceConfig,
    rng: StdRng,
    users: ZipfSampler,
    domains: ZipfSampler,
    /// Virtual clock, microseconds (f64 for exact exponential steps).
    t_us: f64,
    end_us: f64,
    peak_rate_per_us: f64,
}

impl TraceGen {
    /// A generator for `cfg` (panics on an invalid config — call
    /// [`TraceConfig::validate`] first for a typed error).
    pub fn new(cfg: TraceConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid trace config: {e}");
        }
        let users = ZipfSampler::new(cfg.n_users as usize, cfg.user_zipf);
        let domains = ZipfSampler::new(cfg.n_domains, cfg.domain_zipf);
        // Domain-separate the trace stream from other consumers of the
        // same user-facing seed (ASCII "TRACEGEN").
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5452_4143_4547_454e);
        let end_us = cfg.duration_secs * 1e6;
        let peak_rate_per_us = cfg.rate_rps * (1.0 + cfg.diurnal_amplitude) / 1e6;
        TraceGen { cfg, rng, users, domains, t_us: 0.0, end_us, peak_rate_per_us }
    }

    /// The config this generator runs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Instantaneous arrival rate at virtual time `t_us`, per microsecond.
    fn rate_at(&self, t_us: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t_us / 1e6) / self.cfg.diurnal_period_secs;
        (self.cfg.rate_rps / 1e6) * (1.0 + self.cfg.diurnal_amplitude * phase.sin())
    }
}

impl Iterator for TraceGen {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        // Inhomogeneous Poisson by thinning: candidate arrivals at the
        // peak rate, each kept with probability rate(t)/peak — an exact
        // sample of the sinusoidal process, not a binned approximation.
        loop {
            let u: f64 = self.rng.gen();
            // Exponential step at the peak rate. (1 - u) keeps ln away
            // from 0 exactly; the vendored RNG emits u in [0, 1).
            self.t_us += -(1.0 - u).ln() / self.peak_rate_per_us;
            if self.t_us >= self.end_us {
                return None;
            }
            let keep: f64 = self.rng.gen();
            if keep * self.peak_rate_per_us > self.rate_at(self.t_us) {
                continue;
            }
            let user = self.users.sample(&mut self.rng) as u32;
            let domain = self.domains.sample(&mut self.rng);
            let item = self.rng.gen_range(0..self.cfg.n_items);
            let user_group = self.rng.gen_range(0..self.cfg.n_user_groups);
            let item_cat = self.rng.gen_range(0..self.cfg.n_item_cats);
            let class = if self.cfg.bulk_fraction > 0.0 && self.rng.gen_bool(self.cfg.bulk_fraction)
            {
                SloClass::Bulk
            } else {
                SloClass::Interactive
            };
            return Some(Arrival {
                at_us: self.t_us as u64,
                domain,
                user,
                item,
                user_group,
                item_cat,
                class,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> TraceConfig {
        TraceConfig::new(seed, 5_000.0, 2.0)
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a: Vec<Arrival> = TraceGen::new(quick_cfg(7)).collect();
        let b: Vec<Arrival> = TraceGen::new(quick_cfg(7)).collect();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must replay the same trace");
        let c: Vec<Arrival> = TraceGen::new(quick_cfg(8)).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrival_times_are_ordered_and_bounded() {
        let cfg = quick_cfg(3);
        let end = (cfg.duration_secs * 1e6) as u64;
        let mut last = 0;
        for a in TraceGen::new(cfg) {
            assert!(a.at_us >= last, "arrivals must be time-ordered");
            assert!(a.at_us < end);
            last = a.at_us;
        }
    }

    #[test]
    fn mean_rate_matches_the_config() {
        // Zero amplitude isolates the homogeneous Poisson rate (with a
        // swing, the mean only matches over whole diurnal periods).
        let mut cfg = TraceConfig::new(11, 10_000.0, 4.0);
        cfg.diurnal_amplitude = 0.0;
        let n = TraceGen::new(cfg).count() as f64;
        let expect = 10_000.0 * 4.0;
        assert!(
            (n - expect).abs() < 0.05 * expect,
            "got {n} arrivals, want ~{expect} (Poisson mean)"
        );
    }

    #[test]
    fn diurnal_modulation_shifts_load_between_half_periods() {
        // Period = duration: first half is the peak, second the trough.
        let mut cfg = TraceConfig::new(5, 20_000.0, 2.0);
        cfg.diurnal_period_secs = 2.0;
        cfg.diurnal_amplitude = 0.8;
        let (mut first, mut second) = (0u64, 0u64);
        for a in TraceGen::new(cfg) {
            if a.at_us < 1_000_000 {
                first += 1;
            } else {
                second += 1;
            }
        }
        assert!(
            first as f64 > 2.0 * second as f64,
            "peak half {first} should dwarf trough half {second}"
        );
    }

    #[test]
    fn users_and_domains_are_zipf_skewed() {
        let mut cfg = TraceConfig::new(9, 20_000.0, 2.0);
        cfg.n_users = 100;
        cfg.user_zipf = 1.2;
        let mut user_counts = vec![0u64; 100];
        let mut domain_counts = vec![0u64; cfg.n_domains];
        for a in TraceGen::new(cfg) {
            user_counts[a.user as usize] += 1;
            domain_counts[a.domain] += 1;
        }
        // Head user far outweighs a mid-tail user; head domain leads.
        assert!(user_counts[0] > 8 * user_counts[50].max(1), "{:?}", &user_counts[..5]);
        assert!(domain_counts[0] > domain_counts[2], "{domain_counts:?}");
    }

    #[test]
    fn bulk_fraction_splits_classes() {
        let mut cfg = quick_cfg(13);
        cfg.bulk_fraction = 0.3;
        let (mut bulk, mut inter) = (0u64, 0u64);
        for a in TraceGen::new(cfg) {
            match a.class {
                SloClass::Bulk => bulk += 1,
                SloClass::Interactive => inter += 1,
            }
        }
        let frac = bulk as f64 / (bulk + inter) as f64;
        assert!((frac - 0.3).abs() < 0.05, "bulk fraction {frac}, want ~0.3");
    }

    #[test]
    fn zipf_sampler_handles_uniform_and_single_rank() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        let z = ZipfSampler::new(4, 0.0);
        let mut counts = [0u64; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "uniform at s=0: {counts:?}");
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut cfg = quick_cfg(1);
        cfg.rate_rps = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = quick_cfg(1);
        cfg.diurnal_amplitude = 1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = quick_cfg(1);
        cfg.bulk_fraction = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = quick_cfg(1);
        cfg.n_domains = 0;
        assert!(cfg.validate().is_err());
    }
}
