//! Trace-driven open-loop load generation for the MAMDR serving tier.
//!
//! Closed-loop benchmarks hide overload: they only submit when the server
//! answers, so the offered rate silently adapts to capacity (coordinated
//! omission). This crate generates load the way production does —
//! arrivals scheduled by an external clock, indifferent to how the server
//! is coping:
//!
//! * [`TraceConfig`] / [`TraceGen`] — a seeded, streaming arrival trace:
//!   Zipf-popular users and domains, Poisson inter-arrivals whose rate
//!   follows a diurnal sinusoid (exact, via thinning), and a configurable
//!   interactive/bulk [`SloClass`](mamdr_serve::SloClass) split. Same
//!   seed, same trace — byte for byte — so CI can pin exact per-class
//!   request counts and replica-count sweeps replay identical traffic.
//! * [`run_open_loop`] — drives a trace through a
//!   [`ReplicatedServer`](mamdr_serve::ReplicatedServer) on the trace
//!   clock, with per-class deadlines and an optional mid-run hook (e.g. a
//!   hot snapshot swap at a chosen trace instant).
//! * [`LoadReport`] — per-class terminal accounting
//!   (`submitted = admitted + shed + rejected + closed`,
//!   `admitted = scored + deadline_expired + invalid`) plus
//!   client-observed latency histograms. [`LoadReport::accounting_ok`]
//!   is the zero-silent-drops check CI greps for.

mod driver;
mod trace;

pub use driver::{run_open_loop, ClassReport, LoadOptions, LoadReport};
pub use trace::{Arrival, TraceConfig, TraceGen, ZipfSampler};
