//! The open-loop driver: submit on the trace clock, account for everything.
//!
//! Closed-loop benchmarks (PR 3's `serve_bench`) submit a new request only
//! when an old one completes, so the offered load adapts to the server —
//! overload is invisible and latency is flattered (coordinated omission).
//! An **open-loop** driver submits each request at its trace-scheduled
//! instant regardless of how the server is doing. If the server falls
//! behind, queues fill and the admission layer sheds — exactly the signal
//! this tier exists to produce — and client-observed latency includes the
//! queueing the trace actually caused.
//!
//! Every submitted request lands in exactly one terminal bucket, per
//! [`SloClass`]:
//!
//! ```text
//! submitted = admitted + shed_overload + rejected_full + closed
//! admitted  = scored + deadline_expired + invalid
//! ```
//!
//! [`LoadReport::accounting_ok`] checks both identities; a violation means
//! a request was silently dropped, which the serving tier promises never
//! happens.

use crate::trace::TraceGen;
use mamdr_obs::{Histogram, HistogramSnapshot};
use mamdr_serve::{Pending, ReplicatedServer, ScoreRequest, ServeResult, SloClass, SubmitError};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Client-side knobs of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Per-class deadline attached to every submission, indexed by
    /// [`SloClass::index`]; `None` means no deadline for that class.
    pub deadline: [Option<Duration>; SloClass::COUNT],
    /// Wall-seconds per trace-second. `1.0` replays in real time; `0.5`
    /// replays twice as fast (doubling the offered rate without touching
    /// the trace).
    pub time_scale: f64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { deadline: [None; SloClass::COUNT], time_scale: 1.0 }
    }
}

/// Terminal-outcome accounting for one service class.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Requests the trace scheduled for this class.
    pub submitted: u64,
    /// Requests past admission (each got exactly one [`ServeResult`]).
    pub admitted: u64,
    /// Typed per-class sheds ([`SubmitError::ShedOverload`]).
    pub shed_overload: u64,
    /// Global-bound rejections ([`SubmitError::QueueFull`]).
    pub rejected_full: u64,
    /// Submissions refused because the server was shutting down.
    pub closed: u64,
    /// Admitted requests that scored.
    pub scored: u64,
    /// Admitted requests whose deadline passed first (shed while queued
    /// by the dispatcher, or expired at worker pickup).
    pub deadline_expired: u64,
    /// Admitted requests that failed snapshot validation.
    pub invalid: u64,
    /// Client-observed latency of *scored* requests, microseconds, from
    /// submission to result receipt.
    pub latency_us: HistogramSnapshot,
}

impl ClassReport {
    /// Both accounting identities hold: no request vanished.
    pub fn accounting_ok(&self) -> bool {
        self.submitted == self.admitted + self.shed_overload + self.rejected_full + self.closed
            && self.admitted == self.scored + self.deadline_expired + self.invalid
    }

    /// Fraction of submitted requests refused admission (overload signal).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.shed_overload + self.rejected_full) as f64 / self.submitted as f64
    }
}

/// Everything one open-loop run observed, per class and in total.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-class accounting, indexed by [`SloClass::index`].
    pub classes: [ClassReport; SloClass::COUNT],
    /// Wall-clock seconds from first submission to last result.
    pub wall_secs: f64,
    /// Largest scheduling lag of the submitter (how far behind the trace
    /// clock a submission happened), microseconds. Large values mean the
    /// driver machine, not the server, was the bottleneck.
    pub max_sched_lag_us: u64,
    /// Snapshot versions that scored at least one request, ascending.
    pub versions_seen: Vec<u64>,
}

impl LoadReport {
    /// The report for `class`.
    pub fn class(&self, class: SloClass) -> &ClassReport {
        &self.classes[class.index()]
    }

    /// Accounting identities hold for every class.
    pub fn accounting_ok(&self) -> bool {
        self.classes.iter().all(ClassReport::accounting_ok)
    }

    /// Total requests the trace scheduled.
    pub fn submitted(&self) -> u64 {
        self.classes.iter().map(|c| c.submitted).sum()
    }

    /// Total scored requests.
    pub fn scored(&self) -> u64 {
        self.classes.iter().map(|c| c.scored).sum()
    }

    /// Scored requests per wall-clock second.
    pub fn scored_qps(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.scored() as f64 / self.wall_secs
    }
}

/// Runs `trace` through `pool` in open loop.
///
/// Submissions happen on the trace clock (scaled by
/// [`LoadOptions::time_scale`]); a collector thread concurrently resolves
/// every admitted request so the submitter never waits on completions.
/// `swap_at_us` names a trace instant at which `on_swap` runs once —
/// synchronously on the submitter thread, so it lands between two trace
/// arrivals, the natural place to publish a new snapshot mid-run.
pub fn run_open_loop<F: FnMut(u64)>(
    pool: &ReplicatedServer,
    trace: TraceGen,
    opts: &LoadOptions,
    swap_at_us: Option<u64>,
    mut on_swap: F,
) -> LoadReport {
    assert!(
        opts.time_scale.is_finite() && opts.time_scale >= 0.0,
        "time_scale must be a non-negative finite number"
    );
    let (tx, rx) = mpsc::channel::<(Pending, SloClass, Instant)>();

    // Submitter-side tallies (this thread is the only writer).
    let mut submitted = [0u64; SloClass::COUNT];
    let mut admitted = [0u64; SloClass::COUNT];
    let mut shed = [0u64; SloClass::COUNT];
    let mut full = [0u64; SloClass::COUNT];
    let mut closed = [0u64; SloClass::COUNT];
    let mut max_lag_us = 0u64;
    let mut swap_pending = swap_at_us;

    let start = Instant::now();
    let collector = std::thread::scope(|scope| {
        // Collector: resolves pendings in submission order. Results
        // arrive roughly in that order too (FIFO queues per class), so
        // head-of-line blocking on `wait` adds no systematic skew.
        let handle = scope.spawn(move || {
            let mut scored = [0u64; SloClass::COUNT];
            let mut expired = [0u64; SloClass::COUNT];
            let mut invalid = [0u64; SloClass::COUNT];
            let latency: [Histogram; SloClass::COUNT] = [Histogram::new(), Histogram::new()];
            let mut versions: Vec<u64> = Vec::new();
            for (pending, class, at) in rx {
                let result = pending.wait();
                let i = class.index();
                match result {
                    ServeResult::Scored(r) => {
                        scored[i] += 1;
                        latency[i].record(at.elapsed().as_secs_f64() * 1e6);
                        if let Err(p) = versions.binary_search(&r.snapshot_version) {
                            versions.insert(p, r.snapshot_version);
                        }
                    }
                    ServeResult::DeadlineExceeded { .. } => expired[i] += 1,
                    ServeResult::Invalid { .. } => invalid[i] += 1,
                }
            }
            let latency = [latency[0].snapshot(), latency[1].snapshot()];
            (scored, expired, invalid, latency, versions)
        });

        for arrival in trace {
            if let Some(at) = swap_pending {
                if arrival.at_us >= at {
                    on_swap(arrival.at_us);
                    swap_pending = None;
                }
            }
            // Open loop: sleep until the scheduled instant if it is still
            // ahead; if we are behind, submit immediately and record the
            // lag — never skip, never pace by completions.
            let target_us = (arrival.at_us as f64 * opts.time_scale) as u64;
            let target = Duration::from_micros(target_us);
            let now = start.elapsed();
            if target > now {
                std::thread::sleep(target - now);
            } else {
                max_lag_us = max_lag_us.max((now - target).as_micros() as u64);
            }

            let class = arrival.class;
            let i = class.index();
            submitted[i] += 1;
            let req = ScoreRequest::new(
                arrival.domain,
                arrival.user,
                arrival.item,
                arrival.user_group,
                arrival.item_cat,
            );
            match pool.submit_class(req, opts.deadline[i], class) {
                Ok(pending) => {
                    admitted[i] += 1;
                    tx.send((pending, class, Instant::now())).expect("collector alive");
                }
                Err(SubmitError::ShedOverload(c)) => shed[c.index()] += 1,
                Err(SubmitError::QueueFull) => full[i] += 1,
                Err(SubmitError::Closed) => closed[i] += 1,
            }
        }
        drop(tx);
        handle.join().expect("collector thread")
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let (scored, expired, invalid, latency, versions_seen) = collector;

    let class_report = |i: usize| ClassReport {
        submitted: submitted[i],
        admitted: admitted[i],
        shed_overload: shed[i],
        rejected_full: full[i],
        closed: closed[i],
        scored: scored[i],
        deadline_expired: expired[i],
        invalid: invalid[i],
        latency_us: latency[i].clone(),
    };
    LoadReport {
        classes: [class_report(0), class_report(1)],
        wall_secs,
        max_sched_lag_us: max_lag_us,
        versions_seen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use mamdr_core::env::DomainParams;
    use mamdr_core::TrainedModel;
    use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};
    use mamdr_obs::MetricsRegistry;
    use mamdr_serve::{ServeConfig, ServingSnapshot};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A tiny 3-domain MLP snapshot sized to the default trace config's
    /// id spaces; weights derive from `version`.
    fn snapshot(version: u64) -> ServingSnapshot {
        let spec = mamdr_serve::ModelSpec {
            kind: ModelKind::Mlp,
            features: FeatureConfig {
                n_users: 200,
                n_items: 120,
                n_user_groups: 8,
                n_item_cats: 8,
                dense_dim: 0,
            },
            config: ModelConfig::tiny(),
            n_domains: 3,
        };
        let built = build_model(spec.kind, &spec.features, &spec.config, spec.n_domains, 7);
        let n = built.params.n_scalars();
        let mut rng = StdRng::seed_from_u64(version * 1000 + 17);
        let shared: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let deltas = (0..spec.n_domains)
            .map(|_| (0..n).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();
        let trained = TrainedModel { shared, domains: DomainParams::Deltas(deltas) };
        ServingSnapshot::from_trained(version, spec, trained).expect("consistent fixture")
    }

    fn quick_trace(rate: f64, secs: f64) -> TraceGen {
        TraceGen::new(TraceConfig::new(42, rate, secs))
    }

    #[test]
    fn open_loop_accounts_for_every_request() {
        let registry = MetricsRegistry::new();
        let pool = ReplicatedServer::start(snapshot(1), 2, ServeConfig::default(), &registry, None);
        let report =
            run_open_loop(&pool, quick_trace(2_000.0, 0.5), &LoadOptions::default(), None, |_| {});
        pool.shutdown();
        assert!(report.submitted() > 0);
        assert!(report.accounting_ok(), "accounting identity violated: {report:?}");
        assert_eq!(report.scored(), report.submitted(), "no overload at this rate");
        assert_eq!(report.versions_seen, vec![1]);
        // Client-side tallies agree with the server's own counters.
        assert_eq!(registry.counter("serve_responses_total").get(), report.scored());
    }

    #[test]
    fn overload_sheds_typed_and_still_accounts() {
        let registry = MetricsRegistry::new();
        let config = ServeConfig {
            queue_cap: 8,
            class_caps: [6, 2],
            n_workers: 1,
            ..ServeConfig::default()
        };
        let pool = ReplicatedServer::start(snapshot(1), 1, config, &registry, None);
        // time_scale 0 submits the whole trace as fast as possible: far
        // beyond what a cap-8 queue admits, guaranteeing sheds.
        let opts = LoadOptions { time_scale: 0.0, ..LoadOptions::default() };
        let report = run_open_loop(&pool, quick_trace(20_000.0, 0.5), &opts, None, |_| {});
        pool.shutdown();
        assert!(report.accounting_ok(), "accounting identity violated: {report:?}");
        let shed: u64 = report.classes.iter().map(|c| c.shed_overload + c.rejected_full).sum();
        assert!(shed > 0, "a cap-8 queue must shed under a burst: {report:?}");
        assert_eq!(
            registry.counter("serve_requests_total").get(),
            report.classes.iter().map(|c| c.admitted).sum::<u64>(),
        );
    }

    #[test]
    fn mid_run_swap_fires_once_and_both_versions_score() {
        let registry = MetricsRegistry::new();
        let pool = ReplicatedServer::start(snapshot(1), 2, ServeConfig::default(), &registry, None);
        let mut fired = 0;
        let report = run_open_loop(
            &pool,
            quick_trace(2_000.0, 0.5),
            &LoadOptions::default(),
            Some(250_000),
            |_| {
                fired += 1;
                pool.publish(snapshot(2));
            },
        );
        pool.shutdown();
        assert_eq!(fired, 1, "swap hook must run exactly once");
        assert!(report.accounting_ok());
        assert_eq!(report.versions_seen, vec![1, 2], "both snapshot versions must score");
    }

    #[test]
    fn deadlines_expire_into_their_own_bucket() {
        let registry = MetricsRegistry::new();
        let config = ServeConfig { n_workers: 1, ..ServeConfig::default() };
        let pool = ReplicatedServer::start(snapshot(1), 1, config, &registry, None);
        let opts = LoadOptions {
            // A deadline that has always already passed: everything
            // admitted must resolve DeadlineExceeded, nothing scores.
            deadline: [Some(Duration::from_micros(0)); SloClass::COUNT],
            time_scale: 0.0,
        };
        let report = run_open_loop(&pool, quick_trace(2_000.0, 0.1), &opts, None, |_| {});
        pool.shutdown();
        assert!(report.accounting_ok(), "accounting identity violated: {report:?}");
        let expired: u64 = report.classes.iter().map(|c| c.deadline_expired).sum();
        let admitted: u64 = report.classes.iter().map(|c| c.admitted).sum();
        assert!(admitted > 0);
        assert_eq!(expired, admitted, "zero deadline must expire everything admitted");
        assert_eq!(
            registry.counter("serve_deadline_expired_total").get()
                + registry.counter("serve_deadline_exceeded_total").get(),
            expired,
        );
    }
}
