//! # mamdr-util
//!
//! The one home of the workspace's binary-format primitives. Three on-disk
//! or on-wire formats (`nn::persist` model snapshots, `serve::snapshot`
//! serving artifacts, and the `mamdr-rpc` frame protocol) share the same
//! integrity and payload conventions; keeping three copies of the checksum
//! and f32-section logic was a bug farm, so they live here once and
//! everyone delegates.
//!
//! * [`Checksum`] — incremental FNV-1a 64-bit digest.
//! * [`write_f32_section`] / [`read_f32_section`] — little-endian f32
//!   payload sections, moved as one block copy on little-endian targets
//!   (no per-element conversion loop on the hot framing path).

use std::io::{self, Read, Write};

/// Incremental FNV-1a 64-bit hasher over serialized bytes.
///
/// Snapshot and frame formats append the digest after their payload so a
/// flipped bit anywhere surfaces as a load/decode error instead of silently
/// corrupted parameters. FNV-1a is not cryptographic — it guards against
/// storage/transfer corruption, not adversaries.
#[derive(Debug, Clone)]
pub struct Checksum(u64);

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

impl Checksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Checksum(Self::OFFSET)
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(bytes);
        c.digest()
    }
}

/// Views an f32 slice as its raw bytes (alignment of u8 is 1, so this is
/// always valid; byte order is the host's, which callers must gate on).
#[cfg(target_endian = "little")]
fn as_bytes(values: &[f32]) -> &[u8] {
    // SAFETY: f32 has no padding or invalid bit patterns as bytes, and the
    // length arithmetic cannot overflow (the slice already fits in memory).
    unsafe { std::slice::from_raw_parts(values.as_ptr() as *const u8, values.len() * 4) }
}

#[cfg(target_endian = "little")]
fn as_bytes_mut(values: &mut [f32]) -> &mut [u8] {
    // SAFETY: as above; exclusive access is inherited from the &mut slice.
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr() as *mut u8, values.len() * 4) }
}

/// Writes a little-endian f32 section (values only, caller frames lengths).
///
/// On little-endian hosts the slice is written as one block with no
/// per-element conversion — the wire order *is* the memory order.
pub fn write_f32_section(mut w: impl Write, values: &[f32]) -> io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        w.write_all(as_bytes(values))
    }
    #[cfg(not(target_endian = "little"))]
    {
        for &v in values {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Reads `n` little-endian f32 values written by [`write_f32_section`].
///
/// Allocates `4 * n` bytes up front: callers decoding untrusted input must
/// cap `n` from their framing *before* calling (the rpc frame codec and the
/// snapshot readers both do).
pub fn read_f32_section(mut r: impl Read, n: usize) -> io::Result<Vec<f32>> {
    let mut values = vec![0.0f32; n];
    read_f32_into(&mut r, &mut values)?;
    Ok(values)
}

/// Reads little-endian f32 values directly into `out` (no intermediate
/// buffer on little-endian hosts).
pub fn read_f32_into(mut r: impl Read, out: &mut [f32]) -> io::Result<()> {
    #[cfg(target_endian = "little")]
    {
        r.read_exact(as_bytes_mut(out))
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut b = [0u8; 4];
        for v in out.iter_mut() {
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_known_fnv1a_vectors() {
        // Empty input hashes to the offset basis.
        assert_eq!(Checksum::of(b""), 0xcbf2_9ce4_8422_2325);
        // Published FNV-1a 64 test vector.
        assert_eq!(Checksum::of(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(Checksum::of(b"ab"), Checksum::of(b"ba"));
    }

    #[test]
    fn checksum_is_incremental() {
        let mut inc = Checksum::new();
        inc.update(b"hel");
        inc.update(b"lo");
        assert_eq!(inc.digest(), Checksum::of(b"hello"));
    }

    #[test]
    fn f32_section_roundtrip_is_bit_exact() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0, f32::NAN];
        let mut buf = Vec::new();
        write_f32_section(&mut buf, &values).unwrap();
        assert_eq!(buf.len(), 4 * values.len());
        let back = read_f32_section(buf.as_slice(), values.len()).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&values));
    }

    #[test]
    fn f32_section_bytes_are_little_endian() {
        let mut buf = Vec::new();
        write_f32_section(&mut buf, &[1.0f32]).unwrap();
        assert_eq!(buf, 1.0f32.to_le_bytes());
    }

    #[test]
    fn truncated_section_errors() {
        let mut buf = Vec::new();
        write_f32_section(&mut buf, &[1.0, 2.0]).unwrap();
        assert!(read_f32_section(buf.as_slice(), 3).is_err());
        let mut out = [0.0f32; 3];
        assert!(read_f32_into(buf.as_slice(), &mut out).is_err());
    }
}
