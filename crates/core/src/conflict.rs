//! The gradient-conflict probe behind paper §III-B / Figure 3.
//!
//! Domain conflict is defined as a negative inner product between the
//! gradients two domains induce on the same parameters. This module
//! measures that quantity directly, so experiments can (a) demonstrate that
//! the synthetic datasets actually exhibit conflict and (b) verify that
//! Domain Negotiation reduces it.

use crate::env::TrainEnv;
use mamdr_nn::vecmath;

/// Pairwise gradient-conflict statistics at one parameter point.
#[derive(Debug, Clone)]
pub struct ConflictReport {
    /// Number of domain pairs measured.
    pub n_pairs: usize,
    /// Fraction of pairs with negative gradient inner product.
    pub conflict_rate: f64,
    /// Mean pairwise inner product.
    pub mean_inner_product: f64,
    /// Mean pairwise cosine similarity.
    pub mean_cosine: f64,
}

/// Measures pairwise gradient conflict across all domains at `theta`.
///
/// Each domain's gradient is averaged over up to 8 minibatches (dropout
/// disabled) — single-minibatch gradients near convergence are dominated by
/// sampling noise, which would mask the systematic conflict this probe is
/// after. All `n·(n−1)/2` pairs are then compared.
pub fn measure_conflict(env: &mut TrainEnv, theta: &[f32]) -> ConflictReport {
    let n = env.n_domains();
    let grads: Vec<Vec<f32>> = (0..n).map(|d| domain_gradient(env, theta, d, 8)).collect();
    pairwise_conflict(&grads)
}

/// Pairwise conflict statistics over pre-computed per-domain gradients.
/// Shared by [`measure_conflict`] and the observer's conflict probe in
/// `TrainEnv` (which sources its gradients from a dedicated RNG stream).
pub fn pairwise_conflict(grads: &[Vec<f32>]) -> ConflictReport {
    let n = grads.len();
    let mut n_pairs = 0usize;
    let mut n_conflict = 0usize;
    let mut ip_sum = 0.0f64;
    let mut cos_sum = 0.0f64;
    for a in 0..n {
        for b in a + 1..n {
            let ip = vecmath::dot(&grads[a], &grads[b]);
            ip_sum += ip;
            cos_sum += vecmath::cosine(&grads[a], &grads[b]);
            if ip < 0.0 {
                n_conflict += 1;
            }
            n_pairs += 1;
        }
    }
    ConflictReport {
        n_pairs,
        conflict_rate: if n_pairs == 0 { 0.0 } else { n_conflict as f64 / n_pairs as f64 },
        mean_inner_product: if n_pairs == 0 { 0.0 } else { ip_sum / n_pairs as f64 },
        mean_cosine: if n_pairs == 0 { 0.0 } else { cos_sum / n_pairs as f64 },
    }
}

/// The average training gradient of one domain at `theta`, taken over up to
/// `max_batches` shuffled minibatches (equal-weight average ≈ the
/// full-domain gradient when batch sizes are equal).
pub fn domain_gradient(
    env: &mut TrainEnv,
    theta: &[f32],
    domain: usize,
    max_batches: usize,
) -> Vec<f32> {
    let mut batches = env.train_batches(domain);
    batches.truncate(max_batches.max(1));
    let mut acc = vec![0.0f32; theta.len()];
    let n = batches.len().max(1);
    for batch in batches {
        let (_, g) = env.grad(theta, &batch, false);
        vecmath::axpy(&mut acc, 1.0 / n as f32, &g);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::frameworks::alternate::Alternate;
    use crate::frameworks::Framework;
    use crate::test_support::fixture_env;
    use mamdr_data::{DomainSpec, GeneratorConfig};
    use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};

    fn conflict_dataset(conflict: f32) -> mamdr_data::MdrDataset {
        let mut cfg = GeneratorConfig::base("c", 200, 100, 91);
        cfg.conflict = conflict;
        cfg.domains = (0..6).map(|i| DomainSpec::new(format!("d{i}"), 700, 0.3)).collect();
        cfg.generate()
    }

    #[test]
    fn report_fields_are_consistent() {
        let ds = conflict_dataset(0.5);
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 6, 1);
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let theta = env.init_flat();
        let r = measure_conflict(&mut env, &theta);
        assert_eq!(r.n_pairs, 15);
        assert!((0.0..=1.0).contains(&r.conflict_rate));
        assert!((-1.0..=1.0).contains(&r.mean_cosine));
    }

    #[test]
    fn conflict_emerges_during_training() {
        // Paper §III-B: domain conflict is absent at a random init (all
        // domains agree on "learn the embeddings") and emerges as the shared
        // parameters approach the compromise point. Both ends are asserted.
        let ds = conflict_dataset(0.9);
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 6, 1);
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(6));
        let init = env.init_flat();
        let at_init = measure_conflict(&mut env, &init);
        assert!(
            at_init.mean_cosine > 0.3,
            "gradients should agree at init, cosine {}",
            at_init.mean_cosine
        );
        let tm = Alternate.train(&mut env);
        let trained = measure_conflict(&mut env, &tm.shared);
        assert!(
            trained.mean_cosine < at_init.mean_cosine - 0.2,
            "gradient agreement should fall during training: {} -> {}",
            at_init.mean_cosine,
            trained.mean_cosine
        );
    }

    #[test]
    fn dataset_conflict_knob_degrades_shared_training() {
        // The outcome-level effect of the ground-truth conflict knob: a
        // single shared model loses test AUC as domains disagree more.
        let mut aucs = Vec::new();
        for conflict in [0.0f32, 1.0] {
            let ds = conflict_dataset(conflict);
            let fc = FeatureConfig::from_dataset(&ds);
            let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 6, 1);
            let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(8));
            let tm = Alternate.train(&mut env);
            let per_domain = env.evaluate(&tm, mamdr_data::Split::Test);
            aucs.push(crate::metrics::mean(&per_domain));
        }
        assert!(aucs[0] > aucs[1] + 0.01, "conflict knob should cost AUC: {:?}", aucs);
    }
}
