//! Shared fixtures for this crate's unit tests (compiled only for tests).

use crate::config::TrainConfig;
use crate::env::TrainEnv;
use mamdr_data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{build_model, BuiltModel, FeatureConfig, ModelConfig, ModelKind};

/// A small two-domain dataset plus a tiny MLP — enough signal for every
/// framework to demonstrably reduce the loss within a couple of epochs.
pub fn fixture() -> (MdrDataset, BuiltModel) {
    let mut cfg = GeneratorConfig::base("fixture", 60, 40, 123);
    cfg.domains = vec![DomainSpec::new("a", 400, 0.3), DomainSpec::new("b", 300, 0.4)];
    let ds = cfg.generate();
    let fc = FeatureConfig::from_dataset(&ds);
    let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), ds.n_domains(), 7);
    (ds, built)
}

/// Wraps a fixture into a training environment.
pub fn fixture_env<'a>(
    ds: &'a MdrDataset,
    built: &'a BuiltModel,
    cfg: TrainConfig,
) -> TrainEnv<'a> {
    TrainEnv::new(ds, built.model.as_ref(), built.params.clone(), cfg)
}

/// Mean training loss over all domains at a parameter point (dropout off).
pub fn train_loss(env: &mut TrainEnv, flat: &[f32]) -> f32 {
    let mut total = 0.0f32;
    let mut n = 0usize;
    for d in 0..env.n_domains() {
        for batch in env.train_batches(d) {
            let (loss, _) = env.grad(flat, &batch, false);
            total += loss;
            n += 1;
        }
    }
    total / n.max(1) as f32
}
