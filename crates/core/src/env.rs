//! The training environment and the trained-model artifact.
//!
//! `TrainEnv` is the *only* window a learning framework has onto a model:
//! flat parameter vectors in, `(loss, flat gradient)` out. This enforces the
//! model-agnosticism the paper claims — no framework in this crate can even
//! name an architecture.

use crate::config::TrainConfig;
use crate::metrics::auc;
use mamdr_data::{batches_for_domain, Batch, BatchPlan, MdrDataset, Split};
use mamdr_models::{eval_logits, loss_and_grads, CtrModel};
use mamdr_nn::{ForwardCtx, ParamStore};
use mamdr_tensor::rng::{derive_seed, seeded};
use rand::rngs::StdRng;
use rand::Rng;

/// Everything a framework needs to train one model on one dataset.
pub struct TrainEnv<'a> {
    /// The dataset.
    pub ds: &'a MdrDataset,
    /// The architecture being trained (opaque to frameworks).
    pub model: &'a dyn CtrModel,
    /// Training hyper-parameters.
    pub cfg: TrainConfig,
    /// RNG for shuffling, sampling and dropout.
    pub rng: StdRng,
    init_flat: Vec<f32>,
    scratch: ParamStore,
}

impl<'a> TrainEnv<'a> {
    /// Builds an environment around a freshly initialized model.
    pub fn new(
        ds: &'a MdrDataset,
        model: &'a dyn CtrModel,
        init: ParamStore,
        cfg: TrainConfig,
    ) -> Self {
        let init_flat = init.to_flat();
        TrainEnv {
            ds,
            model,
            cfg,
            rng: seeded(derive_seed(cfg.seed, 0xE17)),
            init_flat,
            scratch: init,
        }
    }

    /// The initialization point Θ₀ (copied).
    pub fn init_flat(&self) -> Vec<f32> {
        self.init_flat.clone()
    }

    /// Flat parameter-vector length.
    pub fn n_params(&self) -> usize {
        self.init_flat.len()
    }

    /// Number of domains in the dataset.
    pub fn n_domains(&self) -> usize {
        self.ds.n_domains()
    }

    /// Loss and flat gradient of the model at `flat` on one batch.
    ///
    /// `training` enables dropout (fresh mask per call, drawn from the env
    /// RNG).
    pub fn grad(&mut self, flat: &[f32], batch: &Batch, training: bool) -> (f32, Vec<f32>) {
        self.scratch.load_flat(flat);
        let mut ctx = if training {
            ForwardCtx::train(&mut self.rng)
        } else {
            ForwardCtx::eval(&mut self.rng)
        };
        let (loss, grads) = loss_and_grads(self.model, &self.scratch, batch, &mut ctx);
        (loss, self.scratch.grads_to_flat(&grads))
    }

    /// All training batches of one domain, shuffled.
    pub fn train_batches(&mut self, domain: usize) -> Vec<Batch> {
        batches_for_domain(
            self.ds,
            domain,
            Split::Train,
            BatchPlan::train(self.cfg.batch_size),
            &mut self.rng,
        )
    }

    /// One random training batch from a domain.
    pub fn sample_train_batch(&mut self, domain: usize) -> Batch {
        let interactions = self.ds.domains[domain].split(Split::Train);
        assert!(!interactions.is_empty(), "domain {} has no training data", domain);
        let bs = self.cfg.batch_size.min(interactions.len());
        let start_max = interactions.len() - bs;
        let start = if start_max == 0 { 0 } else { self.rng.gen_range(0..=start_max) };
        mamdr_data::make_batch(self.ds, domain, &interactions[start..start + bs])
    }

    /// A shuffled domain visit order (fresh each call, as DN requires).
    pub fn shuffled_domains(&mut self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_domains()).collect();
        mamdr_tensor::rng::shuffle(&mut self.rng, &mut order);
        order
    }

    /// Per-domain AUC of a trained model on `split`.
    pub fn evaluate(&mut self, trained: &TrainedModel, split: Split) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_domains());
        for d in 0..self.n_domains() {
            let flat = trained.flat_for(d);
            self.scratch.load_flat(&flat);
            let plan = BatchPlan::eval(self.cfg.batch_size.max(256));
            let mut rng = seeded(0);
            let batches = batches_for_domain(self.ds, d, split, plan, &mut rng);
            let mut labels = Vec::new();
            let mut scores = Vec::new();
            for b in &batches {
                scores.extend(eval_logits(self.model, &self.scratch, b));
                labels.extend_from_slice(&b.labels);
            }
            out.push(auc(&labels, &scores));
        }
        out
    }
}

/// How a trained model materializes parameters per domain.
#[derive(Debug, Clone)]
pub enum DomainParams {
    /// Every domain is served by the shared parameters alone.
    SharedOnly,
    /// Per-domain *deltas*: Θ_d = θS + θ_d (paper Eq. 4 — MAMDR, DR,
    /// Alternate+Finetune expressed as a delta).
    Deltas(Vec<Vec<f32>>),
    /// Per-domain *full* parameter vectors (Separate training).
    Full(Vec<Vec<f32>>),
}

/// The artifact a framework produces: shared parameters plus (optionally)
/// per-domain specializations.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// Shared parameters θS as a flat vector.
    pub shared: Vec<f32>,
    /// Per-domain parameterization.
    pub domains: DomainParams,
}

impl TrainedModel {
    /// A model served purely from shared parameters.
    pub fn shared_only(shared: Vec<f32>) -> Self {
        TrainedModel { shared, domains: DomainParams::SharedOnly }
    }

    /// The effective flat parameters for `domain`.
    pub fn flat_for(&self, domain: usize) -> Vec<f32> {
        match &self.domains {
            DomainParams::SharedOnly => self.shared.clone(),
            DomainParams::Deltas(deltas) => {
                let mut flat = self.shared.clone();
                mamdr_nn::vecmath::axpy(&mut flat, 1.0, &deltas[domain]);
                flat
            }
            DomainParams::Full(full) => full[domain].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};
    use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};

    fn fixture() -> (MdrDataset, mamdr_models::BuiltModel) {
        let mut cfg = GeneratorConfig::base("t", 40, 25, 77);
        cfg.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 200, 0.4)];
        let ds = cfg.generate();
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 2, 1);
        (ds, built)
    }

    #[test]
    fn grad_is_deterministic_in_eval_mode() {
        let (ds, built) = fixture();
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let flat = env.init_flat();
        let batch = mamdr_data::make_batch(&ds, 0, &ds.domains[0].train[..16]);
        let (l1, g1) = env.grad(&flat, &batch, false);
        let (l2, g2) = env.grad(&flat, &batch, false);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn sample_train_batch_has_config_size() {
        let (ds, built) = fixture();
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let b = env.sample_train_batch(1);
        assert_eq!(b.len(), TrainConfig::quick().batch_size.min(ds.domains[1].train.len()));
        assert_eq!(b.domain, 1);
    }

    #[test]
    fn shuffled_domains_is_permutation() {
        let (ds, built) = fixture();
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let mut order = env.shuffled_domains();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn trained_model_composition() {
        let shared = vec![1.0, 2.0, 3.0];
        let tm = TrainedModel::shared_only(shared.clone());
        assert_eq!(tm.flat_for(0), shared);
        let tm = TrainedModel {
            shared: shared.clone(),
            domains: DomainParams::Deltas(vec![vec![0.5, 0.0, -1.0], vec![0.0; 3]]),
        };
        assert_eq!(tm.flat_for(0), vec![1.5, 2.0, 2.0]);
        assert_eq!(tm.flat_for(1), shared);
        let tm = TrainedModel {
            shared,
            domains: DomainParams::Full(vec![vec![9.0, 9.0, 9.0], vec![0.0; 3]]),
        };
        assert_eq!(tm.flat_for(0), vec![9.0; 3]);
    }

    #[test]
    fn evaluate_returns_per_domain_auc() {
        let (ds, built) = fixture();
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let tm = TrainedModel::shared_only(env.init_flat());
        let aucs = env.evaluate(&tm, Split::Test);
        assert_eq!(aucs.len(), 2);
        for a in aucs {
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
