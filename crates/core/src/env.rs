//! The training environment and the trained-model artifact.
//!
//! `TrainEnv` is the *only* window a learning framework has onto a model:
//! flat parameter vectors in, `(loss, flat gradient)` out. This enforces the
//! model-agnosticism the paper claims — no framework in this crate can even
//! name an architecture.

use crate::config::TrainConfig;
use crate::metrics::auc;
use mamdr_data::{batches_for_domain, Batch, BatchPlan, MdrDataset, Split};
use mamdr_models::{eval_logits, loss_and_grads, CtrModel};
use mamdr_nn::{ForwardCtx, ParamStore};
use mamdr_obs::{ConflictSummary, EpochEvent, TrainMeta, TrainObserver};
use mamdr_tensor::pool;
use mamdr_tensor::rng::{derive_seed, seeded};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-epoch telemetry accumulators, populated by [`TrainEnv::grad`] only
/// while an observer is attached.
#[derive(Default)]
struct Telemetry {
    epoch: usize,
    loss_sum: f64,
    n_batches: u64,
    sq_grad_sum: f64,
    /// Per-domain `(loss_sum, n_batches)`.
    domain_loss: Vec<(f64, u64)>,
    started: Option<std::time::Instant>,
}

impl Telemetry {
    fn reset_epoch(&mut self) {
        self.loss_sum = 0.0;
        self.n_batches = 0;
        self.sq_grad_sum = 0.0;
        for d in &mut self.domain_loss {
            *d = (0.0, 0);
        }
    }
}

/// Everything a framework needs to train one model on one dataset.
pub struct TrainEnv<'a> {
    /// The dataset.
    pub ds: &'a MdrDataset,
    /// The architecture being trained (opaque to frameworks).
    pub model: &'a dyn CtrModel,
    /// Training hyper-parameters.
    pub cfg: TrainConfig,
    /// RNG for shuffling, sampling and dropout.
    pub rng: StdRng,
    init_flat: Vec<f32>,
    scratch: ParamStore,
    obs: Option<Box<dyn TrainObserver>>,
    /// Dedicated stream for observer-requested conflict probes, so probing
    /// never advances `rng` (training stays bit-identical with and without
    /// an observer attached).
    probe_rng: StdRng,
    telemetry: Telemetry,
}

impl<'a> TrainEnv<'a> {
    /// Builds an environment around a freshly initialized model.
    pub fn new(
        ds: &'a MdrDataset,
        model: &'a dyn CtrModel,
        init: ParamStore,
        cfg: TrainConfig,
    ) -> Self {
        let init_flat = init.to_flat();
        TrainEnv {
            ds,
            model,
            cfg,
            rng: seeded(derive_seed(cfg.seed, 0xE17)),
            init_flat,
            scratch: init,
            obs: None,
            probe_rng: seeded(derive_seed(cfg.seed, 0x0B5)),
            telemetry: Telemetry::default(),
        }
    }

    /// The initialization point Θ₀ (copied).
    pub fn init_flat(&self) -> Vec<f32> {
        self.init_flat.clone()
    }

    /// Flat parameter-vector length.
    pub fn n_params(&self) -> usize {
        self.init_flat.len()
    }

    /// Number of domains in the dataset.
    pub fn n_domains(&self) -> usize {
        self.ds.n_domains()
    }

    /// Loss and flat gradient of the model at `flat` on one batch.
    ///
    /// `training` enables dropout (fresh mask per call, drawn from the env
    /// RNG). Allocates a fresh gradient vector per call; hot loops should
    /// prefer [`grad_into`](Self::grad_into) with a reused buffer.
    pub fn grad(&mut self, flat: &[f32], batch: &Batch, training: bool) -> (f32, Vec<f32>) {
        let mut out = vec![0.0f32; self.init_flat.len()];
        let loss = self.grad_into(flat, batch, training, &mut out);
        (loss, out)
    }

    /// [`grad`](Self::grad), but writing the flat gradient into a
    /// caller-owned buffer of length [`n_params`](Self::n_params) — the
    /// allocation-free path frameworks use inside their batch loops. Returns
    /// the loss.
    pub fn grad_into(
        &mut self,
        flat: &[f32],
        batch: &Batch,
        training: bool,
        out: &mut [f32],
    ) -> f32 {
        self.scratch.load_flat(flat);
        let mut ctx = if training {
            ForwardCtx::train(&mut self.rng)
        } else {
            ForwardCtx::eval(&mut self.rng)
        };
        let (loss, grads) = loss_and_grads(self.model, &self.scratch, batch, &mut ctx);
        self.scratch.grads_write_flat(&grads, out);
        // Telemetry accumulation reuses values training computed anyway
        // (plus one dot product) and touches no RNG; without an observer
        // the hot path pays this single branch.
        if training && self.obs.is_some() {
            let t = &mut self.telemetry;
            t.loss_sum += loss as f64;
            t.n_batches += 1;
            t.sq_grad_sum += out.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
            if t.domain_loss.len() <= batch.domain {
                t.domain_loss.resize(batch.domain + 1, (0.0, 0));
            }
            let slot = &mut t.domain_loss[batch.domain];
            slot.0 += loss as f64;
            slot.1 += 1;
        }
        loss
    }

    /// All training batches of one domain, shuffled.
    pub fn train_batches(&mut self, domain: usize) -> Vec<Batch> {
        batches_for_domain(
            self.ds,
            domain,
            Split::Train,
            BatchPlan::train(self.cfg.batch_size),
            &mut self.rng,
        )
    }

    /// One random training batch from a domain.
    pub fn sample_train_batch(&mut self, domain: usize) -> Batch {
        let interactions = self.ds.domains[domain].split(Split::Train);
        assert!(!interactions.is_empty(), "domain {} has no training data", domain);
        let bs = self.cfg.batch_size.min(interactions.len());
        let start_max = interactions.len() - bs;
        let start = if start_max == 0 { 0 } else { self.rng.gen_range(0..=start_max) };
        mamdr_data::make_batch(self.ds, domain, &interactions[start..start + bs])
    }

    /// A shuffled domain visit order (fresh each call, as DN requires).
    pub fn shuffled_domains(&mut self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_domains()).collect();
        mamdr_tensor::rng::shuffle(&mut self.rng, &mut order);
        order
    }

    /// Per-domain AUC of a trained model on `split`.
    ///
    /// Batches within a domain are scored on the kernel worker pool: each
    /// batch's logits land in a dedicated slot and are concatenated in batch
    /// order afterwards, so the AUC input — and therefore the reported AUC —
    /// is bit-identical at any thread count.
    pub fn evaluate(&mut self, trained: &TrainedModel, split: Split) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_domains());
        for d in 0..self.n_domains() {
            let flat = trained.flat_for(d);
            self.scratch.load_flat(&flat);
            let plan = BatchPlan::eval(self.cfg.batch_size.max(256));
            let mut rng = seeded(0);
            let batches = batches_for_domain(self.ds, d, split, plan, &mut rng);
            let mut slots: Vec<Vec<f32>> = vec![Vec::new(); batches.len()];
            {
                let model = self.model;
                let scratch = &self.scratch;
                let batches = &batches;
                let slot_ptr = pool::SendMutPtr(slots.as_mut_ptr());
                pool::for_each_chunk(batches.len(), 1, move |range| {
                    for i in range {
                        let scores = eval_logits(model, scratch, &batches[i]);
                        // SAFETY: each batch index is visited by exactly one
                        // chunk, so writes to the slots are disjoint.
                        unsafe { *slot_ptr.get().add(i) = scores };
                    }
                });
            }
            let mut labels = Vec::new();
            let mut scores = Vec::new();
            for (b, s) in batches.iter().zip(&slots) {
                scores.extend_from_slice(s);
                labels.extend_from_slice(&b.labels);
            }
            out.push(auc(&labels, &scores));
        }
        out
    }

    /// Attaches a telemetry observer. Observers are strictly passive:
    /// training results are bit-identical with and without one (asserted by
    /// the `observability` integration tests).
    pub fn attach_observer(&mut self, obs: Box<dyn TrainObserver>) {
        self.obs = Some(obs);
    }

    /// Detaches and returns the observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn TrainObserver>> {
        self.obs.take()
    }

    /// Whether an observer is attached.
    pub fn has_observer(&self) -> bool {
        self.obs.is_some()
    }

    /// Reports the start of a training run to the observer (no-op without
    /// one). Called by `experiment::run`; callers driving a [`Framework`]
    /// directly may call it themselves.
    pub fn observe_train_start(&mut self, framework: &str) {
        self.telemetry =
            Telemetry { started: Some(std::time::Instant::now()), ..Default::default() };
        let meta = TrainMeta {
            framework: framework.to_string(),
            n_domains: self.ds.n_domains(),
            epochs: self.cfg.epochs,
            seed: self.cfg.seed,
        };
        if let Some(obs) = self.obs.as_mut() {
            obs.on_train_start(&meta);
        }
    }

    /// Closes out an epoch: hands the accumulated loss/gradient telemetry
    /// to the observer and resets the accumulators. Frameworks call this
    /// once per outer epoch, passing the current shared parameters so the
    /// observer can request a gradient-conflict probe at that point.
    ///
    /// No-op (one branch) without an observer.
    pub fn end_epoch(&mut self, shared: Option<&[f32]>) {
        if self.obs.is_none() {
            return;
        }
        let epoch = self.telemetry.epoch;
        let wants_probe = self.obs.as_ref().is_some_and(|o| o.wants_conflict(epoch));
        let conflict = match (wants_probe, shared) {
            (true, Some(theta)) => Some(self.probe_conflict(theta)),
            _ => None,
        };
        let t = &mut self.telemetry;
        let event = EpochEvent {
            epoch,
            mean_loss: if t.n_batches == 0 { 0.0 } else { t.loss_sum / t.n_batches as f64 },
            domain_losses: t
                .domain_loss
                .iter()
                .enumerate()
                .filter(|(_, (_, n))| *n > 0)
                .map(|(d, (sum, n))| (d, sum / *n as f64))
                .collect(),
            grad_norm: if t.n_batches == 0 {
                None
            } else {
                Some((t.sq_grad_sum / t.n_batches as f64).sqrt())
            },
            conflict,
        };
        t.reset_epoch();
        t.epoch += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.on_epoch_end(&event);
        }
    }

    /// Reports the end of a training run (wall-clock since
    /// [`observe_train_start`](Self::observe_train_start)) to the observer.
    pub fn observe_train_end(&mut self) {
        let wall =
            self.telemetry.started.take().map(|t| t.elapsed().as_secs_f64()).unwrap_or_default();
        if let Some(obs) = self.obs.as_mut() {
            obs.on_train_end(wall);
        }
    }

    /// Measures pairwise gradient conflict at `theta` for the observer.
    ///
    /// Batches come from the dedicated probe RNG and gradients are taken in
    /// eval mode (dropout off draws nothing), so the probe leaves the
    /// training RNG stream untouched.
    fn probe_conflict(&mut self, theta: &[f32]) -> ConflictSummary {
        const PROBE_BATCHES: usize = 4;
        let n = self.ds.n_domains();
        let mut grads = Vec::with_capacity(n);
        for d in 0..n {
            let mut batches = batches_for_domain(
                self.ds,
                d,
                Split::Train,
                BatchPlan::train(self.cfg.batch_size),
                &mut self.probe_rng,
            );
            batches.truncate(PROBE_BATCHES);
            let mut acc = vec![0.0f32; theta.len()];
            let k = batches.len().max(1);
            for batch in &batches {
                let (_, g) = self.grad(theta, batch, false);
                mamdr_nn::vecmath::axpy(&mut acc, 1.0 / k as f32, &g);
            }
            grads.push(acc);
        }
        let report = crate::conflict::pairwise_conflict(&grads);
        ConflictSummary {
            rate: report.conflict_rate,
            mean_cosine: report.mean_cosine,
            mean_inner_product: report.mean_inner_product,
        }
    }
}

/// How a trained model materializes parameters per domain.
#[derive(Debug, Clone)]
pub enum DomainParams {
    /// Every domain is served by the shared parameters alone.
    SharedOnly,
    /// Per-domain *deltas*: Θ_d = θS + θ_d (paper Eq. 4 — MAMDR, DR,
    /// Alternate+Finetune expressed as a delta).
    Deltas(Vec<Vec<f32>>),
    /// Per-domain *full* parameter vectors (Separate training).
    Full(Vec<Vec<f32>>),
}

/// The artifact a framework produces: shared parameters plus (optionally)
/// per-domain specializations.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// Shared parameters θS as a flat vector.
    pub shared: Vec<f32>,
    /// Per-domain parameterization.
    pub domains: DomainParams,
}

impl TrainedModel {
    /// A model served purely from shared parameters.
    pub fn shared_only(shared: Vec<f32>) -> Self {
        TrainedModel { shared, domains: DomainParams::SharedOnly }
    }

    /// The effective flat parameters for `domain`.
    pub fn flat_for(&self, domain: usize) -> Vec<f32> {
        match &self.domains {
            DomainParams::SharedOnly => self.shared.clone(),
            DomainParams::Deltas(deltas) => {
                let mut flat = self.shared.clone();
                mamdr_nn::vecmath::axpy(&mut flat, 1.0, &deltas[domain]);
                flat
            }
            DomainParams::Full(full) => full[domain].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};
    use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};

    fn fixture() -> (MdrDataset, mamdr_models::BuiltModel) {
        let mut cfg = GeneratorConfig::base("t", 40, 25, 77);
        cfg.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 200, 0.4)];
        let ds = cfg.generate();
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 2, 1);
        (ds, built)
    }

    #[test]
    fn grad_is_deterministic_in_eval_mode() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let flat = env.init_flat();
        let batch = mamdr_data::make_batch(&ds, 0, &ds.domains[0].train[..16]);
        let (l1, g1) = env.grad(&flat, &batch, false);
        let (l2, g2) = env.grad(&flat, &batch, false);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn sample_train_batch_has_config_size() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let b = env.sample_train_batch(1);
        assert_eq!(b.len(), TrainConfig::quick().batch_size.min(ds.domains[1].train.len()));
        assert_eq!(b.domain, 1);
    }

    #[test]
    fn shuffled_domains_is_permutation() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let mut order = env.shuffled_domains();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn trained_model_composition() {
        let shared = vec![1.0, 2.0, 3.0];
        let tm = TrainedModel::shared_only(shared.clone());
        assert_eq!(tm.flat_for(0), shared);
        let tm = TrainedModel {
            shared: shared.clone(),
            domains: DomainParams::Deltas(vec![vec![0.5, 0.0, -1.0], vec![0.0; 3]]),
        };
        assert_eq!(tm.flat_for(0), vec![1.5, 2.0, 2.0]);
        assert_eq!(tm.flat_for(1), shared);
        let tm = TrainedModel {
            shared,
            domains: DomainParams::Full(vec![vec![9.0, 9.0, 9.0], vec![0.0; 3]]),
        };
        assert_eq!(tm.flat_for(0), vec![9.0; 3]);
    }

    #[test]
    fn grad_into_matches_grad() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let flat = env.init_flat();
        let batch = mamdr_data::make_batch(&ds, 0, &ds.domains[0].train[..16]);
        let (l1, g1) = env.grad(&flat, &batch, false);
        // Pre-poison the buffer: grad_into must fully overwrite it.
        let mut g2 = vec![7.5f32; env.n_params()];
        let l2 = env.grad_into(&flat, &batch, false, &mut g2);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn evaluate_is_bit_identical_across_thread_counts() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let tm = TrainedModel::shared_only(env.init_flat());
        let restore = mamdr_tensor::pool::configured_threads();
        mamdr_tensor::pool::set_threads(1);
        let serial = env.evaluate(&tm, Split::Test);
        mamdr_tensor::pool::set_threads(4);
        let parallel = env.evaluate(&tm, Split::Test);
        mamdr_tensor::pool::set_threads(restore);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn evaluate_returns_per_domain_auc() {
        let (ds, built) = fixture();
        let mut env =
            TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
        let tm = TrainedModel::shared_only(env.init_flat());
        let aucs = env.evaluate(&tm, Split::Test);
        assert_eq!(aucs.len(), 2);
        for a in aucs {
            assert!((0.0..=1.0).contains(&a));
        }
    }
}
