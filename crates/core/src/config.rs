//! Training configuration shared by every learning framework.

use mamdr_nn::OptimizerKind;

/// Hyper-parameters for one training run.
///
/// Defaults follow the paper's §V-C settings (Adam, inner lr 1e-3, outer lr
/// 0.1, DR sample count 5) with epoch counts sized to the scaled synthetic
/// benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Outer training epochs (one DN pass + one DR pass per epoch for
    /// MAMDR; one full pass over all domains for the baselines).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Inner-loop optimizer (per-batch updates inside every framework).
    pub inner: OptimizerKind,
    /// Outer-loop learning rate β of Domain Negotiation (Eq. 3); β = 1
    /// degrades DN to Alternate training, which `fig9` demonstrates.
    pub outer_lr: f32,
    /// Domain Regularization learning rate γ (Eq. 8).
    pub dr_lr: f32,
    /// Domain Regularization sample count k (Algorithm 2).
    pub dr_samples: usize,
    /// Cap on minibatch steps taken per domain inside a DR lookahead
    /// (bounds the cost of Algorithm 2 on data-rich domains).
    pub dr_lookahead_batches: usize,
    /// Finetuning epochs for Alternate+Finetune.
    pub finetune_epochs: usize,
    /// Inner adaptation steps for Reptile/MAML.
    pub meta_inner_steps: usize,
    /// Select the best epoch by validation AUC instead of returning the
    /// final epoch (MAMDR-family frameworks only; costs one validation
    /// evaluation per epoch).
    pub val_select: bool,
    /// Design-choice ablation switch: rebuild the DN inner optimizer every
    /// outer epoch instead of keeping its state (DESIGN.md §6.1; slower
    /// convergence, kept for the `ablation` bench).
    pub dn_fresh_inner_per_epoch: bool,
    /// Design-choice ablation switch: run DR lookaheads with a fresh
    /// instance of the configured inner optimizer instead of Algorithm 2's
    /// plain SGD (DESIGN.md §6.2; injects dense noise into θi).
    pub dr_use_inner_optimizer: bool,
    /// Base seed controlling shuffling, dropout and domain sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 128,
            inner: OptimizerKind::Adam { lr: 1e-3 },
            outer_lr: 0.1,
            dr_lr: 0.1,
            dr_samples: 5,
            dr_lookahead_batches: 8,
            finetune_epochs: 2,
            meta_inner_steps: 2,
            val_select: false,
            dn_fresh_inner_per_epoch: false,
            dr_use_inner_optimizer: false,
            seed: 17,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests: fewer epochs, smaller batches,
    /// and a larger learning rate suited to the tiny test datasets.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 64,
            inner: OptimizerKind::Adam { lr: 0.01 },
            dr_samples: 2,
            dr_lookahead_batches: 4,
            finetune_epochs: 1,
            ..Default::default()
        }
    }

    /// The configuration the benchmark binaries start from: the paper's
    /// optimizer settings with epoch counts sized to the scaled synthetic
    /// datasets (the originals are 10–200× larger, so the paper's one pass
    /// of Adam@1e-3 corresponds to several epochs at a higher rate here).
    pub fn bench() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            inner: OptimizerKind::Adam { lr: 5e-3 },
            ..Default::default()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the epoch count (builder style).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = TrainConfig::default();
        assert_eq!(c.dr_samples, 5);
        assert!((c.outer_lr - 0.1).abs() < 1e-9);
        match c.inner {
            OptimizerKind::Adam { lr } => assert!((lr - 1e-3).abs() < 1e-9),
            other => panic!("expected Adam, got {:?}", other),
        }
    }

    #[test]
    fn builders_replace_fields() {
        let c = TrainConfig::default().with_seed(9).with_epochs(3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.epochs, 3);
    }
}
