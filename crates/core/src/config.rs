//! Training configuration shared by every learning framework.

use mamdr_nn::OptimizerKind;

/// Hyper-parameters for one training run.
///
/// Defaults follow the paper's §V-C settings (Adam, inner lr 1e-3, outer lr
/// 0.1, DR sample count 5) with epoch counts sized to the scaled synthetic
/// benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Outer training epochs (one DN pass + one DR pass per epoch for
    /// MAMDR; one full pass over all domains for the baselines).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Inner-loop optimizer (per-batch updates inside every framework).
    pub inner: OptimizerKind,
    /// Outer-loop learning rate β of Domain Negotiation (Eq. 3); β = 1
    /// degrades DN to Alternate training, which `fig9` demonstrates.
    pub outer_lr: f32,
    /// Domain Regularization learning rate γ (Eq. 8).
    pub dr_lr: f32,
    /// Domain Regularization sample count k (Algorithm 2).
    pub dr_samples: usize,
    /// Cap on minibatch steps taken per domain inside a DR lookahead
    /// (bounds the cost of Algorithm 2 on data-rich domains).
    pub dr_lookahead_batches: usize,
    /// Finetuning epochs for Alternate+Finetune.
    pub finetune_epochs: usize,
    /// Inner adaptation steps for Reptile/MAML.
    pub meta_inner_steps: usize,
    /// Select the best epoch by validation AUC instead of returning the
    /// final epoch (MAMDR-family frameworks only; costs one validation
    /// evaluation per epoch).
    pub val_select: bool,
    /// Design-choice ablation switch: rebuild the DN inner optimizer every
    /// outer epoch instead of keeping its state (DESIGN.md §6.1; slower
    /// convergence, kept for the `ablation` bench).
    pub dn_fresh_inner_per_epoch: bool,
    /// Design-choice ablation switch: run DR lookaheads with a fresh
    /// instance of the configured inner optimizer instead of Algorithm 2's
    /// plain SGD (DESIGN.md §6.2; injects dense noise into θi).
    pub dr_use_inner_optimizer: bool,
    /// Base seed controlling shuffling, dropout and domain sampling.
    pub seed: u64,
    /// Kernel worker threads for this run's tensor math; `0` (the default)
    /// inherits the process-wide setting (`MAMDR_THREADS` env var /
    /// `mamdr_tensor::pool::set_threads`). Results are bit-identical at any
    /// value — the knob trades wall-clock only.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 128,
            inner: OptimizerKind::Adam { lr: 1e-3 },
            outer_lr: 0.1,
            dr_lr: 0.1,
            dr_samples: 5,
            dr_lookahead_batches: 8,
            finetune_epochs: 2,
            meta_inner_steps: 2,
            val_select: false,
            dn_fresh_inner_per_epoch: false,
            dr_use_inner_optimizer: false,
            seed: 17,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests: fewer epochs, smaller batches,
    /// and a larger learning rate suited to the tiny test datasets.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 64,
            inner: OptimizerKind::Adam { lr: 0.01 },
            dr_samples: 2,
            dr_lookahead_batches: 4,
            finetune_epochs: 1,
            ..Default::default()
        }
    }

    /// The configuration the benchmark binaries start from: the paper's
    /// optimizer settings with epoch counts sized to the scaled synthetic
    /// datasets (the originals are 10–200× larger, so the paper's one pass
    /// of Adam@1e-3 corresponds to several epochs at a higher rate here).
    pub fn bench() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            inner: OptimizerKind::Adam { lr: 5e-3 },
            ..Default::default()
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the epoch count (builder style).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Replaces the minibatch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Replaces the inner-loop optimizer (builder style).
    pub fn with_inner(mut self, inner: OptimizerKind) -> Self {
        self.inner = inner;
        self
    }

    /// Replaces the inner optimizer with Adam at the given rate
    /// (builder style) — the common case at bench call sites.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.inner = OptimizerKind::Adam { lr };
        self
    }

    /// Replaces the DN outer learning rate β (builder style).
    pub fn with_outer_lr(mut self, outer_lr: f32) -> Self {
        self.outer_lr = outer_lr;
        self
    }

    /// Replaces the DR learning rate γ (builder style).
    pub fn with_dr_lr(mut self, dr_lr: f32) -> Self {
        self.dr_lr = dr_lr;
        self
    }

    /// Replaces the DR helper-domain sample count k (builder style).
    pub fn with_dr_samples(mut self, dr_samples: usize) -> Self {
        self.dr_samples = dr_samples;
        self
    }

    /// Replaces the DR lookahead batch cap (builder style).
    pub fn with_dr_lookahead_batches(mut self, cap: usize) -> Self {
        self.dr_lookahead_batches = cap;
        self
    }

    /// Replaces the Alternate+Finetune epoch count (builder style).
    pub fn with_finetune_epochs(mut self, finetune_epochs: usize) -> Self {
        self.finetune_epochs = finetune_epochs;
        self
    }

    /// Replaces the Reptile/MAML inner-step count (builder style).
    pub fn with_meta_inner_steps(mut self, steps: usize) -> Self {
        self.meta_inner_steps = steps;
        self
    }

    /// Enables or disables validation-based epoch selection (builder style).
    pub fn with_val_select(mut self, val_select: bool) -> Self {
        self.val_select = val_select;
        self
    }

    /// Sets the DN fresh-inner-optimizer ablation switch (builder style).
    pub fn with_dn_fresh_inner_per_epoch(mut self, fresh: bool) -> Self {
        self.dn_fresh_inner_per_epoch = fresh;
        self
    }

    /// Sets the DR inner-optimizer ablation switch (builder style).
    pub fn with_dr_use_inner_optimizer(mut self, use_inner: bool) -> Self {
        self.dr_use_inner_optimizer = use_inner;
        self
    }

    /// Replaces the kernel thread count for this run (builder style);
    /// `0` inherits the process-wide setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = TrainConfig::default();
        assert_eq!(c.dr_samples, 5);
        assert!((c.outer_lr - 0.1).abs() < 1e-9);
        match c.inner {
            OptimizerKind::Adam { lr } => assert!((lr - 1e-3).abs() < 1e-9),
            other => panic!("expected Adam, got {:?}", other),
        }
    }

    #[test]
    fn builders_replace_fields() {
        let c = TrainConfig::default().with_seed(9).with_epochs(3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.epochs, 3);
    }

    #[test]
    fn builders_cover_every_field() {
        let c = TrainConfig::default()
            .with_seed(1)
            .with_epochs(2)
            .with_batch_size(32)
            .with_lr(0.02)
            .with_outer_lr(0.5)
            .with_dr_lr(0.25)
            .with_dr_samples(3)
            .with_dr_lookahead_batches(6)
            .with_finetune_epochs(4)
            .with_meta_inner_steps(5)
            .with_val_select(true)
            .with_dn_fresh_inner_per_epoch(true)
            .with_dr_use_inner_optimizer(true)
            .with_threads(2);
        assert_eq!(c.batch_size, 32);
        match c.inner {
            OptimizerKind::Adam { lr } => assert!((lr - 0.02).abs() < 1e-9),
            other => panic!("expected Adam, got {:?}", other),
        }
        assert!((c.outer_lr - 0.5).abs() < 1e-9);
        assert!((c.dr_lr - 0.25).abs() < 1e-9);
        assert_eq!(c.dr_samples, 3);
        assert_eq!(c.dr_lookahead_batches, 6);
        assert_eq!(c.finetune_epochs, 4);
        assert_eq!(c.meta_inner_steps, 5);
        assert!(c.val_select);
        assert!(c.dn_fresh_inner_per_epoch);
        assert!(c.dr_use_inner_optimizer);
        assert_eq!(c.threads, 2);
        let sgd = TrainConfig::default().with_inner(OptimizerKind::Sgd { lr: 0.1, momentum: 0.9 });
        assert!(matches!(sgd.inner, OptimizerKind::Sgd { .. }));
    }

    #[test]
    fn threads_defaults_to_inherit() {
        assert_eq!(TrainConfig::default().threads, 0);
        assert_eq!(TrainConfig::quick().threads, 0);
        assert_eq!(TrainConfig::bench().threads, 0);
    }
}
