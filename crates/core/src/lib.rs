//! # mamdr-core
//!
//! The paper's primary contribution: **MAMDR**, a model-agnostic learning
//! framework for multi-domain recommendation, together with every baseline
//! framework it is compared against.
//!
//! * [`frameworks::mamdr::DomainNegotiation`] — Algorithm 1: a cross-domain
//!   Reptile that mitigates *domain conflict* by implicitly maximizing
//!   gradient inner products between domains.
//! * [`frameworks::mamdr::Mamdr`] — Algorithm 3: DN for the shared
//!   parameters θS plus *Domain Regularization* (Algorithm 2) for the
//!   per-domain specific parameters θi, composed as Θ = θS + θi (Eq. 4).
//! * Baselines (paper §V-B): Alternate, Alternate+Finetune, Separate,
//!   Weighted Loss, PCGrad, first-order MAML, Reptile, MLDG.
//!
//! All frameworks implement [`frameworks::Framework`] and observe models
//! *only* through flat parameter vectors and `(loss, gradient)` pairs —
//! which is what makes them applicable to every architecture in
//! `mamdr-models` (the paper's Table X claim).
//!
//! Supporting machinery: AUC / average-RANK / logloss [`metrics`], the
//! training environment and trained-model evaluation [`env`], experiment
//! orchestration [`experiment`], and the gradient-conflict probe
//! [`conflict`] behind Figure 3.

pub mod config;
pub mod conflict;
pub mod env;
pub mod experiment;
pub mod frameworks;
pub mod metrics;
pub mod ranking;
#[cfg(test)]
pub mod test_support;

pub use config::TrainConfig;
pub use env::{TrainEnv, TrainedModel};
pub use frameworks::{Framework, FrameworkKind};
