//! Experiment orchestration: train a (model, framework) pair on a dataset
//! and collect per-domain AUCs — the unit of work every table binary in
//! `mamdr-bench` is built from.

use crate::config::TrainConfig;
use crate::env::TrainEnv;
use crate::frameworks::FrameworkKind;
use mamdr_data::{MdrDataset, Split};
use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Model architecture name.
    pub model: String,
    /// Learning-framework name.
    pub framework: String,
    /// Per-domain test AUC.
    pub domain_auc: Vec<f64>,
    /// Mean test AUC over domains.
    pub mean_auc: f64,
}

/// Trains `model_kind` under `framework_kind` on `ds` and evaluates
/// per-domain test AUC.
///
/// Deterministic given `cfg.seed` (model init, shuffling and dropout all
/// derive from it).
pub fn run(
    ds: &MdrDataset,
    model_kind: ModelKind,
    model_cfg: &ModelConfig,
    framework_kind: FrameworkKind,
    cfg: TrainConfig,
) -> RunResult {
    let fc = FeatureConfig::from_dataset(ds);
    let built = build_model(model_kind, &fc, model_cfg, ds.n_domains(), cfg.seed);
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    let framework = framework_kind.build();
    let trained = framework.train(&mut env);
    let domain_auc = env.evaluate(&trained, Split::Test);
    let mean_auc = crate::metrics::mean(&domain_auc);
    RunResult {
        model: model_kind.name().to_string(),
        framework: framework_kind.name().to_string(),
        domain_auc,
        mean_auc,
    }
}

/// Runs several (model, framework) combinations in parallel threads.
///
/// The work items are independent; each gets its own model instance and
/// environment. Order of results matches order of requests.
pub fn run_many(
    ds: &MdrDataset,
    jobs: &[(ModelKind, FrameworkKind)],
    model_cfg: &ModelConfig,
    cfg: TrainConfig,
    max_threads: usize,
) -> Vec<RunResult> {
    assert!(max_threads >= 1);
    let mut results: Vec<Option<RunResult>> = vec![None; jobs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..max_threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (mk, fk) = jobs[i];
                let r = run(ds, mk, model_cfg, fk, cfg);
                results_mx.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("job completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};

    fn dataset() -> MdrDataset {
        let mut cfg = GeneratorConfig::base("t", 100, 50, 13);
        cfg.conflict = 0.3;
        cfg.domains = vec![DomainSpec::new("a", 800, 0.3), DomainSpec::new("b", 600, 0.4)];
        cfg.generate()
    }

    #[test]
    fn run_produces_valid_aucs() {
        let ds = dataset();
        let r = run(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Alternate,
            TrainConfig::quick(),
        );
        assert_eq!(r.domain_auc.len(), 2);
        assert!(r.domain_auc.iter().all(|a| (0.0..=1.0).contains(a)));
        assert_eq!(r.model, "MLP");
        assert_eq!(r.framework, "Alternate");
    }

    #[test]
    fn run_is_deterministic() {
        let ds = dataset();
        let a = run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Mamdr, TrainConfig::quick());
        let b = run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Mamdr, TrainConfig::quick());
        assert_eq!(a.domain_auc, b.domain_auc);
    }

    #[test]
    fn run_many_matches_run() {
        let ds = dataset();
        let jobs = [
            (ModelKind::Mlp, FrameworkKind::Alternate),
            (ModelKind::Mlp, FrameworkKind::Dn),
        ];
        let parallel = run_many(&ds, &jobs, &ModelConfig::tiny(), TrainConfig::quick(), 2);
        let serial: Vec<_> = jobs
            .iter()
            .map(|&(mk, fk)| run(&ds, mk, &ModelConfig::tiny(), fk, TrainConfig::quick()))
            .collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.domain_auc, s.domain_auc, "{}", p.framework);
        }
    }

    #[test]
    fn trained_beats_untrained() {
        // Any reasonable framework should beat AUC 0.5 on this learnable
        // synthetic dataset.
        let ds = dataset();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 10;
        let r = run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Alternate, cfg);
        assert!(r.mean_auc > 0.6, "mean AUC {} not above chance", r.mean_auc);
    }
}

/// Runs the same experiment under several seeds and averages per-domain
/// AUCs — the cheap way to get figure-quality curves out of the scaled
/// benchmarks, whose single-seed variance is around ±0.01 AUC.
pub fn run_averaged(
    ds: &MdrDataset,
    model_kind: ModelKind,
    model_cfg: &ModelConfig,
    framework_kind: FrameworkKind,
    cfg: TrainConfig,
    seeds: &[u64],
) -> RunResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut acc: Option<Vec<f64>> = None;
    for &seed in seeds {
        let mut c = cfg;
        c.seed = seed;
        let r = run(ds, model_kind, model_cfg, framework_kind, c);
        match &mut acc {
            Some(a) => {
                for (x, y) in a.iter_mut().zip(&r.domain_auc) {
                    *x += y;
                }
            }
            None => acc = Some(r.domain_auc),
        }
    }
    let mut domain_auc = acc.expect("at least one run");
    for x in &mut domain_auc {
        *x /= seeds.len() as f64;
    }
    let mean_auc = crate::metrics::mean(&domain_auc);
    RunResult {
        model: model_kind.name().to_string(),
        framework: framework_kind.name().to_string(),
        domain_auc,
        mean_auc,
    }
}

#[cfg(test)]
mod averaged_tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};

    #[test]
    fn averaged_run_is_mean_of_singles() {
        let mut gen = GeneratorConfig::base("avg", 60, 40, 5);
        gen.domains = vec![DomainSpec::new("a", 300, 0.3)];
        let ds = gen.generate();
        let cfg = TrainConfig::quick();
        let seeds = [3u64, 9];
        let avg = run_averaged(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Alternate, cfg, &seeds);
        let mut expect = 0.0;
        for &s in &seeds {
            let mut c = cfg;
            c.seed = s;
            expect += run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Alternate, c).mean_auc;
        }
        expect /= seeds.len() as f64;
        assert!((avg.mean_auc - expect).abs() < 1e-12);
    }
}
