//! Experiment orchestration: train a (model, framework) pair on a dataset
//! and collect per-domain AUCs — the unit of work every table binary in
//! `mamdr-bench` is built from.

use crate::config::TrainConfig;
use crate::env::TrainEnv;
use crate::frameworks::FrameworkKind;
use mamdr_data::{MdrDataset, Split};
use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};
use mamdr_obs::TrainObserver;

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Model architecture name.
    pub model: String,
    /// Learning-framework name.
    pub framework: String,
    /// Per-domain test AUC.
    pub domain_auc: Vec<f64>,
    /// Mean test AUC over domains.
    pub mean_auc: f64,
    /// Wall-clock seconds spent in `Framework::train`.
    pub wall_secs: f64,
}

/// A failed [`run_many`] job slot: which job died and the panic payload.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Model architecture name of the failed job.
    pub model: String,
    /// Learning-framework name of the failed job.
    pub framework: String,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job ({}, {}) panicked: {}", self.model, self.framework, self.message)
    }
}

impl std::error::Error for JobError {}

/// Trains `model_kind` under `framework_kind` on `ds` and evaluates
/// per-domain test AUC.
///
/// Deterministic given `cfg.seed` (model init, shuffling and dropout all
/// derive from it).
pub fn run(
    ds: &MdrDataset,
    model_kind: ModelKind,
    model_cfg: &ModelConfig,
    framework_kind: FrameworkKind,
    cfg: TrainConfig,
) -> RunResult {
    run_observed(ds, model_kind, model_cfg, framework_kind, cfg, None)
}

/// [`run`] with an optional telemetry observer attached to the training
/// environment. The observer receives train-start/epoch/train-end events;
/// it cannot change the result (same seed → bit-identical AUC with and
/// without one, asserted by the `observability` integration tests).
pub fn run_observed(
    ds: &MdrDataset,
    model_kind: ModelKind,
    model_cfg: &ModelConfig,
    framework_kind: FrameworkKind,
    cfg: TrainConfig,
    observer: Option<Box<dyn TrainObserver>>,
) -> RunResult {
    if cfg.threads > 0 {
        // Process-wide knob: results are bit-identical at any value (the
        // kernel layer's determinism contract), so applying it here can
        // never change what a sibling run computes — only how fast.
        mamdr_tensor::pool::set_threads(cfg.threads);
    }
    let fc = FeatureConfig::from_dataset(ds);
    let built = build_model(model_kind, &fc, model_cfg, ds.n_domains(), cfg.seed);
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    if let Some(obs) = observer {
        env.attach_observer(obs);
    }
    let framework = framework_kind.build();
    env.observe_train_start(framework.name());
    let t0 = std::time::Instant::now();
    let trained = framework.train(&mut env);
    let wall_secs = t0.elapsed().as_secs_f64();
    env.observe_train_end();
    let domain_auc = env.evaluate(&trained, Split::Test);
    let mean_auc = crate::metrics::mean(&domain_auc);
    RunResult {
        model: model_kind.name().to_string(),
        framework: framework_kind.name().to_string(),
        domain_auc,
        mean_auc,
        wall_secs,
    }
}

/// Runs several (model, framework) combinations in parallel threads.
///
/// The work items are independent; each gets its own model instance and
/// environment. Order of results matches order of requests. A panic inside
/// one job is caught and surfaced as a [`JobError`] on that job's slot —
/// sibling jobs run to completion regardless.
pub fn run_many(
    ds: &MdrDataset,
    jobs: &[(ModelKind, FrameworkKind)],
    model_cfg: &ModelConfig,
    cfg: TrainConfig,
    max_threads: usize,
) -> Vec<Result<RunResult, JobError>> {
    run_many_observed(ds, jobs, model_cfg, cfg, max_threads, &|_| None)
}

/// [`run_many`] with a per-job observer factory: `make_observer(i)` runs on
/// the worker thread immediately before job `i` and its observer lives for
/// exactly that run. Factories typically hand out [`TelemetryObserver`]s
/// sharing one registry/log pair (both are thread-safe).
///
/// [`TelemetryObserver`]: mamdr_obs::TelemetryObserver
pub fn run_many_observed(
    ds: &MdrDataset,
    jobs: &[(ModelKind, FrameworkKind)],
    model_cfg: &ModelConfig,
    cfg: TrainConfig,
    max_threads: usize,
    make_observer: &(dyn Fn(usize) -> Option<Box<dyn TrainObserver>> + Sync),
) -> Vec<Result<RunResult, JobError>> {
    run_slots(
        jobs.len(),
        max_threads,
        |i| {
            let (mk, fk) = jobs[i];
            (mk.name().to_string(), fk.name().to_string())
        },
        |i| {
            let (mk, fk) = jobs[i];
            run_observed(ds, mk, model_cfg, fk, cfg, make_observer(i))
        },
    )
}

/// The scheduling/hardening core of [`run_many`]: executes `job` for each
/// slot index on up to `max_threads` worker threads, isolating panics to
/// the slot that raised them. `label` names a slot for error reporting and
/// must not panic.
fn run_slots<L, F>(
    n_jobs: usize,
    max_threads: usize,
    label: L,
    job: F,
) -> Vec<Result<RunResult, JobError>>
where
    L: Fn(usize) -> (String, String) + Sync,
    F: Fn(usize) -> RunResult + Sync,
{
    assert!(max_threads >= 1);
    let mut results: Vec<Option<Result<RunResult, JobError>>> = (0..n_jobs).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..max_threads.min(n_jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
                    .map_err(|payload| {
                        let (model, framework) = label(i);
                        JobError { model, framework, message: panic_message(payload.as_ref()) }
                    });
                // A sibling panicking between lock() and the store would
                // poison a plain unwrap; recover the guard instead so one
                // bad job can never take the whole batch down.
                let mut guard = results_mx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                guard[i] = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                let (model, framework) = label(i);
                Err(JobError {
                    model,
                    framework,
                    message: "worker thread died before storing a result".to_string(),
                })
            })
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};

    fn dataset() -> MdrDataset {
        let mut cfg = GeneratorConfig::base("t", 100, 50, 13);
        cfg.conflict = 0.3;
        // 2000/1500 samples: at the original 800/600 the embeddings of 100
        // users x 50 items see too few updates to clear AUC 0.6 reliably.
        cfg.domains = vec![DomainSpec::new("a", 2000, 0.3), DomainSpec::new("b", 1500, 0.4)];
        cfg.generate()
    }

    #[test]
    fn run_produces_valid_aucs() {
        let ds = dataset();
        let r = run(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Alternate,
            TrainConfig::quick(),
        );
        assert_eq!(r.domain_auc.len(), 2);
        assert!(r.domain_auc.iter().all(|a| (0.0..=1.0).contains(a)));
        assert_eq!(r.model, "MLP");
        assert_eq!(r.framework, "Alternate");
    }

    #[test]
    fn run_is_deterministic() {
        let ds = dataset();
        let a = run(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Mamdr,
            TrainConfig::quick(),
        );
        let b = run(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Mamdr,
            TrainConfig::quick(),
        );
        assert_eq!(a.domain_auc, b.domain_auc);
    }

    #[test]
    fn run_many_matches_run() {
        let ds = dataset();
        let jobs =
            [(ModelKind::Mlp, FrameworkKind::Alternate), (ModelKind::Mlp, FrameworkKind::Dn)];
        let parallel = run_many(&ds, &jobs, &ModelConfig::tiny(), TrainConfig::quick(), 2);
        let serial: Vec<_> = jobs
            .iter()
            .map(|&(mk, fk)| run(&ds, mk, &ModelConfig::tiny(), fk, TrainConfig::quick()))
            .collect();
        for (p, s) in parallel.iter().zip(&serial) {
            let p = p.as_ref().expect("job succeeded");
            assert_eq!(p.domain_auc, s.domain_auc, "{}", p.framework);
        }
    }

    #[test]
    fn a_panicking_job_does_not_take_siblings_down() {
        let ok = RunResult {
            model: "M".into(),
            framework: "F".into(),
            domain_auc: vec![0.5],
            mean_auc: 0.5,
            wall_secs: 0.0,
        };
        let results = run_slots(
            4,
            2,
            |i| (format!("model{i}"), format!("fw{i}")),
            |i| {
                if i == 1 {
                    panic!("job {i} exploded");
                }
                ok.clone()
            },
        );
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            if i == 1 {
                let e = r.as_ref().expect_err("slot 1 should fail");
                assert_eq!(e.model, "model1");
                assert_eq!(e.framework, "fw1");
                assert!(e.message.contains("exploded"), "{}", e.message);
                assert!(e.to_string().contains("model1"), "{e}");
            } else {
                assert_eq!(r.as_ref().expect("sibling survived").mean_auc, 0.5);
            }
        }
    }

    #[test]
    fn run_records_wall_clock() {
        let ds = dataset();
        let r = run(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Alternate,
            TrainConfig::quick(),
        );
        assert!(r.wall_secs > 0.0, "wall clock not recorded");
    }

    #[test]
    fn trained_beats_untrained() {
        // Any reasonable framework should beat AUC 0.5 on this learnable
        // synthetic dataset.
        let ds = dataset();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 20;
        let r = run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Alternate, cfg);
        assert!(r.mean_auc > 0.6, "mean AUC {} not above chance", r.mean_auc);
    }
}

/// Runs the same experiment under several seeds and averages per-domain
/// AUCs — the cheap way to get figure-quality curves out of the scaled
/// benchmarks, whose single-seed variance is around ±0.01 AUC.
pub fn run_averaged(
    ds: &MdrDataset,
    model_kind: ModelKind,
    model_cfg: &ModelConfig,
    framework_kind: FrameworkKind,
    cfg: TrainConfig,
    seeds: &[u64],
) -> RunResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut acc: Option<Vec<f64>> = None;
    let mut wall_secs = 0.0;
    for &seed in seeds {
        let mut c = cfg;
        c.seed = seed;
        let r = run(ds, model_kind, model_cfg, framework_kind, c);
        wall_secs += r.wall_secs;
        match &mut acc {
            Some(a) => {
                for (x, y) in a.iter_mut().zip(&r.domain_auc) {
                    *x += y;
                }
            }
            None => acc = Some(r.domain_auc),
        }
    }
    let mut domain_auc = acc.expect("at least one run");
    for x in &mut domain_auc {
        *x /= seeds.len() as f64;
    }
    let mean_auc = crate::metrics::mean(&domain_auc);
    RunResult {
        model: model_kind.name().to_string(),
        framework: framework_kind.name().to_string(),
        domain_auc,
        mean_auc,
        wall_secs,
    }
}

#[cfg(test)]
mod averaged_tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};

    #[test]
    fn averaged_run_is_mean_of_singles() {
        let mut gen = GeneratorConfig::base("avg", 60, 40, 5);
        gen.domains = vec![DomainSpec::new("a", 300, 0.3)];
        let ds = gen.generate();
        let cfg = TrainConfig::quick();
        let seeds = [3u64, 9];
        let avg = run_averaged(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            FrameworkKind::Alternate,
            cfg,
            &seeds,
        );
        let mut expect = 0.0;
        for &s in &seeds {
            let mut c = cfg;
            c.seed = s;
            expect += run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Alternate, c)
                .mean_auc;
        }
        expect /= seeds.len() as f64;
        assert!((avg.mean_auc - expect).abs() < 1e-12);
    }
}
