//! Evaluation metrics: AUC, logloss and the paper's average-RANK.

/// Area under the ROC curve via the rank statistic (Mann–Whitney U), with
/// average ranks for tied scores.
///
/// Returns 0.5 when either class is absent (an undefined AUC is scored as
/// chance, which keeps per-domain averages well-defined for tiny domains).
///
/// NaN scores are ordered last via IEEE total ordering rather than
/// panicking: a diverged model yields a garbage-but-finite AUC, so the
/// fault-injection paths can evaluate a poisoned store without crashing.
pub fn auc(labels: &[f32], scores: &[f32]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "labels/scores length mismatch");
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort indices by score ascending; assign average ranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]].total_cmp(&scores[idx[i]]).is_eq() {
            j += 1;
        }
        // ranks i+1 ..= j+1 share the average rank
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean binary cross-entropy of probabilities against {0,1} labels,
/// clamped away from 0/1 for numerical safety.
pub fn logloss(labels: &[f32], probs: &[f32]) -> f64 {
    assert_eq!(labels.len(), probs.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&y, &p) in labels.iter().zip(probs) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        total -= if y > 0.5 { p.ln() } else { (1.0 - p).ln() };
    }
    total / labels.len() as f64
}

/// The paper's RANK metric: for a `methods × domains` AUC matrix, ranks the
/// methods within each domain (1 = best, ties share the average rank) and
/// returns each method's rank averaged over domains.
pub fn average_rank(auc_matrix: &[Vec<f64>]) -> Vec<f64> {
    if auc_matrix.is_empty() {
        return Vec::new();
    }
    let n_methods = auc_matrix.len();
    let n_domains = auc_matrix[0].len();
    assert!(auc_matrix.iter().all(|row| row.len() == n_domains), "ragged AUC matrix");
    let mut rank_sums = vec![0.0f64; n_methods];
    // `d` selects a column of the row-major matrix — no slice to iterate.
    #[allow(clippy::needless_range_loop)]
    for d in 0..n_domains {
        // Sort methods by AUC descending within this domain.
        let mut order: Vec<usize> = (0..n_methods).collect();
        order.sort_by(|&a, &b| auc_matrix[b][d].total_cmp(&auc_matrix[a][d]));
        let mut i = 0usize;
        while i < n_methods {
            let mut j = i;
            while j + 1 < n_methods && auc_matrix[order[j + 1]][d] == auc_matrix[order[i]][d] {
                j += 1;
            }
            let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
            for &m in &order[i..=j] {
                rank_sums[m] += avg_rank;
            }
            i = j + 1;
        }
    }
    rank_sums.iter().map(|s| s / n_domains as f64).collect()
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&labels, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(auc(&labels, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores identical -> ties -> AUC 0.5.
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0];
        assert!((auc(&labels, &[0.5; 5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_single_class() {
        assert_eq!(auc(&[1.0, 1.0], &[0.3, 0.6]), 0.5);
        assert_eq!(auc(&[0.0, 0.0], &[0.3, 0.6]), 0.5);
    }

    #[test]
    fn auc_matches_pair_counting() {
        // Brute-force comparison on a small example with ties.
        let labels = [1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let scores = [0.9, 0.9, 0.7, 0.3, 0.7, 0.2];
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    total += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        assert!((auc(&labels, &scores) - wins / total).abs() < 1e-12);
    }

    #[test]
    fn auc_survives_nan_scores() {
        // A diverged model must produce a defined value, not a panic.
        let labels = [1.0, 0.0, 1.0, 0.0];
        let got = auc(&labels, &[f32::NAN, 0.2, f32::NAN, 0.4]);
        assert!(got.is_finite());
        // All scores NaN -> every pair tied under total order -> chance.
        assert!((auc(&labels, &[f32::NAN; 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn logloss_basics() {
        assert!(logloss(&[1.0], &[0.99]) < 0.02);
        assert!(logloss(&[1.0], &[0.01]) > 4.0);
        // clamping keeps it finite at the extremes
        assert!(logloss(&[1.0, 0.0], &[0.0, 1.0]).is_finite());
    }

    #[test]
    fn average_rank_orders_methods() {
        // Method 0 best everywhere, method 2 worst everywhere.
        let aucs = vec![vec![0.9, 0.8, 0.95], vec![0.7, 0.7, 0.8], vec![0.5, 0.6, 0.6]];
        let ranks = average_rank(&aucs);
        assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn average_rank_splits_ties() {
        let aucs = vec![vec![0.8], vec![0.8], vec![0.5]];
        let ranks = average_rank(&aucs);
        assert_eq!(ranks, vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn mean_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
