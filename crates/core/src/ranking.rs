//! Ranking metrics beyond AUC: per-user GAUC, NDCG@k and HitRate@k.
//!
//! The paper evaluates CTR prediction with AUC only, but the deployed
//! system serves ranked lists; these are the metrics a production MDR
//! platform also tracks, provided so downstream users can evaluate the
//! trained models the way they would in serving.

use std::collections::HashMap;

/// One scored example attributed to a user.
#[derive(Debug, Clone, Copy)]
pub struct UserScore {
    /// User id the example belongs to.
    pub user: u32,
    /// Binary relevance label.
    pub label: f32,
    /// Model score.
    pub score: f32,
}

/// Group AUC: per-user AUC weighted by the user's impression count, with
/// users lacking both classes skipped (the standard industrial definition).
///
/// Returns 0.5 when no user has both classes.
pub fn gauc(examples: &[UserScore]) -> f64 {
    let mut by_user: HashMap<u32, (Vec<f32>, Vec<f32>)> = HashMap::new();
    for e in examples {
        let entry = by_user.entry(e.user).or_default();
        entry.0.push(e.label);
        entry.1.push(e.score);
    }
    let mut weighted = 0.0f64;
    let mut weight = 0.0f64;
    for (labels, scores) in by_user.values() {
        let pos = labels.iter().filter(|&&y| y > 0.5).count();
        if pos == 0 || pos == labels.len() {
            continue;
        }
        let w = labels.len() as f64;
        weighted += w * crate::metrics::auc(labels, scores);
        weight += w;
    }
    if weight == 0.0 {
        0.5
    } else {
        weighted / weight
    }
}

/// Indices of the top-k scores, descending (ties broken by index).
fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Normalized discounted cumulative gain at `k` for one ranked list.
///
/// Binary relevance; returns 0 when the list holds no positives.
pub fn ndcg_at_k(labels: &[f32], scores: &[f32], k: usize) -> f64 {
    assert_eq!(labels.len(), scores.len());
    if labels.is_empty() || k == 0 {
        return 0.0;
    }
    let dcg: f64 = top_k_indices(scores, k)
        .iter()
        .enumerate()
        .map(|(rank, &i)| labels[i] as f64 / ((rank + 2) as f64).log2())
        .sum();
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    if n_pos == 0 {
        return 0.0;
    }
    let ideal: f64 = (0..n_pos.min(k)).map(|rank| 1.0 / ((rank + 2) as f64).log2()).sum();
    dcg / ideal
}

/// HitRate@k: 1 if any positive appears in the top-k, else 0.
pub fn hit_rate_at_k(labels: &[f32], scores: &[f32], k: usize) -> f64 {
    assert_eq!(labels.len(), scores.len());
    let hit = top_k_indices(scores, k).iter().any(|&i| labels[i] > 0.5);
    f64::from(u8::from(hit))
}

/// Mean NDCG@k over per-user lists (users with no positives skipped).
pub fn mean_ndcg_at_k(examples: &[UserScore], k: usize) -> f64 {
    let mut by_user: HashMap<u32, (Vec<f32>, Vec<f32>)> = HashMap::new();
    for e in examples {
        let entry = by_user.entry(e.user).or_default();
        entry.0.push(e.label);
        entry.1.push(e.score);
    }
    let mut total = 0.0f64;
    let mut n = 0usize;
    for (labels, scores) in by_user.values() {
        if !labels.iter().any(|&y| y > 0.5) {
            continue;
        }
        total += ndcg_at_k(labels, scores, k);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(user: u32, label: f32, score: f32) -> UserScore {
        UserScore { user, label, score }
    }

    #[test]
    fn gauc_weights_users_by_impressions() {
        // User 1: perfect ranking over 4 impressions. User 2: inverted over 2.
        let examples = vec![
            ex(1, 1.0, 0.9),
            ex(1, 1.0, 0.8),
            ex(1, 0.0, 0.2),
            ex(1, 0.0, 0.1),
            ex(2, 1.0, 0.1),
            ex(2, 0.0, 0.9),
        ];
        // (4 * 1.0 + 2 * 0.0) / 6
        assert!((gauc(&examples) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn gauc_skips_single_class_users() {
        let examples = vec![ex(1, 1.0, 0.3), ex(1, 1.0, 0.5), ex(2, 1.0, 0.9), ex(2, 0.0, 0.1)];
        assert_eq!(gauc(&examples), 1.0);
        // no user with both classes -> 0.5
        assert_eq!(gauc(&[ex(1, 1.0, 0.2)]), 0.5);
    }

    #[test]
    fn ndcg_perfect_and_worst() {
        let labels = [1.0, 0.0, 0.0, 1.0];
        let perfect = [0.9, 0.2, 0.1, 0.8];
        assert!((ndcg_at_k(&labels, &perfect, 4) - 1.0).abs() < 1e-12);
        let worst = [0.1, 0.9, 0.8, 0.2];
        assert!(ndcg_at_k(&labels, &worst, 4) < 1.0);
        assert!(ndcg_at_k(&labels, &worst, 4) > 0.0);
        // no positives at all
        assert_eq!(ndcg_at_k(&[0.0, 0.0], &[0.5, 0.4], 2), 0.0);
    }

    #[test]
    fn ndcg_is_position_sensitive() {
        let labels = [1.0, 0.0, 0.0];
        let first = ndcg_at_k(&labels, &[0.9, 0.5, 0.1], 3);
        let second = ndcg_at_k(&labels, &[0.5, 0.9, 0.1], 3);
        let third = ndcg_at_k(&labels, &[0.3, 0.9, 0.5], 3);
        assert!(first > second && second > third);
    }

    #[test]
    fn hit_rate_at_k_basics() {
        let labels = [0.0, 0.0, 1.0];
        let scores = [0.9, 0.8, 0.7];
        assert_eq!(hit_rate_at_k(&labels, &scores, 1), 0.0);
        assert_eq!(hit_rate_at_k(&labels, &scores, 3), 1.0);
    }

    #[test]
    fn mean_ndcg_averages_over_users() {
        let examples = vec![
            ex(1, 1.0, 0.9),
            ex(1, 0.0, 0.1), // perfect: ndcg 1
            ex(2, 0.0, 0.9),
            ex(2, 1.0, 0.1), // positive last of 2
            ex(3, 0.0, 0.5), // skipped: no positive
        ];
        let got = mean_ndcg_at_k(&examples, 2);
        let user2 = (1.0 / 3.0f64.log2()) / 1.0;
        assert!((got - (1.0 + user2) / 2.0).abs() < 1e-12);
    }
}
