//! Multi-task learning baselines: uncertainty-weighted loss and PCGrad
//! gradient surgery (paper §V-B "Multi-Task Learning Frameworks").

use crate::env::{TrainEnv, TrainedModel};
use crate::frameworks::Framework;
use mamdr_nn::vecmath;

/// Uncertainty-weighted loss (Kendall et al.): the total objective is
/// `Σ_d exp(−s_d)·L_d + s_d` with per-domain log-variances `s_d` learned
/// jointly. Parameter gradients are scaled by `exp(−s_d)`; `s_d` follows
/// its own gradient `1 − exp(−s_d)·L_d`.
pub struct WeightedLoss;

/// Learning rate for the loss weights themselves.
const WEIGHT_LR: f32 = 0.01;

impl Framework for WeightedLoss {
    fn name(&self) -> &'static str {
        "Weighted Loss"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut opt = env.cfg.inner.build(theta.len());
        let mut log_vars = vec![0.0f32; env.n_domains()];
        for _ in 0..env.cfg.epochs {
            for d in env.shuffled_domains() {
                for batch in env.train_batches(d) {
                    let (loss, mut grad) = env.grad(&theta, &batch, true);
                    let w = (-log_vars[d]).exp();
                    vecmath::scale(&mut grad, w);
                    opt.step(&mut theta, &grad);
                    // ds_d/dt = 1 − exp(−s_d)·L_d, descended with WEIGHT_LR.
                    log_vars[d] -= WEIGHT_LR * (1.0 - w * loss);
                }
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// PCGrad (Yu et al.): per round, one gradient per domain is computed at
/// the *same* parameter point; each gradient is projected onto the normal
/// plane of every other (original) gradient it conflicts with, and the
/// projected gradients are summed into one update.
///
/// Note the O(n²) pairwise projections per round — the scalability problem
/// the paper contrasts with DN's O(n), measured by the
/// `framework_scaling` bench.
pub struct PcGrad;

impl Framework for PcGrad {
    fn name(&self) -> &'static str {
        "PCGrad"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut opt = env.cfg.inner.build(theta.len());
        let n_domains = env.n_domains();
        let rounds = rounds_per_epoch(env);
        for _ in 0..env.cfg.epochs {
            for _ in 0..rounds {
                // One gradient per domain at the current point.
                let grads: Vec<Vec<f32>> = (0..n_domains)
                    .map(|d| {
                        let batch = env.sample_train_batch(d);
                        env.grad(&theta, &batch, true).1
                    })
                    .collect();
                // Project each gradient against the others' originals.
                let mut total = vec![0.0f32; theta.len()];
                for i in 0..n_domains {
                    let mut gi = grads[i].clone();
                    let mut others = env.shuffled_domains();
                    others.retain(|&j| j != i);
                    for j in others {
                        vecmath::project_conflict(&mut gi, &grads[j]);
                    }
                    vecmath::axpy(&mut total, 1.0, &gi);
                }
                // Average so the step size does not scale with n.
                vecmath::scale(&mut total, 1.0 / n_domains as f32);
                opt.step(&mut theta, &total);
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// Rounds per epoch for frameworks that consume one batch per domain per
/// round: matches the data exposure of one Alternate epoch.
pub fn rounds_per_epoch(env: &TrainEnv) -> usize {
    let total_train: usize = (0..env.n_domains()).map(|d| env.ds.domains[d].train.len()).sum();
    let per_round = env.cfg.batch_size * env.n_domains();
    (total_train + per_round - 1) / per_round.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::test_support::{fixture, fixture_env, train_loss};

    #[test]
    fn weighted_loss_trains() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(3));
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = WeightedLoss.train(&mut env);
        let after = train_loss(&mut env, &tm.shared);
        assert!(after < before, "loss {} -> {}", before, after);
    }

    #[test]
    fn pcgrad_trains() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(3));
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = PcGrad.train(&mut env);
        let after = train_loss(&mut env, &tm.shared);
        assert!(after < before, "loss {} -> {}", before, after);
    }

    #[test]
    fn rounds_cover_one_epoch_of_data() {
        let (ds, built) = fixture();
        let env = fixture_env(&ds, &built, TrainConfig::quick());
        let rounds = rounds_per_epoch(&env);
        let total: usize = ds.domains.iter().map(|d| d.train.len()).sum();
        let consumed = rounds * env.cfg.batch_size * ds.n_domains();
        assert!(consumed >= total, "rounds consume less than one epoch");
        assert!(rounds >= 1);
    }
}
