//! Model-agnostic learning frameworks.
//!
//! Each framework consumes a [`TrainEnv`] (flat parameters + gradients
//! only) and produces a [`TrainedModel`]. The registry [`FrameworkKind`]
//! mirrors the method columns of the paper's Table X plus the proposed
//! DN / DR / MAMDR rows.

pub mod alternate;
pub mod cagrad;
pub mod mamdr;
pub mod meta;
pub mod multitask;

use crate::env::{TrainEnv, TrainedModel};

/// A learning framework: trains any model exposed through a [`TrainEnv`].
pub trait Framework: Send + Sync {
    /// Framework name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Runs the full training procedure.
    fn train(&self, env: &mut TrainEnv) -> TrainedModel;
}

/// Registry of every learning framework evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkKind {
    /// Alternate (one-by-one) training over domains.
    Alternate,
    /// Alternate training followed by per-domain finetuning.
    AlternateFinetune,
    /// An independent model per domain.
    Separate,
    /// Uncertainty-weighted loss (Kendall et al.).
    WeightedLoss,
    /// PCGrad gradient surgery (Yu et al.).
    PcGrad,
    /// Conflict-Averse Gradient descent (Liu et al., the paper's [43]).
    CaGrad,
    /// First-order MAML (Finn et al.).
    Maml,
    /// Reptile (Nichol et al.) — within-domain inner loops.
    Reptile,
    /// MLDG meta-learning for domain generalization (Li et al.).
    Mldg,
    /// Domain Negotiation only (paper Algorithm 1).
    Dn,
    /// Domain Regularization only (paper Algorithm 2; shared parameters
    /// trained alternately).
    Dr,
    /// Full MAMDR: DN + DR (paper Algorithm 3).
    Mamdr,
}

impl FrameworkKind {
    /// All frameworks in the paper's Table X column order (plus CAGrad,
    /// the conflict-averse baseline the paper cites but does not run).
    pub const ALL: [FrameworkKind; 12] = [
        FrameworkKind::Alternate,
        FrameworkKind::AlternateFinetune,
        FrameworkKind::Separate,
        FrameworkKind::WeightedLoss,
        FrameworkKind::PcGrad,
        FrameworkKind::CaGrad,
        FrameworkKind::Maml,
        FrameworkKind::Reptile,
        FrameworkKind::Mldg,
        FrameworkKind::Dn,
        FrameworkKind::Dr,
        FrameworkKind::Mamdr,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::Alternate => "Alternate",
            FrameworkKind::AlternateFinetune => "Alternate+Finetune",
            FrameworkKind::Separate => "Separate",
            FrameworkKind::WeightedLoss => "Weighted Loss",
            FrameworkKind::PcGrad => "PCGrad",
            FrameworkKind::CaGrad => "CAGrad",
            FrameworkKind::Maml => "MAML",
            FrameworkKind::Reptile => "Reptile",
            FrameworkKind::Mldg => "MLDG",
            FrameworkKind::Dn => "DN",
            FrameworkKind::Dr => "DR",
            FrameworkKind::Mamdr => "MAMDR (DN+DR)",
        }
    }

    /// Instantiates the framework.
    pub fn build(self) -> Box<dyn Framework> {
        match self {
            FrameworkKind::Alternate => Box::new(alternate::Alternate),
            FrameworkKind::AlternateFinetune => Box::new(alternate::AlternateFinetune),
            FrameworkKind::Separate => Box::new(alternate::Separate),
            FrameworkKind::WeightedLoss => Box::new(multitask::WeightedLoss),
            FrameworkKind::PcGrad => Box::new(multitask::PcGrad),
            FrameworkKind::CaGrad => Box::new(cagrad::CaGrad),
            FrameworkKind::Maml => Box::new(meta::Maml),
            FrameworkKind::Reptile => Box::new(meta::Reptile),
            FrameworkKind::Mldg => Box::new(meta::Mldg),
            FrameworkKind::Dn => Box::new(mamdr::Mamdr::dn_only()),
            FrameworkKind::Dr => Box::new(mamdr::Mamdr::dr_only()),
            FrameworkKind::Mamdr => Box::new(mamdr::Mamdr::full()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_buildable() {
        let mut names: Vec<&str> = FrameworkKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FrameworkKind::ALL.len());
        for kind in FrameworkKind::ALL {
            let f = kind.build();
            assert_eq!(f.name(), kind.name());
        }
    }
}
