//! The paper's contribution: Domain Negotiation (Algorithm 1), Domain
//! Regularization (Algorithm 2) and the unified MAMDR (Algorithm 3).

use crate::env::{DomainParams, TrainEnv, TrainedModel};
use crate::frameworks::alternate::alternate_epoch;
use crate::frameworks::Framework;
use mamdr_nn::vecmath;
use rand::Rng;

/// MAMDR with independently switchable components, covering the paper's
/// ablation rows: full (DN+DR), `w/o DN` (DR only), `w/o DR` (DN only) and
/// — with both off — plain Alternate training (`w/o DN+DR`).
pub struct Mamdr {
    /// Train shared parameters with Domain Negotiation (otherwise Alternate).
    pub use_dn: bool,
    /// Maintain per-domain specific parameters with Domain Regularization.
    pub use_dr: bool,
}

impl Mamdr {
    /// Full MAMDR (Algorithm 3).
    pub fn full() -> Self {
        Mamdr { use_dn: true, use_dr: true }
    }

    /// Domain Negotiation only (`w/o DR`).
    pub fn dn_only() -> Self {
        Mamdr { use_dn: true, use_dr: false }
    }

    /// Domain Regularization only (`w/o DN`): shared parameters fall back to
    /// Alternate training, as in the paper's ablation.
    pub fn dr_only() -> Self {
        Mamdr { use_dn: false, use_dr: true }
    }

    /// Neither component (`w/o DN+DR`): plain Alternate training.
    pub fn neither() -> Self {
        Mamdr { use_dn: false, use_dr: false }
    }
}

impl Framework for Mamdr {
    fn name(&self) -> &'static str {
        match (self.use_dn, self.use_dr) {
            (true, true) => "MAMDR (DN+DR)",
            (true, false) => "DN",
            (false, true) => "DR",
            (false, false) => "Alternate",
        }
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let n = env.n_params();
        let n_domains = env.n_domains();
        let mut shared = env.init_flat();
        // Specific parameters start at zero so Θ = θS at epoch 0 (Eq. 4).
        let mut specific: Vec<Vec<f32>> = vec![vec![0.0f32; n]; n_domains];
        // Both paths keep persistent inner-optimizer state across epochs —
        // the paper's workers hold dedicated optimizers (§IV-E), and
        // resetting Adam's moments every outer round slows DN markedly.
        let mut inner_opt = env.cfg.inner.build(n);

        // Optional validation-based model selection: keep the epoch whose
        // composed parameters score best on the validation split.
        let mut best: Option<(f64, TrainedModel)> = None;
        for _ in 0..env.cfg.epochs {
            if env.cfg.dn_fresh_inner_per_epoch {
                inner_opt.reset();
            }
            if self.use_dn {
                domain_negotiation_epoch_with(env, &mut shared, inner_opt.as_mut());
            } else {
                alternate_epoch(env, &mut shared, inner_opt.as_mut());
            }
            if self.use_dr {
                for (i, spec) in specific.iter_mut().enumerate() {
                    domain_regularization(env, &shared, spec, i);
                }
            }
            env.end_epoch(Some(&shared));
            if env.cfg.val_select {
                let candidate = self.snapshot(&shared, &specific);
                let val = crate::metrics::mean(&env.evaluate(&candidate, mamdr_data::Split::Val));
                if best.as_ref().is_none_or(|(b, _)| val > *b) {
                    best = Some((val, candidate));
                }
            }
        }

        match best {
            Some((_, model)) => model,
            None => self.snapshot(&shared, &specific),
        }
    }
}

impl Mamdr {
    /// Packages the current shared/specific state into a [`TrainedModel`].
    fn snapshot(&self, shared: &[f32], specific: &[Vec<f32>]) -> TrainedModel {
        if self.use_dr {
            TrainedModel {
                shared: shared.to_vec(),
                domains: DomainParams::Deltas(specific.to_vec()),
            }
        } else {
            TrainedModel::shared_only(shared.to_vec())
        }
    }
}

/// One epoch of Domain Negotiation (Algorithm 1, lines 2–7).
///
/// Inner loop: Θ̃ starts at Θ and is trained sequentially on every domain in
/// a *freshly shuffled* order (the shuffle is what symmetrizes the
/// Hessian-gradient term into the inner-product gradient, Eq. 19–21).
/// Outer loop: Θ ← Θ + β(Θ̃ − Θ) (Eq. 3).
pub fn domain_negotiation_epoch(env: &mut TrainEnv, shared: &mut [f32]) {
    let mut inner_opt = env.cfg.inner.build(shared.len());
    domain_negotiation_epoch_with(env, shared, inner_opt.as_mut());
}

/// [`domain_negotiation_epoch`] with caller-owned inner-optimizer state
/// (kept across epochs, as the PS-Worker deployment does).
pub fn domain_negotiation_epoch_with(
    env: &mut TrainEnv,
    shared: &mut [f32],
    inner_opt: &mut dyn mamdr_nn::Optimizer,
) {
    let mut theta = shared.to_vec();
    let mut grad = vec![0.0f32; theta.len()];
    for d in env.shuffled_domains() {
        for batch in env.train_batches(d) {
            env.grad_into(&theta, &batch, true, &mut grad);
            inner_opt.step(&mut theta, &grad);
        }
    }
    let beta = env.cfg.outer_lr;
    vecmath::lerp_toward(shared, &theta, beta);
}

/// One round of Domain Regularization for target domain `i`
/// (Algorithm 2).
///
/// Samples k helper domains; for each helper j the lookahead θ̃ starts at
/// θi, takes capped minibatch steps on domain j, then on domain i (the
/// *fixed* j→i order is what turns the cross term H̄ᵢḡⱼ into a regularizer
/// for the target domain, Eq. 22), and finally
/// θi ← θi + γ(θ̃ − θi) (Eq. 8).
///
/// All lookahead losses are evaluated at the composed parameters
/// Θ = θS + θ̃ (Eq. 4); only the specific delta moves.
pub fn domain_regularization(env: &mut TrainEnv, shared: &[f32], specific_i: &mut [f32], i: usize) {
    let n_domains = env.n_domains();
    let k = env.cfg.dr_samples.min(n_domains.saturating_sub(1));
    if k == 0 {
        // Single-domain dataset: DR degenerates to finetuning on itself.
        let tilde = dr_lookahead(env, shared, specific_i, &[i]);
        vecmath::lerp_toward(specific_i, &tilde, env.cfg.dr_lr);
        return;
    }
    // Sample k distinct helper domains j ≠ i.
    let mut helpers: Vec<usize> = (0..n_domains).filter(|&d| d != i).collect();
    mamdr_tensor::rng::shuffle(&mut env.rng, &mut helpers);
    helpers.truncate(k);

    for j in helpers {
        let tilde = dr_lookahead(env, shared, specific_i, &[j, i]);
        vecmath::lerp_toward(specific_i, &tilde, env.cfg.dr_lr);
    }
}

/// Runs the DR lookahead: clone the specific delta and train it on each
/// listed domain in order (capped minibatch steps each), returning θ̃.
fn dr_lookahead(
    env: &mut TrainEnv,
    shared: &[f32],
    specific: &[f32],
    domain_order: &[usize],
) -> Vec<f32> {
    let mut tilde = specific.to_vec();
    // Algorithm 2 prescribes plain gradient steps (θ̃ ← θ̃ − α∇L). An
    // adaptive optimizer would inject dense sign-normalized perturbations
    // into every coordinate of the delta, which measurably hurts on
    // many-domain datasets; SGD keeps the delta proportional to the actual
    // gradient signal. The adaptive variant remains available behind
    // `TrainConfig::dr_use_inner_optimizer` for the `ablation` bench.
    let mut opt: Box<dyn mamdr_nn::Optimizer> = if env.cfg.dr_use_inner_optimizer {
        env.cfg.inner.build(tilde.len())
    } else {
        Box::new(mamdr_nn::Sgd::new(dr_alpha(env), 0.0, 0))
    };
    let cap = env.cfg.dr_lookahead_batches.max(1);
    let mut grad = vec![0.0f32; tilde.len()];
    for &d in domain_order {
        let mut batches = env.train_batches(d);
        batches.truncate(cap);
        for batch in batches {
            // Composed parameters Θ = θS + θ̃.
            let full = vecmath::add(shared, &tilde);
            env.grad_into(&full, &batch, true, &mut grad);
            // dΘ/dθ̃ = I, so the gradient applies to the delta directly.
            opt.step(&mut tilde, &grad);
        }
    }
    tilde
}

/// The plain-SGD step size α used inside DR lookaheads, derived from the
/// configured inner optimizer (Adam's effective step is ~lr, so plain SGD
/// needs a larger rate to adapt at a comparable pace).
fn dr_alpha(env: &TrainEnv) -> f32 {
    match env.cfg.inner {
        mamdr_nn::OptimizerKind::Sgd { lr, .. } => lr,
        mamdr_nn::OptimizerKind::Adam { lr } => lr * 10.0,
        mamdr_nn::OptimizerKind::Adagrad { lr } => lr,
    }
}

/// Measures the average pairwise inner product of per-domain gradients at
/// `theta` — the quantity DN maximizes (Eq. 9). Used by tests and the
/// conflict probe.
pub fn mean_pairwise_gradient_inner_product(env: &mut TrainEnv, theta: &[f32]) -> f64 {
    let n_domains = env.n_domains();
    let mut grads = Vec::with_capacity(n_domains);
    for d in 0..n_domains {
        let batch = env.sample_train_batch(d);
        let (_, g) = env.grad(theta, &batch, false);
        grads.push(g);
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for a in 0..n_domains {
        for b in a + 1..n_domains {
            total += vecmath::dot(&grads[a], &grads[b]);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Uniformly samples `k` distinct elements of `0..n` excluding `skip`.
#[allow(dead_code)]
fn sample_distinct_excluding(rng: &mut impl Rng, n: usize, k: usize, skip: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).filter(|&d| d != skip).collect();
    mamdr_tensor::rng::shuffle(rng, &mut pool);
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::frameworks::alternate::Alternate;
    use crate::test_support::{fixture, fixture_env, train_loss};
    use mamdr_nn::OptimizerKind;

    #[test]
    fn mamdr_reduces_training_loss() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = Mamdr::full().train(&mut env);
        // Loss at the composed parameters of domain 0.
        let after = train_loss(&mut env, &tm.flat_for(0));
        assert!(after < before, "loss {} -> {}", before, after);
    }

    #[test]
    fn dn_with_beta_one_and_sgd_equals_alternate() {
        // Paper §IV-A: "when β is set to 1, DN will degrade to Alternate
        // Training". This needs a stateless inner optimizer (plain SGD) so
        // the only difference — the outer interpolation — vanishes.
        let (ds, built) = fixture();
        let mut cfg = TrainConfig::quick();
        cfg.inner = OptimizerKind::Sgd { lr: 0.05, momentum: 0.0 };
        cfg.outer_lr = 1.0;
        cfg.epochs = 2;

        let mut env_dn = fixture_env(&ds, &built, cfg);
        let dn = Mamdr::dn_only().train(&mut env_dn);

        let mut env_alt = fixture_env(&ds, &built, cfg);
        let alt = Alternate.train(&mut env_alt);

        let max_diff =
            dn.shared.iter().zip(&alt.shared).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_diff < 1e-5, "DN@β=1 differs from Alternate by {}", max_diff);
    }

    #[test]
    fn dn_increases_gradient_inner_products() {
        // DN's raison d'être (Eq. 9): after training, per-domain gradients
        // should agree more than at the (random) initialization.
        let (ds, built) = fixture();
        let mut cfg = TrainConfig::quick();
        cfg.epochs = 5;
        let mut env = fixture_env(&ds, &built, cfg);
        let theta0 = env.init_flat();
        let before = mean_pairwise_gradient_inner_product(&mut env, &theta0);
        let tm = Mamdr::dn_only().train(&mut env);
        let after = mean_pairwise_gradient_inner_product(&mut env, &tm.shared);
        // `before` at a random init is typically near 0 (or negative under
        // conflict); DN should leave gradients pointing in agreeing
        // directions. We only require improvement, not positivity.
        assert!(after > before, "inner product did not improve: {} -> {}", before, after);
    }

    #[test]
    fn dr_produces_per_domain_deltas() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let tm = Mamdr::dr_only().train(&mut env);
        match &tm.domains {
            DomainParams::Deltas(deltas) => {
                assert_eq!(deltas.len(), ds.n_domains());
                for d in deltas {
                    assert!(vecmath::norm(d) > 0.0, "DR delta is zero");
                }
                assert_ne!(deltas[0], deltas[1], "deltas should be domain-specific");
            }
            other => panic!("expected deltas, got {:?}", other),
        }
    }

    #[test]
    fn neither_variant_matches_alternate_name_and_output_shape() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let m = Mamdr::neither();
        assert_eq!(m.name(), "Alternate");
        let tm = m.train(&mut env);
        assert!(matches!(tm.domains, DomainParams::SharedOnly));
    }

    #[test]
    fn specific_deltas_stay_small_relative_to_shared() {
        // DR nudges θi toward helpful directions; with γ=0.1 and few epochs
        // the deltas must remain a perturbation, not a replacement.
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let tm = Mamdr::full().train(&mut env);
        if let DomainParams::Deltas(deltas) = &tm.domains {
            let shared_norm = vecmath::norm(&tm.shared);
            for d in deltas {
                assert!(vecmath::norm(d) < shared_norm, "delta dwarfs shared params");
            }
        } else {
            panic!("expected deltas");
        }
    }
}

#[cfg(test)]
mod val_select_tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::test_support::{fixture, fixture_env};
    use mamdr_data::Split;

    #[test]
    fn val_selection_never_hurts_validation_auc() {
        let (ds, built) = fixture();
        let mut cfg = TrainConfig::quick().with_epochs(5);
        let mut env = fixture_env(&ds, &built, cfg);
        let plain = Mamdr::dn_only().train(&mut env);
        let plain_val = crate::metrics::mean(&env.evaluate(&plain, Split::Val));

        cfg.val_select = true;
        let mut env = fixture_env(&ds, &built, cfg);
        let selected = Mamdr::dn_only().train(&mut env);
        let selected_val = crate::metrics::mean(&env.evaluate(&selected, Split::Val));
        assert!(
            selected_val >= plain_val - 1e-9,
            "selection regressed val AUC: {} vs {}",
            selected_val,
            plain_val
        );
    }

    #[test]
    fn val_selection_returns_composed_deltas() {
        let (ds, built) = fixture();
        let mut cfg = TrainConfig::quick().with_epochs(3);
        cfg.val_select = true;
        let mut env = fixture_env(&ds, &built, cfg);
        let tm = Mamdr::full().train(&mut env);
        assert!(matches!(tm.domains, DomainParams::Deltas(_)));
        assert_eq!(tm.flat_for(0).len(), env.n_params());
    }
}
