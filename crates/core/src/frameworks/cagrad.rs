//! Conflict-Averse Gradient descent (CAGrad, Liu et al. 2021) — the
//! convergence-guaranteed gradient-surgery method the paper cites as [43]
//! when discussing why manipulated gradients "stay at a sub-optimal point".
//!
//! CAGrad replaces the average gradient `g₀` with the solution of
//!
//! ```text
//! max_{w ∈ Δ}  min_i ⟨g_w, g_i⟩   s.t. ‖g_w − g₀‖ ≤ c·‖g₀‖
//! ```
//!
//! i.e. a direction close to the average that maximizes the *worst*
//! domain's improvement. We solve the dual in the simplex weights `w` by
//! projected gradient ascent (exact enough at MDR domain counts, and the
//! same approach the reference implementation uses), then take
//! `d = g₀ + (c‖g₀‖ / ‖g_w‖)·g_w`.

use crate::env::{TrainEnv, TrainedModel};
use crate::frameworks::multitask::rounds_per_epoch;
use crate::frameworks::Framework;
use mamdr_nn::vecmath;

/// CAGrad with the standard c = 0.5.
pub struct CaGrad;

/// The constraint radius as a fraction of ‖g₀‖ (reference default).
const C: f64 = 0.5;
/// Projected-gradient-ascent steps on the simplex.
const SOLVER_STEPS: usize = 20;
/// Solver step size.
const SOLVER_LR: f64 = 0.25;

impl Framework for CaGrad {
    fn name(&self) -> &'static str {
        "CAGrad"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut opt = env.cfg.inner.build(theta.len());
        let n = env.n_domains();
        let rounds = rounds_per_epoch(env);
        for _ in 0..env.cfg.epochs {
            for _ in 0..rounds {
                let grads: Vec<Vec<f32>> = (0..n)
                    .map(|d| {
                        let batch = env.sample_train_batch(d);
                        env.grad(&theta, &batch, true).1
                    })
                    .collect();
                let update = cagrad_direction(&grads);
                opt.step(&mut theta, &update);
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// Computes the CAGrad update direction from per-domain gradients.
pub fn cagrad_direction(grads: &[Vec<f32>]) -> Vec<f32> {
    let n = grads.len();
    assert!(n >= 1);
    let dim = grads[0].len();

    // Average gradient g₀.
    let mut g0 = vec![0.0f32; dim];
    for g in grads {
        vecmath::axpy(&mut g0, 1.0 / n as f32, g);
    }
    if n == 1 {
        return g0;
    }
    let g0_norm = vecmath::norm(&g0);
    if g0_norm == 0.0 {
        return g0;
    }

    // Gram matrix G[i][j] = <g_i, g_j> (the solver only needs inner
    // products, not the full vectors).
    let mut gram = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i..n {
            let ip = vecmath::dot(&grads[i], &grads[j]);
            gram[i][j] = ip;
            gram[j][i] = ip;
        }
    }

    // Maximize F(w) = <g_w, g₀> + c‖g₀‖·‖g_w‖ ... CAGrad's dual reduces to
    // minimizing  φ(w) = <g_w, g₀> + c‖g₀‖·‖g_w‖  over the simplex; we run
    // projected gradient descent on φ.
    let mut w = vec![1.0f64 / n as f64; n];
    let g0_w: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| gram[i][j]).sum::<f64>() / n as f64) // <g_i, g0>
        .collect();
    for _ in 0..SOLVER_STEPS {
        // ‖g_w‖ and its gradient.
        let mut gw_sq = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                gw_sq += w[i] * w[j] * gram[i][j];
            }
        }
        let gw_norm = gw_sq.max(1e-12).sqrt();
        let mut grad_w = vec![0.0f64; n];
        for (i, gw) in grad_w.iter_mut().enumerate() {
            let gram_w: f64 = (0..n).map(|j| gram[i][j] * w[j]).sum();
            *gw = g0_w[i] + C * g0_norm * gram_w / gw_norm;
        }
        for (wi, gi) in w.iter_mut().zip(&grad_w) {
            *wi -= SOLVER_LR * gi / (g0_norm * g0_norm).max(1e-12);
        }
        project_simplex(&mut w);
    }

    // g_w and the final direction d = g₀ + (c‖g₀‖/‖g_w‖)·g_w.
    let mut gw = vec![0.0f32; dim];
    for (g, &wi) in grads.iter().zip(&w) {
        vecmath::axpy(&mut gw, wi as f32, g);
    }
    let gw_norm = vecmath::norm(&gw);
    let mut d = g0;
    if gw_norm > 0.0 {
        let coeff = (C * g0_norm / gw_norm) as f32;
        vecmath::axpy(&mut d, coeff, &gw);
    }
    d
}

/// Euclidean projection onto the probability simplex (Duchi et al. 2008).
fn project_simplex(w: &mut [f64]) {
    let n = w.len();
    let mut sorted: Vec<f64> = w.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut rho_sum = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let t = (cumsum - 1.0) / (i + 1) as f64;
        if v - t > 0.0 {
            rho = i + 1;
            rho_sum = cumsum;
        }
    }
    let tau = (rho_sum - 1.0) / rho.max(1) as f64;
    for v in w.iter_mut() {
        *v = (*v - tau).max(0.0);
    }
    // numeric cleanup
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for v in w.iter_mut() {
            *v /= total;
        }
    } else {
        for v in w.iter_mut() {
            *v = 1.0 / n as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::test_support::{fixture, fixture_env, train_loss};

    #[test]
    fn simplex_projection_properties() {
        let mut w = vec![0.8, 0.6, -0.2];
        project_simplex(&mut w);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
        // Already-valid points are fixed points.
        let mut w = vec![0.25, 0.75];
        project_simplex(&mut w);
        assert!((w[0] - 0.25).abs() < 1e-9 && (w[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn direction_equals_average_for_single_domain() {
        let g = vec![vec![1.0f32, -2.0, 3.0]];
        assert_eq!(cagrad_direction(&g), vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn direction_improves_worst_domain_under_conflict() {
        // Two conflicting gradients: the plain average favors the larger
        // one; CAGrad's direction must give the disadvantaged domain a
        // non-worse inner product than the average does.
        let g1 = vec![1.0f32, 0.2];
        let g2 = vec![-0.8f32, 0.3];
        let grads = vec![g1.clone(), g2.clone()];
        let mut avg = vec![0.0f32; 2];
        vecmath::axpy(&mut avg, 0.5, &g1);
        vecmath::axpy(&mut avg, 0.5, &g2);
        let d = cagrad_direction(&grads);
        let worst_avg = vecmath::dot(&avg, &g1).min(vecmath::dot(&avg, &g2));
        let worst_cag = vecmath::dot(&d, &g1).min(vecmath::dot(&d, &g2));
        assert!(
            worst_cag >= worst_avg - 1e-6,
            "worst-case inner product regressed: {} vs {}",
            worst_cag,
            worst_avg
        );
    }

    #[test]
    fn direction_stays_in_trust_region() {
        let grads = vec![vec![1.0f32, 0.0, 0.5], vec![-0.5f32, 0.8, 0.1], vec![0.2f32, -0.3, 0.9]];
        let mut g0 = vec![0.0f32; 3];
        for g in &grads {
            vecmath::axpy(&mut g0, 1.0 / 3.0, g);
        }
        let d = cagrad_direction(&grads);
        let diff = vecmath::sub(&d, &g0);
        assert!(
            vecmath::norm(&diff) <= C * vecmath::norm(&g0) + 1e-6,
            "direction left the trust region"
        );
    }

    #[test]
    fn cagrad_trains() {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(4));
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = CaGrad.train(&mut env);
        let after = train_loss(&mut env, &tm.shared);
        assert!(after < before, "loss {} -> {}", before, after);
    }
}
