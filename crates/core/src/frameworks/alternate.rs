//! Traditional learning frameworks: Alternate, Alternate+Finetune and
//! per-domain Separate training (paper §V-B "Traditional Learning
//! Frameworks" plus the `RAW+Separate` industry baseline).

use crate::env::{DomainParams, TrainEnv, TrainedModel};
use crate::frameworks::Framework;
use mamdr_nn::vecmath;

/// One Alternate-training epoch: a full pass over every domain's batches in
/// a shuffled domain order, stepping `opt` on `theta` in place.
///
/// Shared by several frameworks (Alternate itself, the shared-parameter
/// phase of DR-only MAMDR, and finetuning bases).
pub fn alternate_epoch(
    env: &mut TrainEnv,
    theta: &mut [f32],
    opt: &mut dyn mamdr_nn::Optimizer,
) -> f32 {
    let mut total_loss = 0.0f32;
    let mut n_batches = 0usize;
    let mut grad = vec![0.0f32; theta.len()];
    for d in env.shuffled_domains() {
        for batch in env.train_batches(d) {
            let loss = env.grad_into(theta, &batch, true, &mut grad);
            opt.step(theta, &grad);
            total_loss += loss;
            n_batches += 1;
        }
    }
    if n_batches == 0 {
        0.0
    } else {
        total_loss / n_batches as f32
    }
}

/// Runs `epochs` passes over a single domain's data, stepping `opt`.
pub fn domain_epochs(
    env: &mut TrainEnv,
    theta: &mut [f32],
    opt: &mut dyn mamdr_nn::Optimizer,
    domain: usize,
    epochs: usize,
) {
    let mut grad = vec![0.0f32; theta.len()];
    for _ in 0..epochs {
        for batch in env.train_batches(domain) {
            env.grad_into(theta, &batch, true, &mut grad);
            opt.step(theta, &grad);
        }
    }
}

/// Alternate training: one model, domains visited one after another.
///
/// The conventional baseline — and exactly what Domain Negotiation degrades
/// to at β = 1 (verified by a unit test in `mamdr.rs`).
pub struct Alternate;

impl Framework for Alternate {
    fn name(&self) -> &'static str {
        "Alternate"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut opt = env.cfg.inner.build(theta.len());
        for _ in 0..env.cfg.epochs {
            alternate_epoch(env, &mut theta, opt.as_mut());
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// Alternate training followed by per-domain finetuning: the classic way to
/// obtain domain-specific models, prone to overfitting on sparse domains
/// (which DR fixes).
pub struct AlternateFinetune;

impl Framework for AlternateFinetune {
    fn name(&self) -> &'static str {
        "Alternate+Finetune"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut shared = env.init_flat();
        let mut opt = env.cfg.inner.build(shared.len());
        for _ in 0..env.cfg.epochs {
            alternate_epoch(env, &mut shared, opt.as_mut());
            env.end_epoch(Some(&shared));
        }
        let mut deltas = Vec::with_capacity(env.n_domains());
        for d in 0..env.n_domains() {
            let mut theta = shared.clone();
            let mut fopt = env.cfg.inner.build(theta.len());
            domain_epochs(env, &mut theta, fopt.as_mut(), d, env.cfg.finetune_epochs);
            deltas.push(vecmath::sub(&theta, &shared));
        }
        TrainedModel { shared, domains: DomainParams::Deltas(deltas) }
    }
}

/// One independent model per domain (paper Fig. 1b / `RAW+Separate`): no
/// knowledge sharing at all, so sparse domains overfit badly.
pub struct Separate;

impl Framework for Separate {
    fn name(&self) -> &'static str {
        "Separate"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let init = env.init_flat();
        let mut full = Vec::with_capacity(env.n_domains());
        for d in 0..env.n_domains() {
            let mut theta = init.clone();
            let mut opt = env.cfg.inner.build(theta.len());
            domain_epochs(env, &mut theta, opt.as_mut(), d, env.cfg.epochs);
            full.push(theta);
        }
        TrainedModel { shared: init, domains: DomainParams::Full(full) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::test_support::{fixture_env, train_loss};

    #[test]
    fn alternate_reduces_training_loss() {
        let (ds, built) = crate::test_support::fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(4));
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = Alternate.train(&mut env);
        let after = train_loss(&mut env, &tm.shared);
        assert!(after < before, "loss {} -> {}", before, after);
    }

    #[test]
    fn finetune_produces_nonzero_deltas() {
        let (ds, built) = crate::test_support::fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let tm = AlternateFinetune.train(&mut env);
        match &tm.domains {
            DomainParams::Deltas(deltas) => {
                assert_eq!(deltas.len(), ds.n_domains());
                for d in deltas {
                    assert!(vecmath::norm(d) > 0.0, "finetune delta is zero");
                }
            }
            other => panic!("expected deltas, got {:?}", other),
        }
    }

    #[test]
    fn separate_models_differ_across_domains() {
        let (ds, built) = crate::test_support::fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick());
        let tm = Separate.train(&mut env);
        let f0 = tm.flat_for(0);
        let f1 = tm.flat_for(1);
        assert_ne!(f0, f1);
    }
}
