//! Meta-learning baselines: first-order MAML, Reptile and MLDG
//! (paper §V-B "Meta-Learning Frameworks").
//!
//! The crucial contrast with Domain Negotiation (paper Fig. 5): MAML and
//! Reptile maximize gradient inner products *within* a single domain's
//! inner loop, so they improve per-domain generalization but cannot
//! negotiate *between* domains. DN runs one inner loop *across* all
//! domains, which is what mitigates cross-domain conflict.

use crate::env::{TrainEnv, TrainedModel};
use crate::frameworks::multitask::rounds_per_epoch;
use crate::frameworks::Framework;
use mamdr_nn::vecmath;

/// First-order MAML: per domain, adapt on a support batch, take the outer
/// gradient on a query batch at the adapted point (the FOMAML
/// approximation), and average over domains.
///
/// As the paper notes (§V-G), the support/query split means MAML never
/// trains on the full data of a domain in one step — a handicap the other
/// frameworks don't have.
pub struct Maml;

impl Framework for Maml {
    fn name(&self) -> &'static str {
        "MAML"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut outer = env.cfg.inner.build(theta.len());
        let inner_lr = inner_sgd_lr(env);
        let rounds = rounds_per_epoch(env);
        for _ in 0..env.cfg.epochs {
            for _ in 0..rounds {
                let mut meta_grad = vec![0.0f32; theta.len()];
                let domains = env.shuffled_domains();
                for &d in &domains {
                    // Support/query: two independent batches of the domain.
                    let support = env.sample_train_batch(d);
                    let query = env.sample_train_batch(d);
                    let mut adapted = theta.clone();
                    for _ in 0..env.cfg.meta_inner_steps {
                        let (_, g) = env.grad(&adapted, &support, true);
                        vecmath::axpy(&mut adapted, -inner_lr, &g);
                    }
                    let (_, gq) = env.grad(&adapted, &query, true);
                    vecmath::axpy(&mut meta_grad, 1.0, &gq);
                }
                vecmath::scale(&mut meta_grad, 1.0 / domains.len() as f32);
                outer.step(&mut theta, &meta_grad);
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// Reptile: per domain, run a few inner steps *within that domain* and
/// interpolate toward the result: θ ← θ + β(θ̃_d − θ).
///
/// Structurally the closest baseline to DN — the difference is exactly that
/// Reptile's inner trajectory stays inside one domain (paper Fig. 5d vs 5a).
pub struct Reptile;

impl Framework for Reptile {
    fn name(&self) -> &'static str {
        "Reptile"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let beta = env.cfg.outer_lr;
        for _ in 0..env.cfg.epochs {
            for d in env.shuffled_domains() {
                let mut tilde = theta.clone();
                let mut inner = env.cfg.inner.build(tilde.len());
                let mut batches = env.train_batches(d);
                batches.truncate(env.cfg.meta_inner_steps.max(1) * 4);
                for batch in batches {
                    let (_, g) = env.grad(&tilde, &batch, true);
                    inner.step(&mut tilde, &g);
                }
                vecmath::lerp_toward(&mut theta, &tilde, beta);
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// MLDG (Li et al.), first-order variant: per round, split the domains into
/// meta-train and meta-test halves; the update direction is
/// `∇L_train(θ) + ∇L_test(θ − α·∇L_train(θ))`, which rewards updates whose
/// benefit transfers to held-out domains.
pub struct Mldg;

impl Framework for Mldg {
    fn name(&self) -> &'static str {
        "MLDG"
    }

    fn train(&self, env: &mut TrainEnv) -> TrainedModel {
        let mut theta = env.init_flat();
        let mut outer = env.cfg.inner.build(theta.len());
        let inner_lr = inner_sgd_lr(env);
        let rounds = rounds_per_epoch(env);
        for _ in 0..env.cfg.epochs {
            for _ in 0..rounds {
                let order = env.shuffled_domains();
                let half = (order.len() / 2).max(1);
                let (meta_train, meta_test) = order.split_at(half.min(order.len()));

                let mut g_train = vec![0.0f32; theta.len()];
                for &d in meta_train {
                    let batch = env.sample_train_batch(d);
                    let (_, g) = env.grad(&theta, &batch, true);
                    vecmath::axpy(&mut g_train, 1.0, &g);
                }
                vecmath::scale(&mut g_train, 1.0 / meta_train.len() as f32);

                let mut virtual_theta = theta.clone();
                vecmath::axpy(&mut virtual_theta, -inner_lr, &g_train);

                let mut g_test = vec![0.0f32; theta.len()];
                if meta_test.is_empty() {
                    // Two or fewer domains: degenerate to plain training.
                    vecmath::axpy(&mut g_test, 1.0, &g_train);
                } else {
                    for &d in meta_test {
                        let batch = env.sample_train_batch(d);
                        let (_, g) = env.grad(&virtual_theta, &batch, true);
                        vecmath::axpy(&mut g_test, 1.0, &g);
                    }
                    vecmath::scale(&mut g_test, 1.0 / meta_test.len() as f32);
                }

                let mut update = g_train;
                vecmath::axpy(&mut update, 1.0, &g_test);
                vecmath::scale(&mut update, 0.5);
                outer.step(&mut theta, &update);
            }
            env.end_epoch(Some(&theta));
        }
        TrainedModel::shared_only(theta)
    }
}

/// The plain-SGD learning rate used for the first-order inner adaptation of
/// MAML/MLDG, derived from the configured inner optimizer.
fn inner_sgd_lr(env: &TrainEnv) -> f32 {
    match env.cfg.inner {
        mamdr_nn::OptimizerKind::Sgd { lr, .. } => lr,
        mamdr_nn::OptimizerKind::Adam { lr } => lr * 10.0, // Adam's effective step ≈ lr; SGD needs more
        mamdr_nn::OptimizerKind::Adagrad { lr } => lr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::test_support::{fixture, fixture_env, train_loss};

    fn check_framework_trains(f: &dyn Framework) {
        let (ds, built) = fixture();
        let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(4));
        let init = env.init_flat();
        let before = train_loss(&mut env, &init);
        let tm = f.train(&mut env);
        let after = train_loss(&mut env, &tm.shared);
        assert!(after < before, "{}: loss {} -> {}", f.name(), before, after);
    }

    #[test]
    fn maml_trains() {
        check_framework_trains(&Maml);
    }

    #[test]
    fn reptile_trains() {
        check_framework_trains(&Reptile);
    }

    #[test]
    fn mldg_trains() {
        check_framework_trains(&Mldg);
    }

    #[test]
    fn frameworks_produce_shared_only_models() {
        let (ds, built) = fixture();
        for f in [&Maml as &dyn Framework, &Reptile, &Mldg] {
            let mut env = fixture_env(&ds, &built, TrainConfig::quick().with_epochs(1));
            let tm = f.train(&mut env);
            assert!(
                matches!(tm.domains, crate::env::DomainParams::SharedOnly),
                "{} should not produce per-domain params",
                f.name()
            );
        }
    }
}
