//! Evaluation-path correctness: the per-domain AUC reported by `TrainEnv`
//! must equal a hand-computed AUC over the same split, and composed
//! parameters must be what the evaluator actually scores with.

use mamdr_core::env::{DomainParams, TrainEnv, TrainedModel};
use mamdr_core::metrics::auc;
use mamdr_core::TrainConfig;
use mamdr_data::{make_batch, DomainSpec, GeneratorConfig, MdrDataset, Split};
use mamdr_models::{build_model, eval_logits, BuiltModel, FeatureConfig, ModelConfig, ModelKind};

fn fixture() -> (MdrDataset, BuiltModel) {
    let mut cfg = GeneratorConfig::base("eval", 60, 40, 44);
    cfg.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 220, 0.4)];
    let ds = cfg.generate();
    let fc = FeatureConfig::from_dataset(&ds);
    let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 2, 9);
    (ds, built)
}

#[test]
fn env_evaluate_matches_manual_auc() {
    let (ds, built) = fixture();
    let mut env =
        TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
    let tm = TrainedModel::shared_only(env.init_flat());
    let reported = env.evaluate(&tm, Split::Test);

    for (d, &rep) in reported.iter().enumerate() {
        let interactions = ds.domains[d].split(Split::Test);
        let batch = make_batch(&ds, d, interactions);
        let scores = eval_logits(built.model.as_ref(), &built.params, &batch);
        let labels: Vec<f32> = interactions.iter().map(|i| i.label).collect();
        let manual = auc(&labels, &scores);
        assert!((manual - rep).abs() < 1e-12, "domain {}: {} vs {}", d, manual, rep);
    }
}

#[test]
fn evaluator_scores_with_composed_parameters() {
    // With a delta for domain 0 only, domain 1's AUC must equal the
    // shared-only AUC exactly while domain 0's generally changes.
    let (ds, built) = fixture();
    let mut env =
        TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
    let shared = env.init_flat();
    let shared_only = env.evaluate(&TrainedModel::shared_only(shared.clone()), Split::Test);

    let mut delta0 = vec![0.0f32; shared.len()];
    for (i, x) in delta0.iter_mut().enumerate() {
        *x = 0.05 * ((i % 13) as f32 - 6.0);
    }
    let tm = TrainedModel {
        shared,
        domains: DomainParams::Deltas(vec![delta0, vec![0.0; env.n_params()]]),
    };
    let composed = env.evaluate(&tm, Split::Test);
    assert_eq!(composed[1], shared_only[1], "untouched domain must be identical");
    assert_ne!(composed[0], shared_only[0], "delta should change domain 0's scores");
}

#[test]
fn val_and_test_are_distinct_evaluations() {
    let (ds, built) = fixture();
    let mut env =
        TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), TrainConfig::quick());
    let tm = TrainedModel::shared_only(env.init_flat());
    let val = env.evaluate(&tm, Split::Val);
    let test = env.evaluate(&tm, Split::Test);
    assert_ne!(val, test);
}
