//! Property-based tests of the evaluation metrics.

use mamdr_core::metrics::{auc, average_rank, logloss, mean};
use proptest::prelude::*;

fn labeled_scores() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    proptest::collection::vec((proptest::bool::ANY, -5.0f32..5.0), 2..60).prop_map(|pairs| {
        let labels = pairs.iter().map(|&(y, _)| f32::from(y)).collect();
        let scores = pairs.iter().map(|&(_, s)| s).collect();
        (labels, scores)
    })
}

proptest! {
    #[test]
    fn auc_is_bounded((labels, scores) in labeled_scores()) {
        let a = auc(&labels, &scores);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auc_invariant_under_monotone_transform((labels, scores) in labeled_scores()) {
        // AUC is a ranking metric: any strictly increasing transform of the
        // scores must leave it unchanged.
        let transformed: Vec<f32> = scores.iter().map(|&s| (s * 0.3).exp() + 2.0 * s).collect();
        prop_assert!((auc(&labels, &scores) - auc(&labels, &transformed)).abs() < 1e-9);
    }

    #[test]
    fn auc_flips_under_negation((labels, scores) in labeled_scores()) {
        let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        prop_assert!((auc(&labels, &scores) + auc(&labels, &negated) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_permutation_invariant((labels, scores) in labeled_scores(), seed in 0u64..100) {
        let mut idx: Vec<usize> = (0..labels.len()).collect();
        mamdr_tensor::rng::shuffle(&mut mamdr_tensor::rng::seeded(seed), &mut idx);
        let pl: Vec<f32> = idx.iter().map(|&i| labels[i]).collect();
        let ps: Vec<f32> = idx.iter().map(|&i| scores[i]).collect();
        prop_assert!((auc(&labels, &scores) - auc(&pl, &ps)).abs() < 1e-9);
    }

    #[test]
    fn logloss_is_nonnegative_and_finite((labels, _) in labeled_scores(), p in proptest::collection::vec(0.0f32..=1.0, 60)) {
        let probs = &p[..labels.len()];
        let ll = logloss(&labels, probs);
        prop_assert!(ll >= 0.0 && ll.is_finite());
    }

    #[test]
    fn average_rank_is_a_permutation_statistic(
        aucs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 4), 2..6,
        ),
    ) {
        let n_methods = aucs.len();
        let ranks = average_rank(&aucs);
        prop_assert_eq!(ranks.len(), n_methods);
        // ranks live in [1, n] and sum to n(n+1)/2 per domain on average
        let expected_sum = (n_methods * (n_methods + 1)) as f64 / 2.0;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - expected_sum).abs() < 1e-6, "{} vs {}", total, expected_sum);
        for &r in &ranks {
            prop_assert!((1.0..=n_methods as f64).contains(&r));
        }
    }

    #[test]
    fn mean_within_bounds(xs in proptest::collection::vec(0.0f64..1.0, 1..40)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
    }
}
