//! Property-based tests for the serving-side ranking metrics.

use mamdr_core::ranking::{gauc, hit_rate_at_k, ndcg_at_k, UserScore};
use proptest::prelude::*;

fn lists() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    proptest::collection::vec((proptest::bool::ANY, -3.0f32..3.0), 1..30).prop_map(|pairs| {
        (
            pairs.iter().map(|&(y, _)| f32::from(y)).collect(),
            pairs.iter().map(|&(_, s)| s).collect(),
        )
    })
}

proptest! {
    #[test]
    fn ndcg_is_bounded((labels, scores) in lists(), k in 1usize..10) {
        let v = ndcg_at_k(&labels, &scores, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
    }

    #[test]
    fn ndcg_of_ideal_ranking_is_one((labels, _) in lists(), k in 1usize..10) {
        prop_assume!(labels.iter().any(|&y| y > 0.5));
        // Score = label: positives first, the ideal ordering.
        let v = ndcg_at_k(&labels, &labels, k);
        prop_assert!((v - 1.0).abs() < 1e-9, "ideal ndcg {}", v);
    }

    #[test]
    fn ndcg_invariant_under_monotone_transform((labels, scores) in lists(), k in 1usize..8) {
        let t: Vec<f32> = scores.iter().map(|&s| s.exp() + 3.0 * s).collect();
        prop_assert!((ndcg_at_k(&labels, &scores, k) - ndcg_at_k(&labels, &t, k)).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_monotone_in_k((labels, scores) in lists()) {
        let mut prev = 0.0;
        for k in 1..=labels.len() {
            let h = hit_rate_at_k(&labels, &scores, k);
            prop_assert!(h >= prev, "hit rate decreased at k={}", k);
            prev = h;
        }
        // At k = n, hit rate is exactly "any positive exists".
        let expect = f64::from(u8::from(labels.iter().any(|&y| y > 0.5)));
        prop_assert_eq!(prev, expect);
    }

    #[test]
    fn gauc_is_bounded_and_permutation_invariant(
        (labels, scores) in lists(),
        users in proptest::collection::vec(0u32..4, 30),
        seed in 0u64..50,
    ) {
        let examples: Vec<UserScore> = labels
            .iter()
            .zip(&scores)
            .zip(&users)
            .map(|((&label, &score), &user)| UserScore { user, label, score })
            .collect();
        let g = gauc(&examples);
        prop_assert!((0.0..=1.0).contains(&g));
        let mut shuffled = examples.clone();
        mamdr_tensor::rng::shuffle(&mut mamdr_tensor::rng::seeded(seed), &mut shuffled);
        prop_assert!((gauc(&shuffled) - g).abs() < 1e-12);
    }
}
