//! Observer contract tests: training emits a complete, ordered epoch-event
//! stream, and attaching an observer — even one that runs conflict probes
//! every epoch — never changes the training outcome.

use mamdr_core::experiment::{run, run_observed};
use mamdr_core::{FrameworkKind, TrainConfig};
use mamdr_data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{ModelConfig, ModelKind};
use mamdr_obs::RecordingObserver;
use std::sync::{Arc, Mutex};

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("obs", 80, 50, 21);
    cfg.conflict = 0.4;
    cfg.domains = vec![
        DomainSpec::new("a", 600, 0.3),
        DomainSpec::new("b", 400, 0.4),
        DomainSpec::new("c", 500, 0.35),
    ];
    cfg.generate()
}

fn recorded(
    framework: FrameworkKind,
    cfg: TrainConfig,
    conflict_every: usize,
) -> (f64, Arc<Mutex<RecordingObserver>>) {
    let ds = dataset();
    let rec = Arc::new(Mutex::new(RecordingObserver::new().with_conflict_every(conflict_every)));
    let r = run_observed(
        &ds,
        ModelKind::Mlp,
        &ModelConfig::tiny(),
        framework,
        cfg,
        Some(Box::new(rec.clone())),
    );
    (r.mean_auc, rec)
}

#[test]
fn observed_run_emits_one_ordered_event_per_epoch() {
    let cfg = TrainConfig::quick().with_epochs(3);
    let (_, rec) = recorded(FrameworkKind::Alternate, cfg, 0);
    let obs = rec.lock().unwrap();

    let meta = obs.meta().expect("train_start fired");
    assert_eq!(meta.framework, "Alternate");
    assert_eq!(meta.n_domains, 3);
    assert_eq!(meta.epochs, 3);
    assert_eq!(meta.seed, cfg.seed);

    let events = obs.events();
    assert_eq!(events.len(), cfg.epochs, "one event per epoch");
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.epoch, i, "events arrive in epoch order");
        assert!(e.mean_loss.is_finite() && e.mean_loss > 0.0);
        assert!(e.grad_norm.expect("training computed grads") > 0.0);
        assert!(e.conflict.is_none(), "no probe was requested");
        // Alternate touches every domain each epoch.
        let domains: Vec<usize> = e.domain_losses.iter().map(|&(d, _)| d).collect();
        assert_eq!(domains, vec![0, 1, 2]);
        assert!(e.domain_losses.iter().all(|&(_, l)| l.is_finite() && l > 0.0));
    }
    assert!(obs.wall_secs().expect("train_end fired") > 0.0);
}

#[test]
fn mamdr_run_reports_loss_decrease_through_observer() {
    let cfg = TrainConfig::quick().with_epochs(6);
    let (_, rec) = recorded(FrameworkKind::Mamdr, cfg, 0);
    let obs = rec.lock().unwrap();
    let events = obs.events();
    assert_eq!(events.len(), 6);
    assert!(
        events.last().unwrap().mean_loss < events[0].mean_loss,
        "observed loss should fall: {} -> {}",
        events[0].mean_loss,
        events.last().unwrap().mean_loss
    );
}

#[test]
fn requested_conflict_probes_are_attached_to_events() {
    let cfg = TrainConfig::quick().with_epochs(4);
    let (_, rec) = recorded(FrameworkKind::Alternate, cfg, 2);
    let obs = rec.lock().unwrap();
    for e in obs.events() {
        if e.epoch % 2 == 0 {
            let c = e.conflict.expect("probe requested on even epochs");
            assert!((0.0..=1.0).contains(&c.rate));
            assert!((-1.0..=1.0).contains(&c.mean_cosine));
        } else {
            assert!(e.conflict.is_none());
        }
    }
}

#[test]
fn observer_never_changes_training_results() {
    // The core guarantee: same seed, observer on (with per-epoch conflict
    // probes, the most invasive configuration) vs off — bit-identical AUC.
    let ds = dataset();
    let cfg = TrainConfig::quick().with_epochs(3);
    for framework in [
        FrameworkKind::Alternate,
        FrameworkKind::Mamdr,
        FrameworkKind::Dn,
        FrameworkKind::PcGrad,
        FrameworkKind::Reptile,
    ] {
        let plain = run(&ds, ModelKind::Mlp, &ModelConfig::tiny(), framework, cfg);
        let observed = run_observed(
            &ds,
            ModelKind::Mlp,
            &ModelConfig::tiny(),
            framework,
            cfg,
            Some(Box::new(RecordingObserver::new().with_conflict_every(1))),
        );
        assert_eq!(
            plain.domain_auc, observed.domain_auc,
            "{framework:?}: observer perturbed per-domain AUC"
        );
        assert_eq!(plain.mean_auc, observed.mean_auc, "{framework:?}: observer perturbed mean AUC");
    }
}
