//! The round journal: everything a restarted driver needs to resume a
//! half-finished distributed run *bit-identically*.
//!
//! A parameter checkpoint (`ckpt-*.mamdrps`) alone cannot resume a run:
//! it deliberately omits the Adagrad accumulators (cold-starting them
//! rescales every subsequent update), and the final [`crate::
//! DistributedReport`] aggregates per-round losses, cache counters, and
//! traffic from round zero. The journal closes that gap. Every
//! `checkpoint_every` rounds the driver writes, atomically (temp file +
//! rename), one `journal-<round>.mamdrj` holding:
//!
//! * the number of completed rounds (the RNG cursor: every stream this
//!   workspace uses is derived statelessly from `(seed, round, worker)`,
//!   so the round index *is* the full RNG position),
//! * the file name of the parameter checkpoint written just before the
//!   journal (the journal is the commit point: a crash between the two
//!   leaves an orphaned checkpoint, never a journal pointing at nothing),
//! * the report aggregates so far (losses, cache hits/misses, staleness,
//!   traffic, guard counters),
//! * the complete Adagrad accumulator state,
//!
//! all integrity-protected by the workspace's FNV-1a checksum
//! ([`mamdr_util::Checksum`]), so a torn write surfaces as
//! [`JournalError::Corrupt`] and recovery falls back to the next-newest
//! journal instead of resuming from garbage.

use crate::cache::CacheStats;
use crate::kv::ParamKey;
use mamdr_obs::{EventLog, Value};
use mamdr_util::Checksum;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"MAMDRJN1";

/// File extension of on-disk round journals.
pub const JOURNAL_EXT: &str = "mamdrj";

/// A journaling error.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid journal (bad magic, checksum mismatch,
    /// truncation, or malformed body).
    Corrupt(String),
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "I/O error: {e}"),
            JournalError::Corrupt(m) => write!(f, "corrupt journal: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// One resumable round boundary: the aggregates of every completed round
/// plus the optimizer state the checkpoint format does not carry.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundJournal {
    /// Rounds fully applied before this journal was written; resume
    /// continues at this round index.
    pub rounds_done: u64,
    /// File *name* (not path — directories move between hosts) of the
    /// parameter checkpoint holding the values at this boundary.
    pub checkpoint_file: String,
    /// Combined worker cache counters over the completed rounds.
    pub cache: CacheStats,
    /// Worst observed staleness over the completed rounds.
    pub max_staleness: u64,
    /// Server traffic over the completed rounds:
    /// `(pulls, pushes, bytes_pulled, bytes_pushed)`.
    pub traffic: (u64, u64, u64, u64),
    /// Guard trips over the completed rounds.
    pub guard_trips: u64,
    /// Guard rollbacks over the completed rounds.
    pub guard_rollbacks: u64,
    /// Mean training loss of each completed round, in round order.
    pub round_losses: Vec<f64>,
    /// Per-row vector width of the accumulators.
    pub dim: u32,
    /// Every materialized Adagrad accumulator row, key-sorted.
    pub adagrad: Vec<(ParamKey, Vec<f32>)>,
}

impl RoundJournal {
    /// The on-disk file name for this journal's round boundary.
    pub fn file_name(&self) -> String {
        format!("journal-{:010}.{JOURNAL_EXT}", self.rounds_done)
    }

    /// Serializes the body (everything between magic and checksum).
    fn encode_body(&self) -> Result<Vec<u8>, JournalError> {
        let mut b = Vec::with_capacity(128 + self.adagrad.len() * (8 + 4 * self.dim as usize));
        b.extend_from_slice(&self.rounds_done.to_le_bytes());
        let name = self.checkpoint_file.as_bytes();
        b.extend_from_slice(&(name.len() as u32).to_le_bytes());
        b.extend_from_slice(name);
        b.extend_from_slice(&self.cache.hits.to_le_bytes());
        b.extend_from_slice(&self.cache.misses.to_le_bytes());
        b.extend_from_slice(&self.max_staleness.to_le_bytes());
        for part in [self.traffic.0, self.traffic.1, self.traffic.2, self.traffic.3] {
            b.extend_from_slice(&part.to_le_bytes());
        }
        b.extend_from_slice(&self.guard_trips.to_le_bytes());
        b.extend_from_slice(&self.guard_rollbacks.to_le_bytes());
        b.extend_from_slice(&(self.round_losses.len() as u64).to_le_bytes());
        for &loss in &self.round_losses {
            b.extend_from_slice(&loss.to_le_bytes());
        }
        b.extend_from_slice(&self.dim.to_le_bytes());
        b.extend_from_slice(&(self.adagrad.len() as u64).to_le_bytes());
        let mut rows = self.adagrad.clone();
        rows.sort_by_key(|(k, _)| (k.table, k.row));
        for (key, acc) in &rows {
            if acc.len() != self.dim as usize {
                return Err(JournalError::Corrupt(format!(
                    "accumulator {key:?} has width {} (expected {})",
                    acc.len(),
                    self.dim
                )));
            }
            b.extend_from_slice(&key.table.to_le_bytes());
            b.extend_from_slice(&key.row.to_le_bytes());
            for v in acc {
                b.extend_from_slice(&v.to_le_bytes());
            }
        }
        Ok(b)
    }

    /// Writes the journal to `dir/<file_name()>` atomically: the bytes land
    /// in a temp file first and are renamed into place, so a crash mid-write
    /// can truncate only the temp file, never a committed journal.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, JournalError> {
        std::fs::create_dir_all(dir)?;
        let body = self.encode_body()?;
        let mut bytes = Vec::with_capacity(MAGIC.len() + body.len() + 8);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&Checksum::of(&body).to_le_bytes());
        let path = dir.join(self.file_name());
        let tmp = dir.join(format!("{}.tmp", self.file_name()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and verifies a journal file.
    pub fn read(path: &Path) -> Result<RoundJournal, JournalError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::Corrupt("bad magic or truncated header".into()));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if Checksum::of(body) != stored {
            return Err(JournalError::Corrupt("checksum mismatch".into()));
        }
        Self::decode_body(body)
    }

    fn decode_body(b: &[u8]) -> Result<RoundJournal, JournalError> {
        let corrupt = |m: &str| JournalError::Corrupt(m.to_string());
        let mut cur = Cursor { bytes: b, pos: 0 };
        let rounds_done = cur.u64()?;
        let name_len = cur.u32()? as usize;
        if name_len > 4096 {
            return Err(corrupt("checkpoint name implausibly long"));
        }
        let checkpoint_file = String::from_utf8(cur.take(name_len)?.to_vec())
            .map_err(|_| corrupt("checkpoint name is not UTF-8"))?;
        let hits = cur.u64()?;
        let misses = cur.u64()?;
        let max_staleness = cur.u64()?;
        let traffic = (cur.u64()?, cur.u64()?, cur.u64()?, cur.u64()?);
        let guard_trips = cur.u64()?;
        let guard_rollbacks = cur.u64()?;
        let n_losses = cur.u64()? as usize;
        if n_losses > b.len() / 8 {
            return Err(corrupt("loss count exceeds body size"));
        }
        let mut round_losses = Vec::with_capacity(n_losses);
        for _ in 0..n_losses {
            round_losses.push(f64::from_le_bytes(cur.take(8)?.try_into().expect("8 bytes")));
        }
        let dim = cur.u32()?;
        let n_acc = cur.u64()? as usize;
        let row_bytes = 8 + 4 * dim as usize;
        if n_acc.checked_mul(row_bytes).is_none_or(|total| total > b.len()) {
            return Err(corrupt("accumulator count exceeds body size"));
        }
        let mut adagrad = Vec::with_capacity(n_acc);
        for _ in 0..n_acc {
            let table = cur.u32()?;
            let row = cur.u32()?;
            let acc: Vec<f32> = cur
                .take(4 * dim as usize)?
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            adagrad.push((ParamKey::new(table, row), acc));
        }
        if cur.pos != b.len() {
            return Err(corrupt("trailing bytes after accumulator section"));
        }
        Ok(RoundJournal {
            rounds_done,
            checkpoint_file,
            cache: CacheStats { hits, misses },
            max_staleness,
            traffic,
            guard_trips,
            guard_rollbacks,
            round_losses,
            dim,
            adagrad,
        })
    }
}

/// Bounds-checked reader over a journal body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            JournalError::Corrupt(format!("truncated body at offset {} (+{n})", self.pos))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Finds the newest *valid* journal in `dir`: candidates are scanned in
/// descending round order, and a corrupt or truncated file is skipped —
/// with a `journal_skipped` event when `log` is given — so one torn write
/// degrades resume to the previous boundary instead of failing it.
///
/// Returns `Ok(None)` for an empty or absent directory, or when every
/// candidate is corrupt.
pub fn latest_journal(
    dir: &Path,
    log: Option<&EventLog>,
) -> Result<Option<(PathBuf, RoundJournal)>, JournalError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with("journal-")
            && path.extension().and_then(|e| e.to_str()) == Some(JOURNAL_EXT)
        {
            candidates.push(path);
        }
    }
    // Zero-padded round numbers sort lexicographically; newest first.
    candidates.sort();
    for path in candidates.into_iter().rev() {
        match RoundJournal::read(&path) {
            Ok(j) => return Ok(Some((path, j))),
            Err(e) => {
                if let Some(log) = log {
                    log.emit(
                        "journal_skipped",
                        &[
                            ("path", Value::from(path.to_string_lossy().into_owned())),
                            ("error", Value::from(e.to_string())),
                        ],
                    );
                }
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> RoundJournal {
        RoundJournal {
            rounds_done: round,
            checkpoint_file: format!("ckpt-{round:010}.mamdrps"),
            cache: CacheStats { hits: 100, misses: 7 },
            max_staleness: 2,
            traffic: (11, 13, 1700, 1900),
            guard_trips: 1,
            guard_rollbacks: 0,
            round_losses: vec![0.7, 0.65, 0.61],
            dim: 3,
            adagrad: vec![
                (ParamKey::new(0, 1), vec![0.1, 0.2, 0.3]),
                (ParamKey::new(2, 0), vec![1.5, 0.1, 0.1]),
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mamdr-journal-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn roundtrip_is_exact() {
        let dir = tmp_dir("roundtrip");
        let j = sample(3);
        let path = j.write_to_dir(&dir).unwrap();
        assert!(path.ends_with("journal-0000000003.mamdrj"));
        let back = RoundJournal::read(&path).unwrap();
        assert_eq!(back, j);
        // No temp file left behind.
        assert!(!dir.join("journal-0000000003.mamdrj.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_is_detected() {
        let dir = tmp_dir("trunc");
        let path = sample(1).write_to_dir(&dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in 0..bytes.len() {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                RoundJournal::read(&path).is_err(),
                "truncation to {keep} of {} bytes must not parse",
                bytes.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let dir = tmp_dir("flip");
        let path = sample(1).write_to_dir(&dir).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            bad[byte] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            // Either the checksum catches it, or (for flips inside the
            // trailing digest itself) the digest no longer matches.
            assert!(RoundJournal::read(&path).is_err(), "flip at byte {byte} must not parse");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_journal_skips_corrupt_and_falls_back() {
        let dir = tmp_dir("latest");
        assert!(latest_journal(&dir, None).unwrap().is_none());
        sample(2).write_to_dir(&dir).unwrap();
        let newest = sample(5).write_to_dir(&dir).unwrap();
        // Newest wins when valid.
        let (path, j) = latest_journal(&dir, None).unwrap().unwrap();
        assert_eq!(path, newest);
        assert_eq!(j.rounds_done, 5);
        // Corrupt the newest: discovery falls back to round 2, and the
        // skip is logged.
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let log = EventLog::in_memory();
        let (_, j) = latest_journal(&dir, Some(&log)).unwrap().unwrap();
        assert_eq!(j.rounds_done, 2);
        let lines = log.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("journal_skipped"), "{}", lines[0]);
        assert!(lines[0].contains("checksum mismatch"), "{}", lines[0]);
        // Every journal corrupt: Ok(None), two skip events.
        std::fs::write(dir.join("journal-0000000002.mamdrj"), b"garbage").unwrap();
        let log = EventLog::in_memory();
        assert!(latest_journal(&dir, Some(&log)).unwrap().is_none());
        assert_eq!(log.lines().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
