//! The worker-side embedding cache (paper Fig. 7).

use crate::kv::{ParamKey, RowSource};
use std::collections::HashMap;

/// Hit/miss counters for one worker's cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Dynamic-cache hits (no PS round-trip).
    pub hits: u64,
    /// Misses that pulled the latest row from the PS.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when nothing was read).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Staleness of a worker's cached rows relative to the server.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StalenessStats {
    /// Largest per-row lag (server pushes since this worker's pull).
    pub max: u64,
    /// Mean per-row lag.
    pub mean: f64,
}

/// The static/dynamic cache pair of one worker.
///
/// * `static_cache` holds the value a row had when this worker first pulled
///   it during the current outer round — the Θ reference point of Eq. 3.
/// * `dynamic_cache` holds the worker's locally updated value Θ̃.
///
/// Both are cleared by [`WorkerCache::drain_outer_grads`] at the end of the
/// round, so the next round re-pulls fresh values (bounded staleness).
#[derive(Debug, Default)]
pub struct WorkerCache {
    static_cache: HashMap<ParamKey, Vec<f32>>,
    dynamic_cache: HashMap<ParamKey, Vec<f32>>,
    /// Server version of each row at the moment it was pulled.
    pulled_versions: HashMap<ParamKey, u64>,
    stats: CacheStats,
}

impl WorkerCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current (locally updated) value of a row.
    ///
    /// Dynamic-cache hit → no traffic. Miss → pull the latest value from
    /// the row source (the in-process PS or an RPC client), seed both
    /// caches.
    pub fn get<S: RowSource + ?Sized>(&mut self, src: &S, key: ParamKey) -> &[f32] {
        if !self.dynamic_cache.contains_key(&key) {
            let (latest, version) = src.pull_versioned(key);
            self.pulled_versions.insert(key, version);
            self.static_cache.insert(key, latest.clone());
            self.dynamic_cache.insert(key, latest);
            self.stats.misses += 1;
        } else {
            self.stats.hits += 1;
        }
        self.dynamic_cache.get(&key).expect("just inserted")
    }

    /// Warms the cache for a round's whole working set in one batched
    /// pull: every key not already cached is fetched through a single
    /// [`RowSource::pull_rows`] call (one RPC per wire chunk over the
    /// network) and seeds both caches, exactly as a lazy miss would.
    /// Duplicate and already-cached keys are skipped, so prefetching the
    /// keys a round will touch makes every subsequent [`WorkerCache::get`]
    /// a hit while leaving values, versions, and miss accounting identical
    /// to the lazy path.
    pub fn prefetch<S: RowSource + ?Sized>(&mut self, src: &S, keys: &[ParamKey]) {
        let mut missing = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &key in keys {
            if !self.dynamic_cache.contains_key(&key) && seen.insert(key) {
                missing.push(key);
            }
        }
        if missing.is_empty() {
            return;
        }
        let rows = src.pull_rows(&missing);
        debug_assert_eq!(rows.len(), missing.len(), "pull_rows preserves key order");
        for (key, (latest, version)) in missing.into_iter().zip(rows) {
            self.pulled_versions.insert(key, version);
            self.static_cache.insert(key, latest.clone());
            self.dynamic_cache.insert(key, latest);
            self.stats.misses += 1;
        }
    }

    /// Applies a local update to a cached row (must have been read first).
    pub fn update(&mut self, key: ParamKey, f: impl FnOnce(&mut [f32])) {
        let row = self.dynamic_cache.get_mut(&key).expect("update of a row that was never read");
        f(row);
    }

    /// Measures how stale the cached rows are right now: for each cached
    /// row, the number of server-side pushes that happened after this
    /// worker pulled it. This is the inconsistency the §IV-E protocol
    /// bounds — it resets to zero at every round boundary because the
    /// caches are cleared and re-pulled.
    /// One batched version probe covers every cached row (a single
    /// version-only request per wire chunk over the network, instead of
    /// one per key).
    pub fn staleness<S: RowSource + ?Sized>(&self, src: &S) -> StalenessStats {
        if self.pulled_versions.is_empty() {
            return StalenessStats::default();
        }
        let mut keys: Vec<ParamKey> = self.pulled_versions.keys().copied().collect();
        keys.sort_by_key(|k| (k.table, k.row));
        let current = src.versions_of(&keys);
        let mut max = 0u64;
        let mut total = 0u64;
        for (key, now) in keys.iter().zip(current) {
            let lag = now.saturating_sub(self.pulled_versions[key]);
            max = max.max(lag);
            total += lag;
        }
        let n = keys.len() as u64;
        StalenessStats { max, mean: total as f64 / n as f64 }
    }

    /// Ends the round: returns `(key, dynamic − static)` for every touched
    /// row and clears both caches.
    pub fn drain_outer_grads(&mut self) -> Vec<(ParamKey, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.dynamic_cache.len());
        for (key, dynamic) in self.dynamic_cache.drain() {
            let initial = self.static_cache.remove(&key).expect("static entry exists");
            let delta: Vec<f32> = dynamic.iter().zip(&initial).map(|(&d, &s)| d - s).collect();
            out.push((key, delta));
        }
        self.static_cache.clear();
        self.pulled_versions.clear();
        out
    }

    /// Number of rows currently cached.
    pub fn len(&self) -> usize {
        self.dynamic_cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.dynamic_cache.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::ParameterServer;

    fn server() -> ParameterServer {
        let ps = ParameterServer::new(2, 2);
        ps.init_row(ParamKey::new(0, 0), vec![1.0, 2.0]);
        ps.init_row(ParamKey::new(0, 1), vec![3.0, 4.0]);
        ps
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let ps = server();
        let mut cache = WorkerCache::new();
        let key = ParamKey::new(0, 0);
        assert_eq!(cache.get(&ps, key), &[1.0, 2.0]);
        assert_eq!(cache.get(&ps, key), &[1.0, 2.0]);
        assert_eq!(cache.get(&ps, key), &[1.0, 2.0]);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        // exactly one pull hit the server
        assert_eq!(ps.traffic().snapshot().0, 1);
    }

    #[test]
    fn prefetch_turns_round_reads_into_hits() {
        let ps = server();
        let mut cache = WorkerCache::new();
        let k0 = ParamKey::new(0, 0);
        let k1 = ParamKey::new(0, 1);
        // Duplicates in the prefetch set are pulled once.
        cache.prefetch(&ps, &[k0, k1, k0]);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // One batched pull hit the server for both rows.
        assert_eq!(ps.traffic().snapshot().0, 1);
        // Every read of a prefetched row is now a hit, values identical
        // to what lazy misses would have pulled.
        assert_eq!(cache.get(&ps, k0), &[1.0, 2.0]);
        assert_eq!(cache.get(&ps, k1), &[3.0, 4.0]);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
        assert_eq!(ps.traffic().snapshot().0, 1);
        // Re-prefetching cached keys is free.
        cache.prefetch(&ps, &[k0, k1]);
        assert_eq!(ps.traffic().snapshot().0, 1);
        // Drains behave exactly as with lazy population.
        cache.update(k0, |row| row[0] += 0.5);
        let mut grads = cache.drain_outer_grads();
        grads.sort_by_key(|(k, _)| k.row);
        assert_eq!(grads[0].1, vec![0.5, 0.0]);
        assert_eq!(grads[1].1, vec![0.0, 0.0]);
    }

    #[test]
    fn updates_stay_local_until_drain() {
        let ps = server();
        let mut cache = WorkerCache::new();
        let key = ParamKey::new(0, 0);
        cache.get(&ps, key);
        cache.update(key, |row| row[0] += 10.0);
        // The server still has the original value.
        assert_eq!(ps.read_silent(key).unwrap(), vec![1.0, 2.0]);
        // The cache serves the updated value.
        assert_eq!(cache.get(&ps, key), &[11.0, 2.0]);
    }

    #[test]
    fn drain_emits_deltas_and_clears() {
        let ps = server();
        let mut cache = WorkerCache::new();
        let k0 = ParamKey::new(0, 0);
        let k1 = ParamKey::new(0, 1);
        cache.get(&ps, k0);
        cache.get(&ps, k1);
        cache.update(k0, |row| {
            row[0] += 0.5;
            row[1] -= 0.25;
        });
        let mut grads = cache.drain_outer_grads();
        grads.sort_by_key(|(k, _)| k.row);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].1, vec![0.5, -0.25]);
        assert_eq!(grads[1].1, vec![0.0, 0.0]);
        assert!(cache.is_empty());
    }

    #[test]
    fn miss_after_drain_pulls_latest() {
        // Staleness bound: after a drain, the next read must see updates
        // other workers pushed in between.
        let ps = server();
        let mut cache = WorkerCache::new();
        let key = ParamKey::new(0, 0);
        cache.get(&ps, key);
        cache.drain_outer_grads();
        ps.push_delta(key, &[100.0, 0.0]);
        assert_eq!(cache.get(&ps, key), &[101.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "never read")]
    fn update_requires_prior_read() {
        let mut cache = WorkerCache::new();
        cache.update(ParamKey::new(0, 0), |_| {});
    }
}

#[cfg(test)]
mod staleness_tests {
    use super::*;
    use crate::kv::ParameterServer;

    #[test]
    fn staleness_counts_foreign_pushes() {
        let ps = ParameterServer::new(2, 2);
        let key = ParamKey::new(0, 0);
        ps.init_row(key, vec![0.0, 0.0]);
        let mut mine = WorkerCache::new();
        mine.get(&ps, key);
        assert_eq!(mine.staleness(&ps), StalenessStats { max: 0, mean: 0.0 });
        // Another worker pushes twice after my pull.
        ps.push_delta(key, &[1.0, 0.0]);
        ps.push_delta(key, &[1.0, 0.0]);
        let s = mine.staleness(&ps);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        // Draining re-pulls on the next read, resetting the lag.
        mine.drain_outer_grads();
        mine.get(&ps, key);
        assert_eq!(mine.staleness(&ps).max, 0);
    }

    #[test]
    fn staleness_of_empty_cache_is_zero() {
        let ps = ParameterServer::new(1, 1);
        let cache = WorkerCache::new();
        assert_eq!(cache.staleness(&ps), StalenessStats::default());
    }
}
