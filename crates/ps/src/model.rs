//! The embedding CTR scorer workers train through the cache.
//!
//! This is the embedding half of the RAW production model: four embedding
//! tables (user, item, user-group, item-category) scored as
//! `σ(u·v + g·c + b)` with analytic gradients. Embedding rows are the
//! large, sparse, contended state the §IV-E cache mechanism targets, so the
//! distributed simulation trains exactly them.

use crate::kv::ParamKey;

/// Embedding table ids on the parameter server.
pub mod tables {
    /// User embeddings.
    pub const USER: u32 = 0;
    /// Item embeddings.
    pub const ITEM: u32 = 1;
    /// User-group embeddings.
    pub const UGROUP: u32 = 2;
    /// Item-category embeddings.
    pub const ICAT: u32 = 3;
    /// Per-domain bias rows (width = embedding dim; only element 0 used).
    pub const DOMAIN_BIAS: u32 = 4;
}

/// One training example resolved to its parameter rows.
#[derive(Debug, Clone, Copy)]
pub struct ExampleKeys {
    /// User row.
    pub user: ParamKey,
    /// Item row.
    pub item: ParamKey,
    /// User-group row.
    pub ugroup: ParamKey,
    /// Item-category row.
    pub icat: ParamKey,
    /// Domain bias row.
    pub bias: ParamKey,
}

impl ExampleKeys {
    /// Builds the key set for `(user, item)` with side features and domain.
    pub fn new(user: u32, item: u32, ugroup: u32, icat: u32, domain: u32) -> Self {
        ExampleKeys {
            user: ParamKey::new(tables::USER, user),
            item: ParamKey::new(tables::ITEM, item),
            ugroup: ParamKey::new(tables::UGROUP, ugroup),
            icat: ParamKey::new(tables::ICAT, icat),
            bias: ParamKey::new(tables::DOMAIN_BIAS, domain),
        }
    }

    /// All five keys.
    pub fn all(&self) -> [ParamKey; 5] {
        [self.user, self.item, self.ugroup, self.icat, self.bias]
    }
}

/// The raw score `u·v + g·c + b` (pre-sigmoid).
pub fn score(u: &[f32], v: &[f32], g: &[f32], c: &[f32], bias: &[f32]) -> f32 {
    debug_assert_eq!(u.len(), v.len());
    debug_assert_eq!(g.len(), c.len());
    let uv: f32 = u.iter().zip(v).map(|(&a, &b)| a * b).sum();
    let gc: f32 = g.iter().zip(c).map(|(&a, &b)| a * b).sum();
    uv + gc + bias[0]
}

/// Numerically stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The BCE error signal `σ(score) − y`; multiplying it with the partner
/// row gives each row's gradient.
pub fn error_signal(raw_score: f32, label: f32) -> f32 {
    sigmoid(raw_score) - label
}

/// Numerically stable binary cross-entropy from the raw (pre-sigmoid)
/// score: `max(x, 0) − x·y + ln(1 + e^{−|x|})`.
pub fn log_loss(raw_score: f32, label: f32) -> f32 {
    let x = raw_score;
    x.max(0.0) - x * label + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_bilinear_plus_bias() {
        let u = [1.0, 2.0];
        let v = [3.0, -1.0];
        let g = [0.5, 0.5];
        let c = [2.0, 2.0];
        let b = [0.25, 0.0];
        assert_eq!(score(&u, &v, &g, &c, &b), 3.0 - 2.0 + 1.0 + 1.0 + 0.25);
    }

    #[test]
    fn error_signal_signs() {
        assert!(error_signal(5.0, 0.0) > 0.9);
        assert!(error_signal(-5.0, 1.0) < -0.9);
        assert!(error_signal(0.0, 1.0).abs() - 0.5 < 1e-6);
    }

    #[test]
    fn log_loss_matches_naive_formula_and_stays_finite() {
        for &(x, y) in &[(0.0f32, 1.0f32), (2.5, 0.0), (-1.5, 1.0)] {
            let p = sigmoid(x);
            let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            assert!((log_loss(x, y) - naive).abs() < 1e-5, "x={x} y={y}");
        }
        // The stable form must not overflow where the naive one would.
        assert!(log_loss(80.0, 0.0).is_finite());
        assert!(log_loss(-80.0, 1.0).is_finite());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // d BCE / d u_k = (σ(s) − y) · v_k
        let u = [0.3f32, -0.2];
        let v = [0.1f32, 0.4];
        let g = [0.0f32, 0.0];
        let c = [0.0f32, 0.0];
        let b = [0.0f32, 0.0];
        let y = 1.0f32;
        let loss = |uu: &[f32]| -> f32 {
            let s = score(uu, &v, &g, &c, &b);
            // stable bce with logits
            s.max(0.0) - s * y + (-s.abs()).exp().ln_1p()
        };
        let e = error_signal(score(&u, &v, &g, &c, &b), y);
        for k in 0..2 {
            let mut up = u;
            up[k] += 1e-3;
            let mut dn = u;
            dn[k] -= 1e-3;
            let numeric = (loss(&up) - loss(&dn)) / 2e-3;
            let analytic = e * v[k];
            assert!((numeric - analytic).abs() < 1e-3, "k={} {} vs {}", k, numeric, analytic);
        }
    }

    #[test]
    fn keys_route_to_distinct_tables() {
        let k = ExampleKeys::new(1, 2, 3, 4, 5);
        let tables: Vec<u32> = k.all().iter().map(|p| p.table).collect();
        let mut unique = tables.clone();
        unique.dedup();
        assert_eq!(tables, unique, "each key must live in its own table");
        assert_eq!(k.bias.row, 5);
    }
}
