//! Parameter-server checkpointing.
//!
//! The production system snapshots the parameter server so training can
//! resume after worker or server failures. The simulation mirrors that
//! with a compact binary dump of every row (and its Adagrad accumulator
//! state is deliberately *not* saved — matching the common deployment
//! choice of cold-starting optimizer state after recovery).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "MAMDRPS1" | u32 dim | u64 n_rows | n_rows × (u32 table, u32 row, dim × f32)
//! ```

use crate::kv::{ParamKey, ParameterServer};
use mamdr_obs::{EventLog, Value};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"MAMDRPS1";

/// A checkpointing error.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a valid checkpoint.
    Corrupt(String),
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every row of the server.
///
/// Rows are written in a deterministic order (sorted by key) so identical
/// server states produce byte-identical checkpoints.
pub fn save(ps: &ParameterServer, dim: usize, mut w: impl Write) -> Result<(), CheckpointError> {
    let mut rows = ps.dump_rows();
    rows.sort_by_key(|(k, _)| (k.table, k.row));
    w.write_all(MAGIC)?;
    w.write_all(&(dim as u32).to_le_bytes())?;
    w.write_all(&(rows.len() as u64).to_le_bytes())?;
    for (key, value) in rows {
        if value.len() != dim {
            return Err(CheckpointError::Corrupt(format!(
                "row {:?} has width {} (expected {})",
                key,
                value.len(),
                dim
            )));
        }
        w.write_all(&key.table.to_le_bytes())?;
        w.write_all(&key.row.to_le_bytes())?;
        for v in value {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores a checkpoint into a fresh server with `n_shards` shards.
pub fn load(mut r: impl Read, n_shards: usize) -> Result<ParameterServer, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let dim = u32::from_le_bytes(b4) as usize;
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n_rows = u64::from_le_bytes(b8) as usize;

    let ps = ParameterServer::new(n_shards, dim);
    let mut fbuf = vec![0u8; 4 * dim];
    for _ in 0..n_rows {
        r.read_exact(&mut b4)?;
        let table = u32::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let row = u32::from_le_bytes(b4);
        r.read_exact(&mut fbuf)?;
        let value: Vec<f32> =
            fbuf.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        ps.init_row(ParamKey::new(table, row), value);
    }
    Ok(ps)
}

/// File extension of on-disk parameter-server checkpoints.
pub const CHECKPOINT_EXT: &str = "mamdrps";

/// Writes a checkpoint to `dir/ckpt-<round>.mamdrps` and returns the path.
pub fn save_to_dir(
    ps: &ParameterServer,
    dim: usize,
    dir: &Path,
    round: u64,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("ckpt-{round:010}.{CHECKPOINT_EXT}"));
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
    save(ps, dim, &mut w)?;
    use std::io::Write as _;
    w.flush()?;
    Ok(path)
}

/// Quick structural validation of a checkpoint file: magic, plausible
/// header, and an exact file-length match against the declared row count.
/// Catches truncation and header corruption without parsing every row
/// (payload bit flips are the journal's checksum's job — the v1 checkpoint
/// format predates `mamdr-util` and carries no digest).
fn validate_checkpoint(path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 8 + 4 + 8];
    f.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let dim = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as u64;
    let n_rows = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let expected = 20 + n_rows.saturating_mul(8 + 4 * dim);
    let actual = f.metadata()?.len();
    if actual != expected {
        return Err(CheckpointError::Corrupt(format!(
            "file is {actual} bytes, header declares {expected} ({n_rows} rows × dim {dim})"
        )));
    }
    Ok(())
}

/// Finds the newest *structurally valid* checkpoint in `dir`: candidates
/// (`ckpt-<round>.mamdrps`, lexicographic on the zero-padded name) are
/// scanned newest-first, and a corrupt or truncated file is skipped — with
/// a `checkpoint_skipped` event when `log` is given — falling back to the
/// next-newest instead of failing the whole discovery.
///
/// This is the single discovery path shared by recovery (the PS trainer
/// resuming) and serving (`mamdr-serve` building a snapshot from the most
/// recent training state). Returns `Ok(None)` for an empty or absent
/// directory, or when every candidate is corrupt; non-checkpoint files are
/// ignored.
pub fn latest_checkpoint(
    dir: &Path,
    log: Option<&EventLog>,
) -> Result<Option<PathBuf>, CheckpointError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let is_ckpt = name.starts_with("ckpt-")
            && path.extension().and_then(|e| e.to_str()) == Some(CHECKPOINT_EXT);
        if is_ckpt {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates.into_iter().rev() {
        match validate_checkpoint(&path) {
            Ok(()) => return Ok(Some(path)),
            Err(e) => {
                if let Some(log) = log {
                    log.emit(
                        "checkpoint_skipped",
                        &[
                            ("path", Value::from(path.to_string_lossy().into_owned())),
                            ("error", Value::from(e.to_string())),
                        ],
                    );
                }
            }
        }
    }
    Ok(None)
}

/// Loads a checkpoint file into a fresh server with `n_shards` shards.
pub fn load_from_path(path: &Path, n_shards: usize) -> Result<ParameterServer, CheckpointError> {
    let r = std::io::BufReader::new(std::fs::File::open(path)?);
    load(r, n_shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_server() -> ParameterServer {
        let ps = ParameterServer::new(4, 3);
        for t in 0..2u32 {
            for r in 0..5u32 {
                ps.init_row(
                    ParamKey::new(t, r),
                    vec![t as f32, r as f32, t as f32 * 10.0 + r as f32],
                );
            }
        }
        ps
    }

    #[test]
    fn roundtrip_preserves_every_row() {
        let ps = sample_server();
        let mut buf = Vec::new();
        save(&ps, 3, &mut buf).unwrap();
        let restored = load(buf.as_slice(), 2).unwrap();
        assert_eq!(restored.n_rows(), ps.n_rows());
        for t in 0..2u32 {
            for r in 0..5u32 {
                let key = ParamKey::new(t, r);
                assert_eq!(restored.read_silent(key), ps.read_silent(key));
            }
        }
    }

    #[test]
    fn checkpoints_are_deterministic() {
        let mut a = Vec::new();
        save(&sample_server(), 3, &mut a).unwrap();
        let mut b = Vec::new();
        save(&sample_server(), 3, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load(&b"NOTMAGIC"[..], 1),
            Err(CheckpointError::Corrupt(_)) | Err(CheckpointError::Io(_))
        ));
        // truncated body
        let ps = sample_server();
        let mut buf = Vec::new();
        save(&ps, 3, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(load(buf.as_slice(), 1).is_err());
    }

    #[test]
    fn latest_checkpoint_finds_highest_round() {
        let dir = std::env::temp_dir().join(format!("mamdr-ckpt-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Absent directory: no checkpoint, no error.
        assert!(latest_checkpoint(&dir, None).unwrap().is_none());

        let ps = sample_server();
        let p3 = save_to_dir(&ps, 3, &dir, 3).unwrap();
        let p12 = save_to_dir(&ps, 3, &dir, 12).unwrap();
        assert_ne!(p3, p12);
        // Distractors that must be ignored by discovery.
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::write(dir.join("ckpt-9999999999.tmp"), "x").unwrap();
        let found = latest_checkpoint(&dir, None).unwrap().expect("checkpoint present");
        assert_eq!(found, p12, "round 12 must shadow round 3");

        // The discovered file round-trips into a working server.
        let restored = load_from_path(&found, 2).unwrap();
        assert_eq!(restored.n_rows(), ps.n_rows());
        assert_eq!(restored.value_dim(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_checkpoint_skips_corrupt_files_and_logs() {
        let dir = std::env::temp_dir().join(format!("mamdr-ckpt-skip-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ps = sample_server();
        let good = save_to_dir(&ps, 3, &dir, 4).unwrap();
        let newer = save_to_dir(&ps, 3, &dir, 9).unwrap();

        // Truncate the newest: discovery must fall back to round 4 and log.
        let bytes = std::fs::read(&newer).unwrap();
        std::fs::write(&newer, &bytes[..bytes.len() - 3]).unwrap();
        let log = mamdr_obs::EventLog::in_memory();
        let found = latest_checkpoint(&dir, Some(&log)).unwrap().expect("fallback present");
        assert_eq!(found, good);
        let lines = log.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("checkpoint_skipped"), "{}", lines[0]);
        assert!(lines[0].contains("ckpt-0000000009"), "{}", lines[0]);

        // Bad magic on the fallback too: nothing valid remains.
        std::fs::write(&good, b"NOTMAGIC________________").unwrap();
        assert!(latest_checkpoint(&dir, None).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restored_server_continues_training() {
        let ps = sample_server();
        let mut buf = Vec::new();
        save(&ps, 3, &mut buf).unwrap();
        let restored = load(buf.as_slice(), 4).unwrap();
        let key = ParamKey::new(0, 0);
        restored.push_delta(key, &[1.0, 1.0, 1.0]);
        let v = restored.read_silent(key).unwrap();
        assert_eq!(v, vec![1.0, 1.0, 1.0]);
    }
}
