//! # mamdr-ps
//!
//! An in-process simulation of the paper's large-scale PS-Worker deployment
//! (§IV-E): a sharded parameter server, worker threads running the MAMDR
//! inner loop on their data partitions, and the **embedding PS-Worker
//! cache** — the static-cache / dynamic-cache pair that cuts embedding
//! synchronization traffic and bounds staleness.
//!
//! ## What is simulated, and how faithfully
//!
//! The paper runs 40 parameter servers and 400 workers over 4.9×10⁸
//! samples. Here the parameter server is a sharded in-memory KV store
//! behind `parking_lot::RwLock`s, workers are `crossbeam` scoped threads,
//! and "network traffic" is counted byte-accurately on every pull/push.
//! That preserves exactly the quantities the §IV-E mechanism optimizes —
//! number of synchronizations and bytes moved — while fitting on one
//! machine (see DESIGN.md, substitution 3).
//!
//! The worker-side model is the embedding part of the RAW production model
//! (a factorization-style CTR scorer with user/item/group/category rows and
//! per-row biases) with analytic gradients, because the cache mechanism is
//! about *embedding* parameters: they are the large, sparse, actively
//! updated state the paper caches.
//!
//! ## Cache protocol (paper Fig. 7)
//!
//! * At the start of an outer round a worker's **static-cache** snapshots
//!   every parameter row it first touches; it stays frozen for the round.
//! * During the inner loop, reads hit the **dynamic-cache**; a miss pulls
//!   the *latest* row from the PS (bounding staleness), seeds both caches
//!   and counts traffic once.
//! * After the inner loop the worker pushes `dynamic − static` per touched
//!   row (the Reptile-style outer gradient of Eq. 3) and clears both caches.
//!
//! The `NoCache` mode pulls every row on every read and pushes every update
//! immediately — the baseline the `pscache` benchmark compares against.

pub mod cache;
pub mod checkpoint;
pub mod guard;
pub mod journal;
pub mod kv;
pub mod model;
pub mod publish;
pub mod shard;
pub mod trainer;

pub use cache::{CacheStats, StalenessStats, WorkerCache};
pub use guard::{outer_grad_norm, GuardConfig, GuardRail, GuardVerdict};
pub use journal::{latest_journal, JournalError, RoundJournal};
pub use kv::{ParamKey, ParameterServer, RowSource, TimedRowSource, TrafficStats, WIRE_BATCH_KEYS};
pub use publish::{
    latest_snapshot, snapshot_path, write_atomic_bytes, ContinualPublisher, PublishOutcome,
    PublisherFaults, SNAPSHOT_EXT,
};
pub use shard::{
    latest_manifest, load_manifest_state, merge_stores, route_chunks, shard_dir, ManifestError,
    ManifestState, ShardFiles, ShardManifest, ShardMap, MANIFEST_EXT,
};
pub use trainer::{
    evaluate_server, partition_domains, partition_keys, run_cached_round, seed_server,
    worker_round_seed, CachedRoundOutput, DistributedConfig, DistributedMamdr, DistributedReport,
    SyncMode,
};
