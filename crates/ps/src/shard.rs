//! Cross-server sharding: consistent key routing and the manifest commit
//! point.
//!
//! MAMDR's production deployment spreads the parameter server over 440
//! machines (PAPER.md §VI); this module is the reproduction's version of
//! that split. A [`ShardMap`] assigns every [`ParamKey`] to one of N
//! *server* shards by FNV-1a hash — deliberately a different function from
//! the Fibonacci hash [`ParameterServer`] uses for its internal lock
//! stripes, so the cross-server route and the in-store stripe stay
//! independent. The map is versioned: a manifest records which map wrote a
//! set of shard files, and resuming into a different shard count bumps the
//! version while the hash itself re-routes every row (consistent routing
//! is a pure function of the key and the shard count, never of history —
//! that is what makes an N→M rehash a deterministic merge-and-replay).
//!
//! Persistence is shard-parallel with a single commit point: each shard
//! writes its own checkpoint and journal under `dir/shard-<i>/` using the
//! unchanged single-server formats, and only after every shard file is
//! durable does the driver write `manifest-<round>.mamdrmf` (atomically,
//! temp file + rename, FNV-checksummed) naming each file and its digest.
//! A crash before the manifest leaves orphaned shard files and the
//! previous manifest wins; a torn manifest fails its checksum and
//! discovery falls back — exactly the journal's crash contract, lifted one
//! level up.

use crate::checkpoint::{self, CheckpointError};
use crate::journal::{JournalError, RoundJournal};
use crate::kv::{ParamKey, ParameterServer, WIRE_BATCH_KEYS};
use mamdr_obs::{EventLog, Value};
use mamdr_util::Checksum;
use std::path::{Path, PathBuf};

/// Assigns every parameter row to one of `n_shards` servers.
///
/// The owner is `FNV1a64(table_le ‖ row_le) mod n_shards` — a pure
/// function of the key bytes and the shard count, with no per-process
/// state, so every client in every process routes identically (the
/// property the exactly-once push contract rests on: one row is only ever
/// written through one server's sequence space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    n_shards: usize,
    version: u64,
}

impl ShardMap {
    /// A first-generation map over `n_shards` servers.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards >= 1, "a shard map needs at least one shard");
        ShardMap { n_shards, version: 1 }
    }

    /// A map with an explicit version (topology changes bump it so shard
    /// files written under different maps are never confused).
    pub fn with_version(n_shards: usize, version: u64) -> Self {
        assert!(n_shards >= 1, "a shard map needs at least one shard");
        ShardMap { n_shards, version }
    }

    /// Number of server shards this map routes over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The map generation (recorded in manifests).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shard that owns `key`.
    pub fn owner(&self, key: ParamKey) -> usize {
        if self.n_shards == 1 {
            return 0;
        }
        let mut bytes = [0u8; 8];
        bytes[..4].copy_from_slice(&key.table.to_le_bytes());
        bytes[4..].copy_from_slice(&key.row.to_le_bytes());
        (Checksum::of(&bytes) % self.n_shards as u64) as usize
    }

    /// Splits a key batch into per-shard index lists, preserving input
    /// order within every shard. This is the single partitioning primitive
    /// both sides of the wire use: the client routes pull/push sub-batches
    /// with it, and re-assembling results by these indices reconstructs
    /// the exact input order regardless of how shard responses interleave.
    pub fn partition_indices(&self, keys: &[ParamKey]) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.n_shards];
        for (i, &key) in keys.iter().enumerate() {
            parts[self.owner(key)].push(i);
        }
        parts
    }
}

/// Pull-RPC count of a key batch routed over `n_shards` servers: each
/// shard's sub-batch costs one request per [`WIRE_BATCH_KEYS`] chunk, and
/// an unused shard costs nothing. With one shard this is exactly the
/// single-server `div_ceil` — which is why the in-process trainer can
/// model any sharded topology's traffic by counting with the same route.
pub fn route_chunks(keys: &[ParamKey], n_shards: usize) -> u64 {
    if n_shards <= 1 {
        return keys.len().div_ceil(WIRE_BATCH_KEYS) as u64;
    }
    let map = ShardMap::new(n_shards);
    let mut counts = vec![0usize; n_shards];
    for &key in keys {
        counts[map.owner(key)] += 1;
    }
    counts.into_iter().filter(|&c| c > 0).map(|c| c.div_ceil(WIRE_BATCH_KEYS) as u64).sum()
}

/// The subdirectory holding shard `i`'s checkpoint and journal files.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

/// File extension of on-disk shard manifests.
pub const MANIFEST_EXT: &str = "mamdrmf";

const MAGIC: &[u8; 8] = b"MAMDRMF1";

/// A manifest error.
#[derive(Debug)]
pub enum ManifestError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid manifest, or a referenced shard file is
    /// missing or fails its recorded digest.
    Corrupt(String),
}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

impl From<CheckpointError> for ManifestError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => ManifestError::Io(e),
            CheckpointError::Corrupt(m) => ManifestError::Corrupt(m),
        }
    }
}

impl From<JournalError> for ManifestError {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(e) => ManifestError::Io(e),
            JournalError::Corrupt(m) => ManifestError::Corrupt(m),
        }
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "I/O error: {e}"),
            ManifestError::Corrupt(m) => write!(f, "corrupt manifest: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One shard's committed files at a round boundary: paths relative to the
/// checkpoint directory plus the FNV-1a digest of each file's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFiles {
    /// Relative path of the shard's parameter checkpoint.
    pub checkpoint: String,
    /// FNV-1a 64 digest of the checkpoint file's bytes.
    pub checkpoint_fnv: u64,
    /// Relative path of the shard's round journal.
    pub journal: String,
    /// FNV-1a 64 digest of the journal file's bytes.
    pub journal_fnv: u64,
}

/// The commit point of a sharded round boundary: which shard files, under
/// which shard map, make up round `rounds_done`'s durable state.
///
/// A round is committed if and only if its manifest exists, parses, and
/// every referenced file matches its recorded digest — shard files alone
/// are provisional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Rounds fully applied before this manifest was written.
    pub rounds_done: u64,
    /// Generation of the [`ShardMap`] that routed these files.
    pub map_version: u64,
    /// Per-shard committed files, indexed by shard id.
    pub shards: Vec<ShardFiles>,
}

impl ShardManifest {
    /// Number of shards this manifest commits.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The on-disk file name for this manifest's round boundary.
    pub fn file_name(&self) -> String {
        format!("manifest-{:010}.{MANIFEST_EXT}", self.rounds_done)
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + self.shards.len() * 64);
        b.extend_from_slice(&self.rounds_done.to_le_bytes());
        b.extend_from_slice(&self.map_version.to_le_bytes());
        b.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for files in &self.shards {
            for (path, fnv) in
                [(&files.checkpoint, files.checkpoint_fnv), (&files.journal, files.journal_fnv)]
            {
                let bytes = path.as_bytes();
                b.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                b.extend_from_slice(bytes);
                b.extend_from_slice(&fnv.to_le_bytes());
            }
        }
        b
    }

    /// Writes the manifest to `dir/<file_name()>` atomically (temp file +
    /// rename). Call this only after every referenced shard file is on
    /// disk: the rename is the commit point of the whole round.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, ManifestError> {
        std::fs::create_dir_all(dir)?;
        let body = self.encode_body();
        let mut bytes = Vec::with_capacity(MAGIC.len() + body.len() + 8);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&Checksum::of(&body).to_le_bytes());
        let path = dir.join(self.file_name());
        let tmp = dir.join(format!("{}.tmp", self.file_name()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Reads and verifies a manifest file (the manifest itself, not the
    /// files it references — see [`ShardManifest::verify_files`]).
    pub fn read(path: &Path) -> Result<ShardManifest, ManifestError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(ManifestError::Corrupt("bad magic or truncated header".into()));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if Checksum::of(body) != stored {
            return Err(ManifestError::Corrupt("checksum mismatch".into()));
        }
        Self::decode_body(body)
    }

    fn decode_body(b: &[u8]) -> Result<ShardManifest, ManifestError> {
        let corrupt = |m: &str| ManifestError::Corrupt(m.to_string());
        let mut cur = Cursor { bytes: b, pos: 0 };
        let rounds_done = cur.u64()?;
        let map_version = cur.u64()?;
        let n_shards = cur.u32()? as usize;
        if n_shards == 0 || n_shards > 4096 {
            return Err(corrupt("implausible shard count"));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let entry = |cur: &mut Cursor| -> Result<(String, u64), ManifestError> {
                let len = cur.u32()? as usize;
                if len > 4096 {
                    return Err(corrupt("file name implausibly long"));
                }
                let path = String::from_utf8(cur.take(len)?.to_vec())
                    .map_err(|_| corrupt("file name is not UTF-8"))?;
                Ok((path, cur.u64()?))
            };
            let (checkpoint, checkpoint_fnv) = entry(&mut cur)?;
            let (journal, journal_fnv) = entry(&mut cur)?;
            shards.push(ShardFiles { checkpoint, checkpoint_fnv, journal, journal_fnv });
        }
        if cur.pos != b.len() {
            return Err(corrupt("trailing bytes after shard section"));
        }
        Ok(ShardManifest { rounds_done, map_version, shards })
    }

    /// Verifies that every referenced shard file exists under `dir` and
    /// matches its recorded digest. A manifest whose files fail this is
    /// not a commit point — discovery skips it.
    pub fn verify_files(&self, dir: &Path) -> Result<(), ManifestError> {
        for (i, files) in self.shards.iter().enumerate() {
            for (path, fnv) in
                [(&files.checkpoint, files.checkpoint_fnv), (&files.journal, files.journal_fnv)]
            {
                let bytes = std::fs::read(dir.join(path)).map_err(|e| {
                    ManifestError::Corrupt(format!("shard {i} file '{path}' unreadable: {e}"))
                })?;
                if Checksum::of(&bytes) != fnv {
                    return Err(ManifestError::Corrupt(format!(
                        "shard {i} file '{path}' fails its recorded digest"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Bounds-checked reader over a manifest body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ManifestError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            ManifestError::Corrupt(format!("truncated body at offset {} (+{n})", self.pos))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ManifestError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ManifestError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Finds the newest *fully committed* manifest in `dir`: candidates are
/// scanned newest-first, and one that fails to parse, fails its checksum,
/// or references a missing/corrupt shard file is skipped — with a
/// `manifest_skipped` event when `log` is given — so a crash between
/// shard-file writes and the manifest rename degrades recovery to the
/// previous round boundary instead of failing it.
pub fn latest_manifest(
    dir: &Path,
    log: Option<&EventLog>,
) -> Result<Option<(PathBuf, ShardManifest)>, ManifestError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with("manifest-")
            && path.extension().and_then(|e| e.to_str()) == Some(MANIFEST_EXT)
        {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates.into_iter().rev() {
        let verified = ShardManifest::read(&path).and_then(|m| {
            m.verify_files(dir)?;
            Ok(m)
        });
        match verified {
            Ok(m) => return Ok(Some((path, m))),
            Err(e) => {
                if let Some(log) = log {
                    log.emit(
                        "manifest_skipped",
                        &[
                            ("path", Value::from(path.to_string_lossy().into_owned())),
                            ("error", Value::from(e.to_string())),
                        ],
                    );
                }
            }
        }
    }
    Ok(None)
}

/// A committed sharded round boundary, loaded and merged: everything a
/// driver needs to rebuild stores for *any* shard count.
#[derive(Debug)]
pub struct ManifestState {
    /// The manifest that committed this state.
    pub manifest: ShardManifest,
    /// Every parameter row across all shards, key-sorted.
    pub rows: Vec<(ParamKey, Vec<f32>)>,
    /// Every Adagrad accumulator row across all shards, key-sorted.
    pub adagrad: Vec<(ParamKey, Vec<f32>)>,
    /// Shard 0's journal: the global aggregates (losses, cache,
    /// staleness, guard counters) are duplicated into every shard's
    /// journal, so any one of them carries the run-level resume metadata.
    pub meta: RoundJournal,
    /// Global wire traffic at the boundary: the per-shard journal traffic
    /// snapshots summed component-wise (each shard journals only its own
    /// store's counters).
    pub traffic: (u64, u64, u64, u64),
}

/// Loads and merges every shard file a manifest commits. The merged rows
/// are independent of the shard count that wrote them — which is exactly
/// the manifest-driven rehash: resume re-routes these rows through
/// whatever [`ShardMap`] the new topology uses.
pub fn load_manifest_state(
    dir: &Path,
    manifest: &ShardManifest,
) -> Result<ManifestState, ManifestError> {
    let mut rows = Vec::new();
    let mut adagrad = Vec::new();
    let mut meta: Option<RoundJournal> = None;
    let mut traffic = (0u64, 0u64, 0u64, 0u64);
    for (i, files) in manifest.shards.iter().enumerate() {
        let store = checkpoint::load_from_path(&dir.join(&files.checkpoint), 1)?;
        rows.extend(store.dump_rows());
        let journal = RoundJournal::read(&dir.join(&files.journal))?;
        if journal.rounds_done != manifest.rounds_done {
            return Err(ManifestError::Corrupt(format!(
                "shard {i} journal is at round {} but the manifest commits round {}",
                journal.rounds_done, manifest.rounds_done
            )));
        }
        adagrad.extend(journal.adagrad.iter().cloned());
        traffic.0 += journal.traffic.0;
        traffic.1 += journal.traffic.1;
        traffic.2 += journal.traffic.2;
        traffic.3 += journal.traffic.3;
        if meta.is_none() {
            meta = Some(journal);
        }
    }
    let meta = meta.ok_or_else(|| ManifestError::Corrupt("manifest commits zero shards".into()))?;
    rows.sort_by_key(|(k, _)| (k.table, k.row));
    adagrad.sort_by_key(|(k, _)| (k.table, k.row));
    Ok(ManifestState { manifest: manifest.clone(), rows, adagrad, meta, traffic })
}

/// Merges several shard stores into one fresh store (driver-side: final
/// evaluation and the merged checkpoint artifact). Values, accumulators,
/// and row versions are copied; traffic counters are *not* — the caller
/// aggregates those across shards itself.
pub fn merge_stores(stores: &[&ParameterServer], n_stripes: usize, dim: usize) -> ParameterServer {
    let merged = ParameterServer::new(n_stripes, dim);
    for store in stores {
        for (key, value) in store.dump_rows() {
            merged.init_row(key, value);
        }
        for (key, acc) in store.dump_adagrad() {
            merged.restore_adagrad_row(key, acc);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(table: u32, row: u32) -> ParamKey {
        ParamKey::new(table, row)
    }

    #[test]
    fn owner_matches_golden_fnv_values() {
        // Hard-coded FNV-1a 64 digests of the little-endian key bytes,
        // computed independently of `mamdr_util::Checksum`: the route is
        // part of the persistence format (manifests written by one
        // process must be re-routable by another), so a change to the
        // hash is a format break and must fail here.
        let golden: &[(u32, u32, u64)] = &[
            (0, 0, 0xa8c7_f832_281a_39c5),
            (1, 2, 0xc9c2_8939_c996_68c6),
            (3, 7, 0xa7dd_6311_83fc_d511),
            (4, 1, 0x8ce2_3005_a627_54b0),
            (2, 9, 0x4698_3a7e_9970_f5fe),
            (7, 5, 0x6bbc_ff40_b659_0a37),
        ];
        for &(t, r, h) in golden {
            for n in [2usize, 4, 8] {
                let map = ShardMap::new(n);
                assert_eq!(
                    map.owner(key(t, r)),
                    (h % n as u64) as usize,
                    "key ({t},{r}) over {n} shards"
                );
            }
        }
        // One shard owns everything without hashing.
        assert_eq!(ShardMap::new(1).owner(key(9, 9)), 0);
    }

    proptest! {
        #[test]
        fn owner_is_stable_and_in_range(table in 0u32..64, row in 0u32..10_000, n in 1usize..16) {
            let map = ShardMap::new(n);
            let owner = map.owner(key(table, row));
            prop_assert!(owner < n);
            // Stable: a rebuilt map (as another process would build it)
            // routes identically.
            prop_assert_eq!(ShardMap::new(n).owner(key(table, row)), owner);
        }

        #[test]
        fn partition_preserves_global_sorted_order(
            mut rows in proptest::collection::vec((0u32..8, 0u32..2_000), 0..300),
            n in 1usize..9,
        ) {
            // The trainer applies pushes in key-sorted order; routing must
            // let that order be reconstructed. Partition a key-sorted
            // batch, then concatenate the per-shard sub-batches back by
            // their recorded indices: the result is the input, and every
            // sub-batch is itself sorted.
            rows.sort_unstable();
            rows.dedup();
            let keys: Vec<ParamKey> = rows.iter().map(|&(t, r)| key(t, r)).collect();
            let map = ShardMap::new(n);
            let parts = map.partition_indices(&keys);
            prop_assert_eq!(parts.len(), n);
            let mut seen = vec![false; keys.len()];
            for (shard, part) in parts.iter().enumerate() {
                for window in part.windows(2) {
                    prop_assert!(window[0] < window[1], "sub-batch order broken");
                }
                for &i in part {
                    prop_assert_eq!(map.owner(keys[i]), shard);
                    prop_assert!(!seen[i], "key routed twice");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s), "key dropped by routing");
        }

        #[test]
        fn rehash_moves_only_reowned_keys(
            rows in proptest::collection::vec((0u32..8, 0u32..2_000), 1..200),
            n in 1usize..9,
            m in 1usize..9,
        ) {
            // An N→M rehash relocates exactly the keys whose owner differs
            // under the two maps — no key is lost, none moves gratuitously.
            let from = ShardMap::new(n);
            let to = ShardMap::with_version(m, from.version() + 1);
            for &(t, r) in &rows {
                let k = key(t, r);
                let moved = from.owner(k) != to.owner(k);
                if n == m {
                    prop_assert!(!moved, "same shard count must not move {k:?}");
                }
                // The destination is always the pure hash route.
                prop_assert_eq!(to.owner(k), (ShardMap::new(m).owner(k)));
            }
        }
    }

    #[test]
    fn route_chunks_degenerates_to_div_ceil_at_one_shard() {
        let keys: Vec<ParamKey> = (0..WIRE_BATCH_KEYS as u32 + 1).map(|r| key(0, r)).collect();
        assert_eq!(route_chunks(&keys, 1), 2);
        assert_eq!(route_chunks(&keys[..WIRE_BATCH_KEYS], 1), 1);
        assert_eq!(route_chunks(&[], 1), 0);
        assert_eq!(route_chunks(&[], 4), 0);
        // Over several shards every non-empty sub-batch costs at least one
        // chunk, and the total can only grow.
        let small: Vec<ParamKey> = (0..10).map(|r| key(1, r)).collect();
        let sharded = route_chunks(&small, 4);
        assert!((1..=4).contains(&sharded), "{sharded}");
        assert!(sharded >= route_chunks(&small, 1));
        // Exact: count distinct owners by hand.
        let map = ShardMap::new(4);
        let owners: std::collections::HashSet<usize> =
            small.iter().map(|&k| map.owner(k)).collect();
        assert_eq!(sharded as usize, owners.len());
    }

    fn sample_manifest(round: u64) -> ShardManifest {
        ShardManifest {
            rounds_done: round,
            map_version: 1,
            shards: vec![
                ShardFiles {
                    checkpoint: format!("shard-0/ckpt-{round:010}.mamdrps"),
                    checkpoint_fnv: 0xDEAD,
                    journal: format!("shard-0/journal-{round:010}.mamdrj"),
                    journal_fnv: 0xBEEF,
                },
                ShardFiles {
                    checkpoint: format!("shard-1/ckpt-{round:010}.mamdrps"),
                    checkpoint_fnv: 0xF00D,
                    journal: format!("shard-1/journal-{round:010}.mamdrj"),
                    journal_fnv: 0xCAFE,
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mamdr-shard-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn manifest_roundtrip_is_exact() {
        let dir = tmp_dir("roundtrip");
        let m = sample_manifest(7);
        let path = m.write_to_dir(&dir).unwrap();
        assert!(path.ends_with("manifest-0000000007.mamdrmf"));
        assert_eq!(ShardManifest::read(&path).unwrap(), m);
        assert!(!dir.join("manifest-0000000007.mamdrmf.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_detects_truncation_and_bit_flips() {
        let dir = tmp_dir("corrupt");
        let path = sample_manifest(1).write_to_dir(&dir).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for keep in 0..clean.len() {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(ShardManifest::read(&path).is_err(), "truncation to {keep} must not parse");
        }
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            bad[byte] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(ShardManifest::read(&path).is_err(), "flip at byte {byte} must not parse");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes real per-shard checkpoint/journal files for `round` and a
    /// manifest committing them, routing `dim`-wide rows over two shards.
    fn committed_round(dir: &Path, round: u64) -> ShardManifest {
        let map = ShardMap::new(2);
        let dim = 2usize;
        let stores = [ParameterServer::new(1, dim), ParameterServer::new(1, dim)];
        for r in 0..12u32 {
            let k = key(0, r);
            stores[map.owner(k)].init_row(k, vec![r as f32, round as f32]);
        }
        let mut shards = Vec::new();
        for (i, store) in stores.iter().enumerate() {
            let sdir = shard_dir(dir, i);
            let ckpt = checkpoint::save_to_dir(store, dim, &sdir, round).unwrap();
            let journal = RoundJournal {
                rounds_done: round,
                checkpoint_file: format!("ckpt-{round:010}.mamdrps"),
                cache: crate::cache::CacheStats::default(),
                max_staleness: 0,
                traffic: (0, 0, 0, 0),
                guard_trips: 0,
                guard_rollbacks: 0,
                round_losses: vec![0.5; round as usize],
                dim: dim as u32,
                adagrad: store
                    .dump_rows()
                    .into_iter()
                    .map(|(k, _)| (k, vec![0.1 + round as f32; dim]))
                    .collect(),
            };
            let jpath = journal.write_to_dir(&sdir).unwrap();
            shards.push(ShardFiles {
                checkpoint: format!("shard-{i}/ckpt-{round:010}.mamdrps"),
                checkpoint_fnv: Checksum::of(&std::fs::read(&ckpt).unwrap()),
                journal: format!("shard-{i}/journal-{round:010}.mamdrj"),
                journal_fnv: Checksum::of(&std::fs::read(&jpath).unwrap()),
            });
        }
        let manifest = ShardManifest { rounds_done: round, map_version: 1, shards };
        manifest.write_to_dir(dir).unwrap();
        manifest
    }

    #[test]
    fn latest_manifest_requires_committed_files() {
        let dir = tmp_dir("latest");
        assert!(latest_manifest(&dir, None).unwrap().is_none());
        committed_round(&dir, 2);
        let newest = committed_round(&dir, 5);
        let (_, found) = latest_manifest(&dir, None).unwrap().unwrap();
        assert_eq!(found, newest);
        // Corrupt one shard file the newest manifest references: the
        // commit point dissolves and discovery falls back to round 2,
        // logging the skip.
        let victim = dir.join(&newest.shards[1].checkpoint);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let log = EventLog::in_memory();
        let (_, found) = latest_manifest(&dir, Some(&log)).unwrap().unwrap();
        assert_eq!(found.rounds_done, 2);
        let lines = log.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("manifest_skipped"), "{}", lines[0]);
        assert!(lines[0].contains("digest"), "{}", lines[0]);
        // Delete a round-2 file too: nothing committed remains.
        std::fs::remove_file(dir.join(&found.shards[0].journal)).unwrap();
        assert!(latest_manifest(&dir, None).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_state_merges_and_rehashes() {
        let dir = tmp_dir("merge");
        let manifest = committed_round(&dir, 3);
        let state = load_manifest_state(&dir, &manifest).unwrap();
        assert_eq!(state.rows.len(), 12);
        assert_eq!(state.adagrad.len(), 12);
        assert_eq!(state.meta.rounds_done, 3);
        assert_eq!(state.meta.round_losses.len(), 3);
        // Key-sorted merge.
        for w in state.rows.windows(2) {
            assert!((w[0].0.table, w[0].0.row) < (w[1].0.table, w[1].0.row));
        }
        // Rehash 2→3: routing the merged rows through a 3-shard map keeps
        // every row exactly once and agrees with the pure hash route.
        let to = ShardMap::with_version(3, state.manifest.map_version + 1);
        let keys: Vec<ParamKey> = state.rows.iter().map(|(k, _)| *k).collect();
        let parts = to.partition_indices(&keys);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), keys.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_stores_copies_values_and_accumulators() {
        let a = ParameterServer::new(1, 2);
        let b = ParameterServer::new(1, 2);
        a.init_row(key(0, 0), vec![1.0, 2.0]);
        b.init_row(key(0, 1), vec![3.0, 4.0]);
        b.push_outer_grad(key(0, 1), &[1.0, 1.0], 0.5);
        let merged = merge_stores(&[&a, &b], 2, 2);
        assert_eq!(merged.n_rows(), 2);
        assert_eq!(merged.read_silent(key(0, 0)), Some(vec![1.0, 2.0]));
        assert_eq!(merged.read_silent(key(0, 1)), b.read_silent(key(0, 1)));
        assert_eq!(merged.dump_adagrad().len(), 1);
    }
}
