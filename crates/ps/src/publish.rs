//! Continual snapshot publication: the train-side half of the
//! train→publish→serve loop.
//!
//! Every `publish_every` rounds the distributed trainer encodes a serving
//! snapshot of the live (merged, sharded) store and hands the bytes to a
//! [`ContinualPublisher`], which commits them to a publish directory with
//! the same atomic discipline as checkpoints and journals: write a
//! same-directory `*.tmp`, fsync, then rename — the rename is the sole
//! commit point. A watcher (or the serve-side gate) therefore never
//! observes a half-written snapshot, no matter where the publisher dies.
//!
//! This module is deliberately format-agnostic: it moves *bytes*, so the
//! serving-snapshot encoding stays in `mamdr-serve` (which depends on this
//! crate, not vice versa) and the publisher also works for any future
//! artifact kind. Scheduled chaos — a mid-write crash or a post-digest
//! byte flip — is injected here, deterministically per round, so the
//! downstream gate's rejection counters are exactly reproducible.

use mamdr_obs::{Counter, MetricsRegistry};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File extension of a committed serving snapshot.
pub const SNAPSHOT_EXT: &str = "mamdrsv";

/// The committed file name of round `round`'s snapshot
/// (`snapshot-0000000012.mamdrsv`); zero-padded so lexicographic order is
/// round order.
pub fn snapshot_file_name(round: u64) -> String {
    format!("snapshot-{round:010}.{SNAPSHOT_EXT}")
}

/// The committed path of round `round`'s snapshot under `dir`.
pub fn snapshot_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(snapshot_file_name(round))
}

/// Parses the round index out of a file name produced by
/// [`snapshot_file_name`]; `None` for anything else (including `*.tmp`
/// staging files, which discovery must never consider).
pub fn parse_snapshot_round(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snapshot-")?;
    let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The newest *committed* snapshot in `dir` by round index, or `None` when
/// the directory holds none. Staging temp files and foreign names are
/// skipped — a crashed mid-write publisher leaves nothing discoverable.
pub fn latest_snapshot(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(round) = name.to_str().and_then(parse_snapshot_round) else { continue };
        if best.as_ref().is_none_or(|(r, _)| round > *r) {
            best = Some((round, entry.path()));
        }
    }
    Ok(best)
}

/// Writes `bytes` to `path` through a same-directory `<name>.tmp` sibling
/// with fsync-before-rename: after this returns, the committed file is
/// durable and complete; before the rename, `path` is untouched.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The staging sibling of `path`: its file name with `.tmp` appended.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Scheduled publisher chaos, extracted from the driver's fault plan.
/// Rounds listed here fault deterministically; everything else commits
/// cleanly. Consulting the schedule consumes no RNG draws.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PublisherFaults {
    /// Rounds at which the publisher "crashes" mid-write: half the bytes
    /// land in the staging file, nothing is fsynced or renamed.
    pub kill_at: Vec<u64>,
    /// Rounds whose committed file gets one byte flipped *after* the
    /// snapshot digest was computed — committed but digest-invalid.
    pub corrupt_at: Vec<u64>,
}

/// What one publication attempt did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The snapshot file is committed (possibly with an injected byte
    /// flip); the path is safe to offer to the serving gate.
    Committed(PathBuf),
    /// The scheduled mid-write crash fired: only a partial staging file
    /// exists at the returned path, the committed name was never created,
    /// and nothing may be offered downstream.
    Killed(PathBuf),
}

/// Counters of the publication pipeline (`publish_*` namespace). The
/// gate-side acceptance/rejection counters live in `mamdr-serve`; these
/// cover the producer: attempts, durable commits, and injected chaos.
#[derive(Clone)]
struct PublishMetrics {
    attempts_total: Counter,
    commits_total: Counter,
    kills_total: Counter,
    corruptions_total: Counter,
}

impl PublishMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        registry.describe("publish_attempts_total", "Snapshot publication attempts.");
        registry
            .describe("publish_commits_total", "Snapshot files committed (atomic rename landed).");
        registry.describe(
            "publish_kills_total",
            "Injected publisher crashes mid-write (partial staging file, no commit).",
        );
        registry.describe(
            "publish_corruptions_total",
            "Injected post-digest byte flips in committed snapshot files.",
        );
        PublishMetrics {
            attempts_total: registry.counter("publish_attempts_total"),
            commits_total: registry.counter("publish_commits_total"),
            kills_total: registry.counter("publish_kills_total"),
            corruptions_total: registry.counter("publish_corruptions_total"),
        }
    }
}

/// Commits encoded snapshots into a publish directory, one file per
/// published round, atomically and with deterministic fault injection.
pub struct ContinualPublisher {
    dir: PathBuf,
    faults: PublisherFaults,
    metrics: PublishMetrics,
}

impl ContinualPublisher {
    /// A publisher committing into `dir` (created if missing), reporting
    /// into `registry`, faulted per `faults`.
    pub fn new(
        dir: impl Into<PathBuf>,
        faults: PublisherFaults,
        registry: &MetricsRegistry,
    ) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ContinualPublisher { dir, faults, metrics: PublishMetrics::register(registry) })
    }

    /// The publish directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Commits round `round`'s encoded snapshot, applying any scheduled
    /// fault. On [`PublishOutcome::Killed`] the caller must treat the
    /// round as unpublished (the crashed publisher is "restarted" by
    /// simply attempting the next scheduled round).
    pub fn commit(&self, round: u64, bytes: &[u8]) -> io::Result<PublishOutcome> {
        self.metrics.attempts_total.inc();
        let path = snapshot_path(&self.dir, round);
        if self.faults.kill_at.contains(&round) {
            // Crash mid-write: a strict prefix reaches the staging file,
            // then the process "dies" — no fsync, no rename. The committed
            // name never exists, so discovery and the gate see nothing.
            let tmp = staging_path(&path);
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes[..bytes.len() / 2])?;
            self.metrics.kills_total.inc();
            return Ok(PublishOutcome::Killed(tmp));
        }
        if self.faults.corrupt_at.contains(&round) {
            // Disk corruption after the digest was computed: the file
            // commits atomically, but its trailing checksum no longer
            // matches — the loader/gate must reject it.
            let mut bad = bytes.to_vec();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x40;
            write_atomic_bytes(&path, &bad)?;
            self.metrics.corruptions_total.inc();
            self.metrics.commits_total.inc();
            return Ok(PublishOutcome::Committed(path));
        }
        write_atomic_bytes(&path, bytes)?;
        self.metrics.commits_total.inc();
        Ok(PublishOutcome::Committed(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mamdr-publish-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_roundtrip_and_reject_foreign_shapes() {
        assert_eq!(snapshot_file_name(12), "snapshot-0000000012.mamdrsv");
        assert_eq!(parse_snapshot_round("snapshot-0000000012.mamdrsv"), Some(12));
        assert_eq!(parse_snapshot_round("snapshot-0000000012.mamdrsv.tmp"), None);
        assert_eq!(parse_snapshot_round("snapshot-12.mamdrsv"), None);
        assert_eq!(parse_snapshot_round("journal-0000000012.mamdrj"), None);
        assert_eq!(parse_snapshot_round("snapshot-00000000xx.mamdrsv"), None);
    }

    #[test]
    fn latest_snapshot_picks_max_round_and_ignores_staging_files() {
        let dir = tmp_dir("latest");
        fs::write(snapshot_path(&dir, 3), b"three").unwrap();
        fs::write(snapshot_path(&dir, 11), b"eleven").unwrap();
        fs::write(dir.join("snapshot-0000000099.mamdrsv.tmp"), b"torn").unwrap();
        fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let (round, path) = latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(round, 11);
        assert_eq!(fs::read(path).unwrap(), b"eleven");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_commit_is_atomic_and_counted() {
        let dir = tmp_dir("commit");
        let registry = MetricsRegistry::new();
        let p = ContinualPublisher::new(&dir, PublisherFaults::default(), &registry).unwrap();
        let out = p.commit(4, b"snapshot-bytes").unwrap();
        let PublishOutcome::Committed(path) = out else { panic!("clean round must commit") };
        assert_eq!(fs::read(&path).unwrap(), b"snapshot-bytes");
        assert!(!staging_path(&path).exists(), "staging file must be renamed away");
        assert_eq!(registry.counter("publish_attempts_total").get(), 1);
        assert_eq!(registry.counter("publish_commits_total").get(), 1);
        assert_eq!(registry.counter("publish_kills_total").get(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_publish_leaves_only_a_partial_staging_file() {
        let dir = tmp_dir("kill");
        let registry = MetricsRegistry::new();
        let faults = PublisherFaults { kill_at: vec![2], ..Default::default() };
        let p = ContinualPublisher::new(&dir, faults, &registry).unwrap();
        let out = p.commit(2, &[7u8; 100]).unwrap();
        let PublishOutcome::Killed(tmp) = out else { panic!("round 2 must be killed") };
        assert_eq!(fs::read(&tmp).unwrap().len(), 50, "half the bytes, then the crash");
        assert!(!snapshot_path(&dir, 2).exists(), "committed name must never appear");
        assert!(latest_snapshot(&dir).unwrap().is_none(), "nothing discoverable");
        assert_eq!(registry.counter("publish_kills_total").get(), 1);
        assert_eq!(registry.counter("publish_commits_total").get(), 0);
        // The "restarted" publisher commits the next round over the wreck.
        assert!(matches!(p.commit(3, &[8u8; 10]).unwrap(), PublishOutcome::Committed(_)));
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap().0, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_commit_flips_exactly_one_byte() {
        let dir = tmp_dir("corrupt");
        let registry = MetricsRegistry::new();
        let faults = PublisherFaults { corrupt_at: vec![5], ..Default::default() };
        let p = ContinualPublisher::new(&dir, faults, &registry).unwrap();
        let bytes = [3u8; 64];
        let PublishOutcome::Committed(path) = p.commit(5, &bytes).unwrap() else {
            panic!("corrupted rounds still commit")
        };
        let written = fs::read(&path).unwrap();
        let diffs: Vec<usize> = (0..64).filter(|&i| written[i] != bytes[i]).collect();
        assert_eq!(diffs, vec![32], "exactly the middle byte differs");
        assert_eq!(registry.counter("publish_corruptions_total").get(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
