//! The distributed MAMDR driver: partitions domains over worker threads,
//! runs the inner loop through the embedding cache, and applies the outer
//! update on the parameter server (paper Fig. 6).

use crate::cache::{CacheStats, StalenessStats, WorkerCache};
use crate::guard::{outer_grad_norm, GuardConfig, GuardRail, GuardVerdict};
use crate::kv::{ParamKey, ParameterServer, RowSource, TimedRowSource};
use crate::model::{error_signal, log_loss, score, tables, ExampleKeys};
use crate::shard::ShardMap;
use mamdr_core::metrics::auc;
use mamdr_data::{MdrDataset, Split};
use mamdr_obs::{MetricsRegistry, SpanContext, Tracer};
use mamdr_tensor::pool;
use mamdr_tensor::rng::{derive_seed, normal, seeded, shuffle};
use rand::Rng;
use std::sync::Arc;

/// How workers synchronize with the parameter server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// The §IV-E protocol: static/dynamic caches, one delta push per
    /// touched row per round.
    Cached,
    /// Baseline: pull every row on every read, push every update
    /// immediately (classic fully synchronous PS training).
    NoCache,
}

/// Configuration of the distributed simulation.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Worker threads.
    pub n_workers: usize,
    /// Parameter-server shards.
    pub n_shards: usize,
    /// Embedding width.
    pub dim: usize,
    /// Inner-loop SGD learning rate (paper industry setting: SGD inner).
    pub inner_lr: f32,
    /// Outer-loop Adagrad learning rate (paper: Adagrad outer, 0.1–1).
    pub outer_lr: f32,
    /// Outer rounds (each covers every domain once).
    pub epochs: usize,
    /// Synchronization protocol.
    pub mode: SyncMode,
    /// When true (and the mode is [`SyncMode::Cached`]), workers train
    /// read-only against the server and the driver applies every worker's
    /// key-sorted outer gradients *after* the round joins, in worker
    /// order. The server is quiescent while workers read, so the run is
    /// bit-reproducible at any worker count — this is the protocol the
    /// networked trainer (`mamdr-rpc`) mirrors over TCP, and what makes
    /// "loopback training equals in-process training" testable at all.
    /// When false (the default), workers push their own gradients as they
    /// finish, racing each other exactly like the asynchronous real
    /// deployment.
    pub sync_rounds: bool,
    /// Master seed.
    pub seed: u64,
    /// Kernel worker threads for driver-side tensor math (evaluation);
    /// `0` (the default) inherits the process-wide setting. Results are
    /// bit-identical at any value.
    pub kernel_threads: usize,
    /// Divergence guard over the synchronous apply path (disabled by
    /// default; only consulted when [`DistributedConfig::sync_rounds`] is
    /// set, because only then does the driver see every update).
    pub guard: GuardConfig,
    /// Number of *cross-server* shards the pull accounting should model
    /// (see [`ParameterServer::set_route_shards`]). `1` (the default)
    /// keeps the classic single-server chunk arithmetic; a sharded
    /// loopback deployment with N servers matches an in-process run
    /// configured with `route_shards: N` on every report field.
    pub route_shards: usize,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            n_workers: 4,
            n_shards: 8,
            dim: 8,
            inner_lr: 0.1,
            outer_lr: 0.5,
            epochs: 3,
            mode: SyncMode::Cached,
            sync_rounds: false,
            seed: 1,
            kernel_threads: 0,
            guard: GuardConfig::default(),
            route_shards: 1,
        }
    }
}

/// Aggregated result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// Mean per-domain test AUC after training.
    pub mean_auc: f64,
    /// Total pull RPCs.
    pub pulls: u64,
    /// Total push RPCs.
    pub pushes: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Combined worker cache statistics (zero for [`SyncMode::NoCache`]).
    pub cache: CacheStats,
    /// Worst observed end-of-round staleness across all workers and rounds
    /// (how many foreign pushes a cached row missed before the drain).
    pub max_staleness: u64,
    /// Mean training log-loss of each outer round, in round order.
    pub round_losses: Vec<f64>,
    /// Guard trips (worker updates skipped or rolled back as divergent).
    pub guard_trips: u64,
    /// Guard-demanded rollbacks to the last good round boundary.
    pub guard_rollbacks: u64,
}

impl DistributedReport {
    /// Publishes the report into a metrics registry under the `ps_*`
    /// namespace: RPC/byte counters, cache hit/miss counters plus a
    /// hit-ratio gauge, the staleness bound, final quality, and the
    /// per-round loss curve as a histogram.
    pub fn export(&self, registry: &MetricsRegistry) {
        registry.counter("ps_pulls_total").add(self.pulls);
        registry.counter("ps_pushes_total").add(self.pushes);
        registry.counter("ps_bytes_total").add(self.total_bytes);
        registry.counter("ps_cache_hits_total").add(self.cache.hits);
        registry.counter("ps_cache_misses_total").add(self.cache.misses);
        registry.gauge("ps_cache_hit_ratio").set(self.cache.hit_ratio());
        registry.gauge("ps_max_staleness").set(self.max_staleness as f64);
        registry.gauge("ps_mean_auc").set(self.mean_auc);
        let rounds = registry.histogram("ps_round_loss");
        for &loss in &self.round_losses {
            rounds.record(loss);
        }
        if let Some(&last) = self.round_losses.last() {
            registry.gauge("ps_train_loss").set(last);
        }
        registry.counter("ps_guard_trips_total").add(self.guard_trips);
        registry.counter("ps_guard_rollbacks_total").add(self.guard_rollbacks);
    }
}

/// One worker's result for one outer round of cached training: the
/// accounting plus — in synchronous modes — the undelivered outer
/// gradients, key-sorted for a deterministic application order.
///
/// Public because the networked trainer in `mamdr-rpc` runs the same
/// round logic against an RPC-backed [`RowSource`] and must aggregate
/// identically.
#[derive(Debug)]
pub struct CachedRoundOutput {
    /// Hit/miss counters of the worker's cache for this round.
    pub cache: CacheStats,
    /// End-of-round staleness of the worker's cached rows.
    pub staleness: StalenessStats,
    /// Summed training log-loss over the worker's examples.
    pub loss_sum: f64,
    /// Number of training examples the worker saw.
    pub n_examples: u64,
    /// Outer gradients (Θ̃ − Θ per touched row), sorted by
    /// `(table, row)`. The caller applies them (directly or over RPC).
    pub grads: Vec<(ParamKey, Vec<f32>)>,
}

/// One worker's accounting for one outer round.
struct WorkerRound {
    cache: CacheStats,
    staleness: StalenessStats,
    loss_sum: f64,
    n_examples: u64,
    /// Gradients deferred to the driver ([`DistributedConfig::sync_rounds`]);
    /// empty when the worker already pushed them itself.
    deferred: Vec<(ParamKey, Vec<f32>)>,
}

/// The per-epoch round-robin partition of shuffled domains over workers —
/// shared verbatim by the in-process and the networked trainer so both
/// assign identical work given identical seeds.
pub fn partition_domains(
    n_domains: usize,
    seed: u64,
    epoch: usize,
    n_workers: usize,
) -> Vec<Vec<usize>> {
    let mut domains: Vec<usize> = (0..n_domains).collect();
    let mut ep_rng = seeded(derive_seed(seed, 0xA0 + epoch as u64));
    shuffle(&mut ep_rng, &mut domains);
    (0..n_workers).map(|w| domains.iter().copied().skip(w).step_by(n_workers).collect()).collect()
}

/// The per-worker round seed (derived from the master seed, the epoch and
/// the worker index) — shared by both trainers.
pub fn worker_round_seed(seed: u64, epoch: usize, worker: usize) -> u64 {
    derive_seed(seed, ((epoch as u64) << 16) | worker as u64)
}

/// Seeds every embedding row the dataset can touch into `ps`
/// (`N(0, 0.05)`, deterministic in `seed`). Extracted from
/// [`DistributedMamdr::new`] so a networked server can be populated
/// identically to the in-process one.
pub fn seed_server(ps: &ParameterServer, ds: &MdrDataset, dim: usize, seed: u64) {
    seed_sharded_servers(&[ps], &ShardMap::new(1), ds, dim, seed);
}

/// Seeds the same rows as [`seed_server`] — same RNG, same draw order —
/// but routes each row to the store owning it under `map`, so a fleet of
/// shard servers jointly holds exactly the state one server would.
///
/// # Panics
///
/// Panics when `stores.len()` disagrees with the map's shard count.
pub fn seed_sharded_servers(
    stores: &[&ParameterServer],
    map: &ShardMap,
    ds: &MdrDataset,
    dim: usize,
    seed: u64,
) {
    assert_eq!(stores.len(), map.n_shards(), "one store per shard");
    let mut rng = seeded(derive_seed(seed, 0xF5));
    let mut seed_table = |table: u32, rows: usize| {
        for r in 0..rows {
            let v: Vec<f32> = (0..dim).map(|_| 0.05 * normal(&mut rng)).collect();
            let key = ParamKey::new(table, r as u32);
            stores[map.owner(key)].init_row(key, v);
        }
    };
    seed_table(tables::USER, ds.n_users);
    seed_table(tables::ITEM, ds.n_items);
    seed_table(tables::UGROUP, ds.n_user_groups);
    seed_table(tables::ICAT, ds.n_item_cats);
    seed_table(tables::DOMAIN_BIAS, ds.n_domains());
}

/// Mean per-domain AUC of `split` using the server's current parameters
/// (reads are traffic-free: evaluation runs driver-side).
///
/// Interactions are scored on the kernel worker pool; each one lands in
/// its own slot, so the AUC input is bit-identical at any thread count.
pub fn evaluate_server(ps: &ParameterServer, ds: &MdrDataset, split: Split) -> f64 {
    let mut aucs = Vec::with_capacity(ds.n_domains());
    for (di, dom) in ds.domains.iter().enumerate() {
        let interactions = dom.split(split);
        if interactions.is_empty() {
            continue;
        }
        let labels: Vec<_> = interactions.iter().map(|it| it.label).collect();
        let mut scores = vec![0.0f32; interactions.len()];
        {
            let score_ptr = pool::SendMutPtr(scores.as_mut_ptr());
            pool::for_each_chunk(interactions.len(), 512, move |range| {
                for i in range {
                    let it = &interactions[i];
                    let keys = ExampleKeys::new(
                        it.user,
                        it.item,
                        ds.user_group[it.user as usize],
                        ds.item_cat[it.item as usize],
                        di as u32,
                    );
                    let u = ps.read_silent(keys.user).expect("user row");
                    let v = ps.read_silent(keys.item).expect("item row");
                    let g = ps.read_silent(keys.ugroup).expect("group row");
                    let c = ps.read_silent(keys.icat).expect("cat row");
                    let b = ps.read_silent(keys.bias).expect("bias row");
                    // SAFETY: each interaction index is scored by exactly
                    // one chunk, so slot writes are disjoint.
                    unsafe { *score_ptr.get().add(i) = score(&u, &v, &g, &c, &b) };
                }
            });
        }
        aucs.push(auc(&labels, &scores));
    }
    mamdr_core::metrics::mean(&aucs)
}

/// The distributed MAMDR trainer.
pub struct DistributedMamdr {
    ps: ParameterServer,
    cfg: DistributedConfig,
    tracer: Option<Arc<Tracer>>,
}

impl DistributedMamdr {
    /// Builds the server and seeds every embedding row the dataset can
    /// touch (`N(0, 0.05)`, deterministic in the config seed).
    pub fn new(ds: &MdrDataset, cfg: DistributedConfig) -> Self {
        let ps = ParameterServer::new(cfg.n_shards, cfg.dim);
        ps.set_route_shards(cfg.route_shards.max(1));
        seed_server(&ps, ds, cfg.dim, cfg.seed);
        DistributedMamdr { ps, cfg, tracer: None }
    }

    /// Attaches a tracer: each round becomes a span tree (partition /
    /// workers / apply phases, per-worker pull vs compute attribution).
    /// Training results are bit-identical with or without it.
    pub fn with_tracer(mut self, tracer: Option<Arc<Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Applies the configured kernel thread count (no-op when inheriting).
    fn apply_kernel_threads(&self) {
        if self.cfg.kernel_threads > 0 {
            pool::set_threads(self.cfg.kernel_threads);
        }
    }

    /// Runs the configured number of outer rounds and reports traffic and
    /// final quality.
    pub fn train(&self, ds: &MdrDataset) -> DistributedReport {
        self.apply_kernel_threads();
        let cfg = self.cfg;
        let mut combined = CacheStats::default();
        let mut max_staleness = 0u64;
        let mut round_losses = Vec::with_capacity(cfg.epochs);
        // The guard only makes sense when the driver is the sole writer:
        // asynchronous workers apply their own pushes before the driver
        // could vet them. The last-good snapshot carries both values and
        // Adagrad accumulators so a rollback rewinds the optimizer too.
        let guard_active = cfg.sync_rounds && cfg.guard.enabled;
        let mut guard = GuardRail::new(cfg.guard);
        let mut last_good =
            if guard_active { Some((self.ps.dump_rows(), self.ps.dump_adagrad())) } else { None };
        let tracer = self.tracer.as_deref();
        for epoch in 0..cfg.epochs {
            let round_span = tracer.map(|t| {
                let mut s = t.span("round");
                s.attr("epoch", epoch as u64);
                s
            });
            let round_ctx = round_span.as_ref().map(|s| s.ctx());
            // Round-robin partition of domains over workers, reshuffled
            // each epoch (the driver-side analogue of DN's domain shuffle).
            let partitions = {
                let _span = round_ctx
                    .map(|c| tracer.expect("ctx implies tracer").child("round.partition", c));
                partition_domains(ds.n_domains(), cfg.seed, epoch, cfg.n_workers)
            };

            let stats: Vec<WorkerRound> = {
                let workers_span = round_ctx
                    .map(|c| tracer.expect("ctx implies tracer").child("round.workers", c));
                let workers_ctx = workers_span.as_ref().map(|s| s.ctx());
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = partitions
                        .iter()
                        .enumerate()
                        .map(|(w, part)| {
                            let ps = &self.ps;
                            scope.spawn(move |_| {
                                run_worker_round(
                                    ps,
                                    ds,
                                    part,
                                    cfg,
                                    worker_round_seed(cfg.seed, epoch, w),
                                    tracer,
                                    workers_ctx,
                                    w,
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .unwrap()
            };
            let apply_span =
                round_ctx.map(|c| tracer.expect("ctx implies tracer").child("round.apply", c));
            let mut loss_sum = 0.0f64;
            let mut n_examples = 0u64;
            let mut round_tripped = false;
            for w in stats {
                combined.hits += w.cache.hits;
                combined.misses += w.cache.misses;
                max_staleness = max_staleness.max(w.staleness.max);
                if guard_active {
                    let worker_loss =
                        if w.n_examples == 0 { 0.0 } else { w.loss_sum / w.n_examples as f64 };
                    match guard.check(worker_loss, outer_grad_norm(&w.deferred)).0 {
                        GuardVerdict::Accept => {}
                        GuardVerdict::Skip => {
                            // Drop the update *and* its loss contribution:
                            // a NaN loss would otherwise poison the report.
                            round_tripped = true;
                            continue;
                        }
                        GuardVerdict::Rollback => {
                            // Rewind to the last clean round boundary; this
                            // also discards whatever this round already
                            // applied (the round is atomic under rollback).
                            round_tripped = true;
                            if let Some((rows, acc)) = &last_good {
                                self.ps.restore_state(rows, acc);
                            }
                            continue;
                        }
                    }
                }
                loss_sum += w.loss_sum;
                n_examples += w.n_examples;
                // Synchronous mode: the driver is the only writer, applying
                // each worker's key-sorted gradients in worker order — the
                // one total order the networked trainer reproduces.
                for (key, delta) in w.deferred {
                    self.ps.push_outer_grad(key, &delta, cfg.outer_lr);
                }
            }
            drop(apply_span);
            round_losses.push(if n_examples == 0 { 0.0 } else { loss_sum / n_examples as f64 });
            // Only a round with zero trips advances the rollback target.
            if guard_active && !round_tripped {
                last_good = Some((self.ps.dump_rows(), self.ps.dump_adagrad()));
            }
        }
        let (pulls, pushes, bp, bs) = self.ps.traffic().snapshot();
        let mean_auc = {
            let _span = tracer.map(|t| t.span("round.evaluate"));
            self.evaluate(ds, Split::Test)
        };
        DistributedReport {
            mean_auc,
            pulls,
            pushes,
            total_bytes: bp + bs,
            cache: combined,
            max_staleness,
            round_losses,
            guard_trips: guard.trips(),
            guard_rollbacks: guard.rollbacks(),
        }
    }

    /// Mean per-domain AUC using the server's current parameters — see
    /// [`evaluate_server`].
    pub fn evaluate(&self, ds: &MdrDataset, split: Split) -> f64 {
        self.apply_kernel_threads();
        evaluate_server(&self.ps, ds, split)
    }

    /// The underlying parameter server (for tests and benches).
    pub fn server(&self) -> &ParameterServer {
        &self.ps
    }
}

/// One cached worker round, generic over where reads come from: the MAMDR
/// inner loop over `domains` through a fresh [`WorkerCache`], ending with
/// the staleness measurement and the outer-gradient drain.
///
/// The gradients are *returned* (key-sorted), not pushed — the caller
/// decides how to deliver them: the asynchronous in-process trainer pushes
/// them from the worker thread, the synchronous one defers them to the
/// driver, and the networked trainer ships them over RPC. This is the
/// exact function the `mamdr-rpc` loopback workers execute, which is why
/// fault-free networked training is bit-identical to [`DistributedMamdr`]
/// with `sync_rounds`.
pub fn run_cached_round<S: RowSource + ?Sized>(
    src: &S,
    ds: &MdrDataset,
    domains: &[usize],
    inner_lr: f32,
    seed: u64,
) -> CachedRoundOutput {
    let mut rng = seeded(seed);
    let mut cache = WorkerCache::new();
    // Warm the cache with the round's entire working set up front: the
    // key set of a round is known from the partition alone (it does not
    // depend on example order), so one batched pull replaces every lazy
    // per-key miss — over the wire, one request per key chunk instead of
    // one per key. Values are identical either way: the server is
    // quiescent during a synchronous round, and a lazy miss would have
    // pulled the same bytes one example later.
    cache.prefetch(src, &partition_keys(ds, domains));
    let mut loss_sum = 0.0f64;
    let mut n_examples = 0u64;
    for &d in domains {
        let (l, n) = train_domain_cached(src, &mut cache, ds, d, inner_lr, &mut rng);
        loss_sum += l;
        n_examples += n;
    }
    // Measure how far the world moved while this worker trained, then
    // hand back Θ̃ − Θ per touched row (Eq. 3's outer gradient).
    let staleness = cache.staleness(src);
    let stats = cache.stats();
    let mut grads = cache.drain_outer_grads();
    grads.sort_by_key(|(k, _)| (k.table, k.row));
    CachedRoundOutput { cache: stats, staleness, loss_sum, n_examples, grads }
}

/// The distinct parameter rows a cached round over `domains` will touch,
/// sorted by `(table, row)`: every embedding and bias row reachable from
/// the partition's training examples. This is the prefetch set of
/// [`run_cached_round`] — exact, not a heuristic, because the cached
/// inner loop reads precisely the [`ExampleKeys`] of its examples.
pub fn partition_keys(ds: &MdrDataset, domains: &[usize]) -> Vec<ParamKey> {
    let mut seen = std::collections::HashSet::new();
    let mut keys = Vec::new();
    for &d in domains {
        for it in &ds.domains[d].train {
            let ek = ExampleKeys::new(
                it.user,
                it.item,
                ds.user_group[it.user as usize],
                ds.item_cat[it.item as usize],
                d as u32,
            );
            for key in ek.all() {
                if seen.insert(key) {
                    keys.push(key);
                }
            }
        }
    }
    keys.sort_by_key(|k| (k.table, k.row));
    keys
}

/// One worker's round: the MAMDR inner loop over its domain partition.
#[allow(clippy::too_many_arguments)]
fn run_worker_round(
    ps: &ParameterServer,
    ds: &MdrDataset,
    domains: &[usize],
    cfg: DistributedConfig,
    seed: u64,
    tracer: Option<&Tracer>,
    parent: Option<SpanContext>,
    worker: usize,
) -> WorkerRound {
    let worker_span = tracer.map(|t| {
        let mut s = match parent {
            Some(p) => t.child("worker.round", p),
            None => t.span("worker.round"),
        };
        s.attr("worker", worker as u64);
        s
    });
    let _ = &worker_span;
    match cfg.mode {
        SyncMode::Cached => {
            // With a tracer, split the worker's wall-clock into store reads
            // ("pull", in-process here but an RPC over the wire) vs local
            // compute. The timing decorator forwards reads unchanged.
            let out = match tracer {
                Some(t) => {
                    let timed = TimedRowSource::new(ps);
                    let t0 = std::time::Instant::now();
                    let out = run_cached_round(&timed, ds, domains, cfg.inner_lr, seed);
                    let total = t0.elapsed();
                    let pull = timed.elapsed();
                    t.record_phase("round.pull", pull);
                    t.record_phase("round.compute", total.saturating_sub(pull));
                    out
                }
                None => run_cached_round(ps, ds, domains, cfg.inner_lr, seed),
            };
            let CachedRoundOutput { cache, staleness, loss_sum, n_examples, grads } = out;
            let deferred = if cfg.sync_rounds {
                // Deliver to the driver; the server stays read-only until
                // every worker has joined.
                grads
            } else {
                // Asynchronous protocol: push now, racing other workers;
                // the server applies with Adagrad (Eq. 3 with a
                // server-side optimizer).
                for (key, delta) in grads {
                    ps.push_outer_grad(key, &delta, cfg.outer_lr);
                }
                Vec::new()
            };
            WorkerRound { cache, staleness, loss_sum, n_examples, deferred }
        }
        SyncMode::NoCache => {
            let mut rng = seeded(seed);
            let mut loss_sum = 0.0f64;
            let mut n_examples = 0u64;
            for &d in domains {
                let (l, n) = train_domain_no_cache(ps, ds, d, cfg, &mut rng);
                loss_sum += l;
                n_examples += n;
            }
            WorkerRound {
                cache: CacheStats::default(),
                staleness: StalenessStats::default(),
                loss_sum,
                n_examples,
                deferred: Vec::new(),
            }
        }
    }
}

/// Inner-loop SGD over one domain through the cache. Returns the summed
/// log-loss and example count for round-level loss reporting.
fn train_domain_cached<S: RowSource + ?Sized>(
    src: &S,
    cache: &mut WorkerCache,
    ds: &MdrDataset,
    domain: usize,
    inner_lr: f32,
    rng: &mut impl Rng,
) -> (f64, u64) {
    let mut order: Vec<usize> = (0..ds.domains[domain].train.len()).collect();
    shuffle(rng, &mut order);
    let mut loss_sum = 0.0f64;
    let n = order.len() as u64;
    for idx in order {
        let it = ds.domains[domain].train[idx];
        let keys = ExampleKeys::new(
            it.user,
            it.item,
            ds.user_group[it.user as usize],
            ds.item_cat[it.item as usize],
            domain as u32,
        );
        let u = cache.get(src, keys.user).to_vec();
        let v = cache.get(src, keys.item).to_vec();
        let g = cache.get(src, keys.ugroup).to_vec();
        let c = cache.get(src, keys.icat).to_vec();
        let b = cache.get(src, keys.bias).to_vec();
        let s = score(&u, &v, &g, &c, &b);
        loss_sum += log_loss(s, it.label) as f64;
        let e = error_signal(s, it.label);
        let lr = inner_lr;
        cache.update(keys.user, |row| axpy_rows(row, -lr * e, &v));
        cache.update(keys.item, |row| axpy_rows(row, -lr * e, &u));
        cache.update(keys.ugroup, |row| axpy_rows(row, -lr * e, &c));
        cache.update(keys.icat, |row| axpy_rows(row, -lr * e, &g));
        cache.update(keys.bias, |row| row[0] -= lr * e);
    }
    (loss_sum, n)
}

/// Inner-loop SGD with no cache: every read pulls, every write pushes.
/// Returns the summed log-loss and example count like the cached path.
fn train_domain_no_cache(
    ps: &ParameterServer,
    ds: &MdrDataset,
    domain: usize,
    cfg: DistributedConfig,
    rng: &mut impl Rng,
) -> (f64, u64) {
    let mut order: Vec<usize> = (0..ds.domains[domain].train.len()).collect();
    shuffle(rng, &mut order);
    let mut loss_sum = 0.0f64;
    let n = order.len() as u64;
    for idx in order {
        let it = ds.domains[domain].train[idx];
        let keys = ExampleKeys::new(
            it.user,
            it.item,
            ds.user_group[it.user as usize],
            ds.item_cat[it.item as usize],
            domain as u32,
        );
        let u = ps.pull(keys.user);
        let v = ps.pull(keys.item);
        let g = ps.pull(keys.ugroup);
        let c = ps.pull(keys.icat);
        let b = ps.pull(keys.bias);
        let s = score(&u, &v, &g, &c, &b);
        loss_sum += log_loss(s, it.label) as f64;
        let e = error_signal(s, it.label);
        let lr = cfg.inner_lr;
        ps.push_delta(keys.user, &scaled(-lr * e, &v));
        ps.push_delta(keys.item, &scaled(-lr * e, &u));
        ps.push_delta(keys.ugroup, &scaled(-lr * e, &c));
        ps.push_delta(keys.icat, &scaled(-lr * e, &g));
        let mut bias_delta = vec![0.0; b.len()];
        bias_delta[0] = -lr * e;
        ps.push_delta(keys.bias, &bias_delta);
    }
    (loss_sum, n)
}

fn axpy_rows(row: &mut [f32], alpha: f32, x: &[f32]) {
    for (r, &xi) in row.iter_mut().zip(x) {
        *r += alpha * xi;
    }
}

fn scaled(alpha: f32, x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| alpha * v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{DomainSpec, GeneratorConfig};

    fn dataset() -> MdrDataset {
        let mut cfg = GeneratorConfig::base("ps", 80, 50, 55);
        cfg.domains = (0..6).map(|i| DomainSpec::new(format!("d{i}"), 400, 0.3)).collect();
        cfg.generate()
    }

    #[test]
    fn cached_training_learns() {
        let ds = dataset();
        let cfg = DistributedConfig { epochs: 6, ..Default::default() };
        let trainer = DistributedMamdr::new(&ds, cfg);
        let before = trainer.evaluate(&ds, Split::Test);
        let report = trainer.train(&ds);
        assert!(
            report.mean_auc > before + 0.03,
            "AUC should improve: {} -> {}",
            before,
            report.mean_auc
        );
        assert!(report.cache.hit_ratio() > 0.5, "hit ratio {}", report.cache.hit_ratio());
    }

    #[test]
    fn cache_cuts_traffic_dramatically() {
        let ds = dataset();
        let cached = DistributedMamdr::new(&ds, DistributedConfig::default()).train(&ds);
        let uncached = DistributedMamdr::new(
            &ds,
            DistributedConfig { mode: SyncMode::NoCache, ..Default::default() },
        )
        .train(&ds);
        assert!(
            uncached.total_bytes > 3 * cached.total_bytes,
            "expected >3x traffic reduction: cached {} vs uncached {}",
            cached.total_bytes,
            uncached.total_bytes
        );
    }

    #[test]
    fn cache_preserves_quality_single_worker() {
        // Quality comparison needs determinism: multi-worker interleaving
        // adds run-to-run noise, so pin one worker and more rounds.
        let ds = dataset();
        let base = DistributedConfig { n_workers: 1, epochs: 6, ..Default::default() };
        let cached = DistributedMamdr::new(&ds, base).train(&ds);
        let uncached =
            DistributedMamdr::new(&ds, DistributedConfig { mode: SyncMode::NoCache, ..base })
                .train(&ds);
        assert!(
            cached.mean_auc > uncached.mean_auc - 0.05,
            "cached {} vs uncached {}",
            cached.mean_auc,
            uncached.mean_auc
        );
    }

    #[test]
    fn deterministic_given_seed_with_one_worker() {
        // Multi-worker runs interleave nondeterministically (as in the real
        // system); a single worker must be exactly reproducible.
        let ds = dataset();
        let cfg = DistributedConfig { n_workers: 1, epochs: 2, ..Default::default() };
        let a = DistributedMamdr::new(&ds, cfg).train(&ds);
        let b = DistributedMamdr::new(&ds, cfg).train(&ds);
        assert_eq!(a.mean_auc, b.mean_auc);
        assert_eq!(a.total_bytes, b.total_bytes);
    }

    #[test]
    fn round_losses_track_every_round_and_decrease() {
        let ds = dataset();
        let cfg = DistributedConfig { epochs: 6, ..Default::default() };
        let report = DistributedMamdr::new(&ds, cfg).train(&ds);
        assert_eq!(report.round_losses.len(), 6);
        assert!(report.round_losses.iter().all(|l| l.is_finite() && *l > 0.0));
        let first = report.round_losses[0];
        let last = *report.round_losses.last().unwrap();
        assert!(last < first, "loss should fall over rounds: {} -> {}", first, last);
    }

    #[test]
    fn export_publishes_traffic_and_cache_metrics() {
        let ds = dataset();
        let report = DistributedMamdr::new(&ds, DistributedConfig::default()).train(&ds);
        let registry = MetricsRegistry::new();
        report.export(&registry);
        assert_eq!(registry.counter("ps_pulls_total").get(), report.pulls);
        assert_eq!(registry.counter("ps_pushes_total").get(), report.pushes);
        assert_eq!(registry.counter("ps_bytes_total").get(), report.total_bytes);
        assert_eq!(registry.counter("ps_cache_hits_total").get(), report.cache.hits);
        assert_eq!(registry.counter("ps_cache_misses_total").get(), report.cache.misses);
        assert_eq!(registry.gauge("ps_cache_hit_ratio").get(), report.cache.hit_ratio());
        assert_eq!(registry.gauge("ps_mean_auc").get(), report.mean_auc);
        let (_, snap) = registry
            .histogram_values()
            .into_iter()
            .find(|(name, _)| name == "ps_round_loss")
            .expect("round-loss histogram exported");
        assert_eq!(snap.count, report.round_losses.len() as u64);
    }

    #[test]
    fn sync_rounds_is_deterministic_with_many_workers() {
        // The whole point of the synchronous protocol: multi-worker runs
        // become exactly reproducible because the driver is the only
        // writer and applies key-sorted gradients in worker order.
        let ds = dataset();
        let cfg =
            DistributedConfig { n_workers: 4, epochs: 3, sync_rounds: true, ..Default::default() };
        let a = DistributedMamdr::new(&ds, cfg).train(&ds);
        let b = DistributedMamdr::new(&ds, cfg).train(&ds);
        assert_eq!(a.mean_auc, b.mean_auc);
        assert_eq!(a.round_losses, b.round_losses);
        assert_eq!((a.pulls, a.pushes, a.total_bytes), (b.pulls, b.pushes, b.total_bytes));
        // No concurrent writers during a round ⇒ cached rows never go
        // stale before the drain.
        assert_eq!(a.max_staleness, 0);
        // And it still learns.
        assert!(a.mean_auc > 0.53, "AUC {}", a.mean_auc);
    }

    #[test]
    fn worker_count_does_not_break_training() {
        let ds = dataset();
        for workers in [1, 2, 8] {
            let cfg = DistributedConfig { n_workers: workers, epochs: 3, ..Default::default() };
            let report = DistributedMamdr::new(&ds, cfg).train(&ds);
            assert!(report.mean_auc > 0.53, "{} workers: AUC {}", workers, report.mean_auc);
        }
    }
}
