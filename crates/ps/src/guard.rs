//! Divergence guardrails for the outer-loop update path.
//!
//! One numerically diverging domain — a NaN loss, an exploding gradient —
//! is enough to poison θS forever: the outer update applies every worker's
//! gradients to shared rows, and Adagrad accumulators make the damage
//! permanent even if later rounds are healthy. The [`GuardRail`] sits
//! between a worker round's output and the server-side apply: it vets the
//! round's mean loss and outer-gradient norm against finiteness and a
//! trailing-median explosion threshold, *skips* offending updates, and —
//! after enough consecutive trips — tells the driver to roll the server
//! back to the last known-good round boundary.
//!
//! The guard is deliberately stateful but cheap: two bounded histories of
//! accepted values (loss and grad norm) and a consecutive-trip counter.
//! It never touches the server itself; the driver owns the rollback (see
//! the ordering argument in DESIGN.md §8).

use std::collections::VecDeque;

/// Configuration of the divergence guard. `Copy` so it can ride inside
/// [`crate::DistributedConfig`] without breaking its `Copy` ergonomics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Master switch; a disabled guard accepts everything and keeps no
    /// history.
    pub enabled: bool,
    /// A round metric counts as "exploding" when it exceeds this factor
    /// times the trailing median of accepted values.
    pub explode_factor: f64,
    /// How many accepted values the trailing median is computed over.
    pub window: usize,
    /// Minimum accepted history before the explosion check arms (the first
    /// rounds of training legitimately swing).
    pub warmup: usize,
    /// Consecutive trips before the driver is told to roll back (the K of
    /// the supervision design). Each rollback resets the streak.
    pub max_consecutive_trips: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: false,
            explode_factor: 10.0,
            window: 8,
            warmup: 3,
            max_consecutive_trips: 3,
        }
    }
}

impl GuardConfig {
    /// The default thresholds with the guard switched on.
    pub fn enabled() -> Self {
        GuardConfig { enabled: true, ..Default::default() }
    }
}

/// What the driver must do with one worker-round's gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// The update is healthy: apply it and record its metrics.
    Accept,
    /// The update is suspect: drop it, count a trip, keep training.
    Skip,
    /// Too many consecutive trips: drop it *and* restore the server to the
    /// last good round boundary before continuing.
    Rollback,
}

/// One bounded history of accepted metric values with a trailing median.
#[derive(Debug, Default)]
struct History {
    values: VecDeque<f64>,
}

impl History {
    fn push(&mut self, v: f64, window: usize) {
        self.values.push_back(v);
        while self.values.len() > window {
            self.values.pop_front();
        }
    }

    /// Median of the retained values (midpoint average for even counts).
    fn median(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.values.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = sorted.len() / 2;
        Some(if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        })
    }
}

/// The stateful divergence guard. One instance lives in the driver and
/// vets every worker-round output in application order.
#[derive(Debug)]
pub struct GuardRail {
    cfg: GuardConfig,
    loss: History,
    grad: History,
    consecutive: u32,
    trips: u64,
    rollbacks: u64,
}

impl GuardRail {
    /// A fresh guard under `cfg`.
    pub fn new(cfg: GuardConfig) -> Self {
        GuardRail {
            cfg,
            loss: History::default(),
            grad: History::default(),
            consecutive: 0,
            trips: 0,
            rollbacks: 0,
        }
    }

    /// Why the last trip fired, for logging (set by [`GuardRail::check`]).
    fn trip_reason(&self, loss: f64, grad_norm: f64) -> &'static str {
        if !loss.is_finite() || !grad_norm.is_finite() {
            "non-finite"
        } else {
            "exploding"
        }
    }

    /// Vets one worker-round update: `loss` is the round's mean training
    /// loss, `grad_norm` the L2 norm of its outer gradients.
    ///
    /// Returns the verdict and, for trips, a static reason string
    /// (`"non-finite"` / `"exploding"`) for the caller's event log.
    pub fn check(&mut self, loss: f64, grad_norm: f64) -> (GuardVerdict, Option<&'static str>) {
        if !self.cfg.enabled {
            return (GuardVerdict::Accept, None);
        }
        let exploded = |value: f64, hist: &History| {
            hist.values.len() >= self.cfg.warmup
                && hist.median().is_some_and(|m| value > self.cfg.explode_factor * m.max(1e-12))
        };
        let bad = !loss.is_finite()
            || !grad_norm.is_finite()
            || exploded(loss, &self.loss)
            || exploded(grad_norm, &self.grad);
        if !bad {
            self.loss.push(loss, self.cfg.window);
            self.grad.push(grad_norm, self.cfg.window);
            self.consecutive = 0;
            return (GuardVerdict::Accept, None);
        }
        let reason = self.trip_reason(loss, grad_norm);
        self.trips += 1;
        self.consecutive += 1;
        if self.consecutive >= self.cfg.max_consecutive_trips {
            self.consecutive = 0;
            self.rollbacks += 1;
            (GuardVerdict::Rollback, Some(reason))
        } else {
            (GuardVerdict::Skip, Some(reason))
        }
    }

    /// Total trips so far (skips plus rollbacks).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total rollbacks demanded so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }
}

/// L2 norm over a worker round's outer gradients — the `grad_norm` input
/// to [`GuardRail::check`]. NaN/Inf anywhere propagates to the result, so
/// a single poisoned component is caught.
pub fn outer_grad_norm(grads: &[(crate::ParamKey, Vec<f32>)]) -> f64 {
    let mut sum = 0.0f64;
    for (_, g) in grads {
        for &v in g {
            sum += (v as f64) * (v as f64);
        }
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamKey;

    fn armed(k: u32) -> GuardRail {
        GuardRail::new(GuardConfig {
            enabled: true,
            max_consecutive_trips: k,
            ..GuardConfig::default()
        })
    }

    #[test]
    fn disabled_guard_accepts_everything() {
        let mut g = GuardRail::new(GuardConfig::default());
        assert_eq!(g.check(f64::NAN, f64::INFINITY).0, GuardVerdict::Accept);
        assert_eq!(g.trips(), 0);
    }

    #[test]
    fn healthy_stream_is_accepted_and_builds_history() {
        let mut g = armed(3);
        for i in 0..20 {
            let (v, why) = g.check(0.7 - 0.01 * i as f64, 1.0);
            assert_eq!(v, GuardVerdict::Accept);
            assert!(why.is_none());
        }
        assert_eq!(g.trips(), 0);
    }

    #[test]
    fn non_finite_trips_immediately_even_without_history() {
        let mut g = armed(3);
        let (v, why) = g.check(f64::NAN, 1.0);
        assert_eq!(v, GuardVerdict::Skip);
        assert_eq!(why, Some("non-finite"));
        assert_eq!(g.check(0.5, f64::INFINITY).0, GuardVerdict::Skip);
        assert_eq!(g.trips(), 2);
    }

    #[test]
    fn explosion_needs_warmup_then_trips_on_threshold() {
        let mut g = armed(10);
        // Before warmup the same spike passes.
        assert_eq!(g.check(100.0, 1.0).0, GuardVerdict::Accept);
        let mut g = armed(10);
        for _ in 0..5 {
            assert_eq!(g.check(0.7, 1.0).0, GuardVerdict::Accept);
        }
        // 10x the median of 0.7 is the boundary; just above trips.
        let (v, why) = g.check(7.1, 1.0);
        assert_eq!(v, GuardVerdict::Skip);
        assert_eq!(why, Some("exploding"));
        // A healthy value right after resets the streak.
        assert_eq!(g.check(0.69, 1.0).0, GuardVerdict::Accept);
        // Exploding grad norm trips independently of a healthy loss.
        assert_eq!(g.check(0.69, 11.0).0, GuardVerdict::Skip);
    }

    #[test]
    fn k_consecutive_trips_demand_rollback_and_reset() {
        let mut g = armed(3);
        assert_eq!(g.check(f64::NAN, 1.0).0, GuardVerdict::Skip);
        assert_eq!(g.check(f64::NAN, 1.0).0, GuardVerdict::Skip);
        assert_eq!(g.check(f64::NAN, 1.0).0, GuardVerdict::Rollback);
        assert_eq!(g.rollbacks(), 1);
        assert_eq!(g.trips(), 3);
        // The streak restarts after a rollback.
        assert_eq!(g.check(f64::NAN, 1.0).0, GuardVerdict::Skip);
    }

    #[test]
    fn grad_norm_helper_propagates_poison() {
        let clean = vec![(ParamKey::new(0, 0), vec![3.0, 4.0])];
        assert!((outer_grad_norm(&clean) - 5.0).abs() < 1e-12);
        let poisoned = vec![(ParamKey::new(0, 0), vec![1.0, f32::NAN])];
        assert!(outer_grad_norm(&poisoned).is_nan());
        assert_eq!(outer_grad_norm(&[]), 0.0);
    }
}
