//! The sharded parameter server.

use mamdr_obs::MetricsRegistry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Addresses one parameter row: an embedding table id plus a row index.
///
/// Dense (non-embedding) parameters use row 0 of their own table id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamKey {
    /// Table identifier.
    pub table: u32,
    /// Row within the table.
    pub row: u32,
}

impl ParamKey {
    /// Convenience constructor.
    pub fn new(table: u32, row: u32) -> Self {
        ParamKey { table, row }
    }
}

/// Number of rows a single pull/push request may carry. Both sides of the
/// batch-first contract are pinned to this: the RPC client splits key sets
/// into frames of at most this many rows, and the in-process
/// [`ParameterServer`] counts one pull per chunk of this size — so the
/// `TrafficStats` pull counter reports the same number whether a batch
/// traveled over shared memory or over the wire. (At the default row width
/// a full chunk is ~128 KiB of values, far under the 16 MiB frame cap.)
pub const WIRE_BATCH_KEYS: usize = 4096;

/// Where a worker's reads come from: the in-process [`ParameterServer`] or
/// a remote stand-in (e.g. an RPC client in `mamdr-rpc`).
///
/// The contract is batch-first: [`RowSource::pull_rows`] and
/// [`RowSource::versions_of`] are the primary operations, so one cache
/// miss set (or one staleness probe) costs one request per
/// [`WIRE_BATCH_KEYS`] chunk rather than one per key. The single-row
/// methods are convenience defaults over the batch path. Everything that
/// mutates the store stays on the concrete server so the write path (and
/// its exactly-once semantics over the wire) remains explicit.
pub trait RowSource {
    /// Pulls the latest values of many rows together with their push
    /// versions, in input-key order. Counted as one RPC per
    /// [`WIRE_BATCH_KEYS`] chunk (zero for an empty key set).
    fn pull_rows(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)>;

    /// Reads many rows' push versions without pulling values, in
    /// input-key order (silent — an observability probe, not counted
    /// traffic).
    fn versions_of(&self, keys: &[ParamKey]) -> Vec<u64>;

    /// Pulls the latest value of a single row together with its push
    /// version — a one-key [`RowSource::pull_rows`].
    fn pull_versioned(&self, key: ParamKey) -> (Vec<f32>, u64) {
        self.pull_rows(std::slice::from_ref(&key)).pop().expect("one key yields one row")
    }

    /// Reads a single row's push version — a one-key
    /// [`RowSource::versions_of`].
    fn version_of(&self, key: ParamKey) -> u64 {
        self.versions_of(std::slice::from_ref(&key)).pop().expect("one key yields one version")
    }
}

/// Byte-accurate synchronization counters.
///
/// This is the measurement the embedding cache exists to improve: every
/// pull/push between a worker and the server increments these, exactly as
/// RPC volume would in the real deployment.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Number of pull RPCs (one per key batch).
    pub pulls: AtomicU64,
    /// Number of push RPCs.
    pub pushes: AtomicU64,
    /// Bytes pulled from the server.
    pub bytes_pulled: AtomicU64,
    /// Bytes pushed to the server.
    pub bytes_pushed: AtomicU64,
}

impl TrafficStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_pulled.load(Ordering::Relaxed) + self.bytes_pushed.load(Ordering::Relaxed)
    }

    /// Total RPC count.
    pub fn total_rpcs(&self) -> u64 {
        self.pulls.load(Ordering::Relaxed) + self.pushes.load(Ordering::Relaxed)
    }

    /// Snapshot as plain numbers `(pulls, pushes, bytes_pulled, bytes_pushed)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.pulls.load(Ordering::Relaxed),
            self.pushes.load(Ordering::Relaxed),
            self.bytes_pulled.load(Ordering::Relaxed),
            self.bytes_pushed.load(Ordering::Relaxed),
        )
    }

    /// Overwrites the counters with a [`TrafficStats::snapshot`] — the
    /// recovery path: a shard store rebuilt from its committed journal
    /// resumes the traffic figures the dead store had at that boundary.
    pub fn restore(&self, snap: (u64, u64, u64, u64)) {
        self.pulls.store(snap.0, Ordering::Relaxed);
        self.pushes.store(snap.1, Ordering::Relaxed);
        self.bytes_pulled.store(snap.2, Ordering::Relaxed);
        self.bytes_pushed.store(snap.3, Ordering::Relaxed);
    }
}

/// A sharded in-memory parameter server.
///
/// Rows are assigned to shards by key hash; each shard is independently
/// lockable so concurrent workers rarely contend (the real deployment's 40
/// server machines play the same role).
pub struct ParameterServer {
    shards: Vec<RwLock<HashMap<ParamKey, Vec<f32>>>>,
    /// Adagrad accumulators for the outer update, sharded like the values.
    adagrad: Vec<RwLock<HashMap<ParamKey, Vec<f32>>>>,
    /// Per-row write counters, bumped on every push — the basis of the
    /// staleness measurement (§IV-E "alleviate inconsistency").
    versions: Vec<RwLock<HashMap<ParamKey, u64>>>,
    traffic: TrafficStats,
    dim_bytes: usize,
    /// Number of *server* shards pull batches are modeled as routed over
    /// (see [`ParameterServer::set_route_shards`]); 1 = the single-server
    /// wire, today's default.
    route_shards: AtomicUsize,
}

impl ParameterServer {
    /// A server with `n_shards` shards; `value_dim` is the per-row vector
    /// width used for byte accounting.
    pub fn new(n_shards: usize, value_dim: usize) -> Self {
        assert!(n_shards >= 1);
        ParameterServer {
            shards: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            adagrad: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            versions: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            traffic: TrafficStats::default(),
            dim_bytes: value_dim * std::mem::size_of::<f32>(),
            route_shards: AtomicUsize::new(1),
        }
    }

    /// Models this store's pull accounting as if key batches were routed
    /// over `n` server shards: [`ParameterServer::pull_batch`] then counts
    /// one RPC per [`WIRE_BATCH_KEYS`] chunk *per owning shard* (the
    /// frames a sharded client spends on the same key set). The default of
    /// 1 is exactly the single-server `div_ceil` accounting. Byte counters
    /// are unaffected — bytes are per-key on any route.
    pub fn set_route_shards(&self, n: usize) {
        assert!(n >= 1, "a route needs at least one shard");
        self.route_shards.store(n, Ordering::Relaxed);
    }

    /// The per-row vector width this server was built for.
    pub fn value_dim(&self) -> usize {
        self.dim_bytes / std::mem::size_of::<f32>()
    }

    fn shard_of(&self, key: ParamKey) -> usize {
        // Fibonacci hashing over the packed key.
        let packed = ((key.table as u64) << 32) | key.row as u64;
        (packed.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as usize % self.shards.len()
    }

    /// Seeds a row without counting traffic (initial placement).
    pub fn init_row(&self, key: ParamKey, value: Vec<f32>) {
        self.shards[self.shard_of(key)].write().insert(key, value);
    }

    /// Pulls the latest value of a row (one RPC, counted).
    ///
    /// Panics if the row was never initialized — workers may only touch
    /// rows the driver placed.
    pub fn pull(&self, key: ParamKey) -> Vec<f32> {
        let v = self.shards[self.shard_of(key)]
            .read()
            .get(&key)
            .unwrap_or_else(|| panic!("pull of uninitialized key {:?}", key))
            .clone();
        self.traffic.pulls.fetch_add(1, Ordering::Relaxed);
        self.traffic.bytes_pulled.fetch_add(self.dim_bytes as u64, Ordering::Relaxed);
        v
    }

    /// Pulls many rows in input-key order, counting one RPC per
    /// [`WIRE_BATCH_KEYS`] chunk — exactly the frames the batched wire
    /// protocol would spend on the same key set, so in-process and
    /// loopback runs report identical pull counters.
    ///
    /// Panics if any row was never initialized — workers may only touch
    /// rows the driver placed.
    pub fn pull_batch(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)> {
        if keys.is_empty() {
            return Vec::new();
        }
        let chunks = crate::shard::route_chunks(keys, self.route_shards.load(Ordering::Relaxed));
        self.traffic.pulls.fetch_add(chunks, Ordering::Relaxed);
        self.traffic
            .bytes_pulled
            .fetch_add((self.dim_bytes * keys.len()) as u64, Ordering::Relaxed);
        keys.iter()
            .map(|&key| {
                let v = self.shards[self.shard_of(key)]
                    .read()
                    .get(&key)
                    .unwrap_or_else(|| panic!("pull of uninitialized key {:?}", key))
                    .clone();
                (v, self.version(key))
            })
            .collect()
    }

    /// Reads a row without traffic accounting (driver-side evaluation).
    pub fn read_silent(&self, key: ParamKey) -> Option<Vec<f32>> {
        self.shards[self.shard_of(key)].read().get(&key).cloned()
    }

    /// Pushes an outer-loop gradient for one row (one RPC, counted) and
    /// applies the server-side update `θ ← θ + lr_scaled · g` where the
    /// scaling is Adagrad over accumulated squared gradients — the paper's
    /// industry configuration (SGD inner, Adagrad outer).
    pub fn push_outer_grad(&self, key: ParamKey, grad: &[f32], lr: f32) {
        self.bump_version(key);
        self.traffic.pushes.fetch_add(1, Ordering::Relaxed);
        self.traffic.bytes_pushed.fetch_add(self.dim_bytes as u64, Ordering::Relaxed);
        let si = self.shard_of(key);
        let mut acc_shard = self.adagrad[si].write();
        // Accumulators start at 0.1 (the TensorFlow Adagrad default): from
        // zero, a row's first-ever update degenerates to lr * sign(g),
        // which on rarely-touched rows amplifies noise to 10x the init
        // scale regardless of how small the pushed delta was.
        let acc = acc_shard.entry(key).or_insert_with(|| vec![0.1; grad.len()]);
        let mut shard = self.shards[si].write();
        let value =
            shard.get_mut(&key).unwrap_or_else(|| panic!("push to uninitialized key {:?}", key));
        assert_eq!(value.len(), grad.len(), "row width mismatch");
        for ((v, &g), a) in value.iter_mut().zip(grad).zip(acc.iter_mut()) {
            *a += g * g;
            *v += lr * g / (a.sqrt() + 1e-8);
        }
    }

    /// Pushes a raw delta applied verbatim (used by the no-cache baseline's
    /// immediate writes).
    pub fn push_delta(&self, key: ParamKey, delta: &[f32]) {
        self.bump_version(key);
        self.traffic.pushes.fetch_add(1, Ordering::Relaxed);
        self.traffic.bytes_pushed.fetch_add(self.dim_bytes as u64, Ordering::Relaxed);
        let si = self.shard_of(key);
        let mut shard = self.shards[si].write();
        let value =
            shard.get_mut(&key).unwrap_or_else(|| panic!("push to uninitialized key {:?}", key));
        for (v, &d) in value.iter_mut().zip(delta) {
            *v += d;
        }
    }

    /// The traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Number of rows stored.
    pub fn n_rows(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Resident payload bytes: the f32 storage of every value row plus
    /// every materialized Adagrad accumulator. Map/key overhead is
    /// excluded — this measures the tensor mass a real PS shard would
    /// account against its memory budget.
    pub fn resident_bytes(&self) -> u64 {
        let f32s: usize = self
            .shards
            .iter()
            .map(|s| s.read().values().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            + self
                .adagrad
                .iter()
                .map(|s| s.read().values().map(Vec::len).sum::<usize>())
                .sum::<usize>();
        (f32s * std::mem::size_of::<f32>()) as u64
    }

    /// Publishes store occupancy into a metrics registry:
    /// `ps_kv_entries` (rows resident) and `ps_kv_bytes` (resident
    /// payload bytes, see [`ParameterServer::resident_bytes`]).
    pub fn export_kv_gauges(&self, registry: &MetricsRegistry) {
        registry.gauge("ps_kv_entries").set(self.n_rows() as f64);
        registry.gauge("ps_kv_bytes").set(self.resident_bytes() as f64);
    }

    /// Publishes store occupancy labeled by server shard, e.g.
    /// `ps_kv_entries{shard="2"}`. The unlabeled family totals are the
    /// caller's job (sum the shards and call
    /// [`ParameterServer::export_kv_gauges`] on the merged store, or set
    /// the gauges directly) — this only writes the per-shard series.
    pub fn export_kv_gauges_for_shard(&self, registry: &MetricsRegistry, shard: usize) {
        registry.gauge(&format!("ps_kv_entries{{shard=\"{shard}\"}}")).set(self.n_rows() as f64);
        registry
            .gauge(&format!("ps_kv_bytes{{shard=\"{shard}\"}}"))
            .set(self.resident_bytes() as f64);
    }

    fn bump_version(&self, key: ParamKey) {
        *self.versions[self.shard_of(key)].write().entry(key).or_insert(0) += 1;
    }

    /// The number of pushes a row has received (0 if never pushed). Silent:
    /// a driver-side observability read, not an RPC.
    pub fn version(&self, key: ParamKey) -> u64 {
        self.versions[self.shard_of(key)].read().get(&key).copied().unwrap_or(0)
    }

    /// Copies every `(key, value)` pair out of the store (checkpointing;
    /// order is unspecified — callers sort).
    pub fn dump_rows(&self) -> Vec<(ParamKey, Vec<f32>)> {
        let mut out = Vec::with_capacity(self.n_rows());
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                out.push((*k, v.clone()));
            }
        }
        out
    }

    /// Copies every materialized Adagrad accumulator row out of the store
    /// (order unspecified — callers sort). Together with
    /// [`ParameterServer::dump_rows`] this is the complete optimizer state
    /// a resumed run needs to continue bit-identically: values alone are
    /// not enough, because a cold-started accumulator rescales the next
    /// update of every previously-touched row.
    pub fn dump_adagrad(&self) -> Vec<(ParamKey, Vec<f32>)> {
        let mut out = Vec::new();
        for shard in &self.adagrad {
            for (k, v) in shard.read().iter() {
                out.push((*k, v.clone()));
            }
        }
        out
    }

    /// Seeds one Adagrad accumulator row verbatim (resume/rollback; no
    /// traffic accounting, no version bump).
    pub fn restore_adagrad_row(&self, key: ParamKey, acc: Vec<f32>) {
        self.adagrad[self.shard_of(key)].write().insert(key, acc);
    }

    /// Restores the full training state — values and Adagrad accumulators —
    /// in place, replacing whatever the store currently holds. Traffic
    /// counters and row versions are deliberately left alone: the RPCs that
    /// moved the now-discarded updates really happened, and versions only
    /// ever need to be monotonic (staleness is measured as a delta within
    /// one round).
    ///
    /// This is the rollback primitive: the server object stays shared (the
    /// RPC front end holds an `Arc` to it), only its contents rewind.
    pub fn restore_state(&self, rows: &[(ParamKey, Vec<f32>)], adagrad: &[(ParamKey, Vec<f32>)]) {
        for shard in &self.shards {
            shard.write().clear();
        }
        for shard in &self.adagrad {
            shard.write().clear();
        }
        for (k, v) in rows {
            self.init_row(*k, v.clone());
        }
        for (k, a) in adagrad {
            self.restore_adagrad_row(*k, a.clone());
        }
    }
}

impl RowSource for ParameterServer {
    fn pull_rows(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)> {
        self.pull_batch(keys)
    }

    fn versions_of(&self, keys: &[ParamKey]) -> Vec<u64> {
        keys.iter().map(|&k| self.version(k)).collect()
    }
}

/// A [`RowSource`] decorator that accumulates the wall-clock its inner
/// source spends serving reads. Tracing-only: a worker wraps its source
/// for one round, then attributes the accumulated time to the round's
/// "pull" phase and the remainder to "compute". `Cell` because each
/// worker's round is single-threaded; the values never feed back into
/// training.
pub struct TimedRowSource<'a, S: RowSource + ?Sized> {
    inner: &'a S,
    nanos: std::cell::Cell<u64>,
}

impl<'a, S: RowSource + ?Sized> TimedRowSource<'a, S> {
    /// Wraps `inner`, starting from zero accumulated time.
    pub fn new(inner: &'a S) -> Self {
        TimedRowSource { inner, nanos: std::cell::Cell::new(0) }
    }

    /// Total wall-clock the inner source spent in reads so far.
    pub fn elapsed(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.nanos.get())
    }

    fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.nanos.set(self.nanos.get() + t0.elapsed().as_nanos() as u64);
        out
    }
}

impl<S: RowSource + ?Sized> RowSource for TimedRowSource<'_, S> {
    fn pull_rows(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)> {
        self.time(|| self.inner.pull_rows(keys))
    }

    fn versions_of(&self, keys: &[ParamKey]) -> Vec<u64> {
        self.time(|| self.inner.versions_of(keys))
    }

    fn pull_versioned(&self, key: ParamKey) -> (Vec<f32>, u64) {
        self.time(|| self.inner.pull_versioned(key))
    }

    fn version_of(&self, key: ParamKey) -> u64 {
        self.time(|| self.inner.version_of(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_pull_roundtrip_counts_traffic() {
        let ps = ParameterServer::new(4, 8);
        let key = ParamKey::new(1, 42);
        ps.init_row(key, vec![1.0; 8]);
        assert_eq!(ps.n_rows(), 1);
        let v = ps.pull(key);
        assert_eq!(v, vec![1.0; 8]);
        let (pulls, pushes, bp, bs) = ps.traffic().snapshot();
        assert_eq!((pulls, pushes), (1, 0));
        assert_eq!(bp, 32);
        assert_eq!(bs, 0);
    }

    #[test]
    #[should_panic(expected = "uninitialized key")]
    fn pull_of_missing_key_panics() {
        ParameterServer::new(2, 4).pull(ParamKey::new(0, 0));
    }

    #[test]
    fn push_outer_grad_applies_adagrad() {
        let ps = ParameterServer::new(2, 2);
        let key = ParamKey::new(0, 0);
        ps.init_row(key, vec![0.0, 0.0]);
        ps.push_outer_grad(key, &[1.0, -2.0], 0.5);
        let v = ps.read_silent(key).unwrap();
        // first Adagrad step from the 0.1 cold-start accumulator:
        // lr * g / sqrt(0.1 + g^2)
        assert!((v[0] - 0.5 / 1.1f32.sqrt()).abs() < 1e-4, "{:?}", v);
        assert!((v[1] + 1.0 / 4.1f32.sqrt()).abs() < 1e-4, "{:?}", v);
        // second identical push moves less (accumulated curvature)
        ps.push_outer_grad(key, &[1.0, -2.0], 0.5);
        let v2 = ps.read_silent(key).unwrap();
        assert!((v2[0] - v[0]) < 0.5 && (v2[0] - v[0]) > 0.0);
    }

    #[test]
    fn accounting_tracks_rows_and_bytes() {
        let ps = ParameterServer::new(2, 4);
        ps.init_row(ParamKey::new(0, 0), vec![0.0; 4]);
        ps.init_row(ParamKey::new(0, 1), vec![0.0; 4]);
        // Two value rows, no accumulators yet.
        assert_eq!(ps.n_rows(), 2);
        assert_eq!(ps.resident_bytes(), 2 * 4 * 4);
        // An outer push materializes one Adagrad accumulator row.
        ps.push_outer_grad(ParamKey::new(0, 0), &[1.0; 4], 0.1);
        assert_eq!(ps.resident_bytes(), 3 * 4 * 4);
        let registry = MetricsRegistry::new();
        ps.export_kv_gauges(&registry);
        assert_eq!(registry.gauge("ps_kv_entries").get(), 2.0);
        assert_eq!(registry.gauge("ps_kv_bytes").get(), 48.0);
    }

    #[test]
    fn row_source_matches_direct_reads() {
        let ps = ParameterServer::new(2, 2);
        let key = ParamKey::new(1, 3);
        ps.init_row(key, vec![1.0, -1.0]);
        ps.push_delta(key, &[1.0, 0.0]);
        let src: &dyn RowSource = &ps;
        assert_eq!(src.pull_versioned(key), (vec![2.0, -1.0], 1));
        assert_eq!(src.version_of(key), 1);
    }

    #[test]
    fn batch_pull_counts_one_rpc_per_chunk() {
        let ps = ParameterServer::new(4, 2);
        let keys: Vec<ParamKey> =
            (0..WIRE_BATCH_KEYS as u32 + 1).map(|r| ParamKey::new(0, r)).collect();
        for &k in &keys {
            ps.init_row(k, vec![k.row as f32, 0.0]);
        }
        // An empty batch is free.
        assert!(ps.pull_batch(&[]).is_empty());
        assert_eq!(ps.traffic().snapshot().0, 0);
        // One chunk worth of keys is one counted pull …
        let rows = ps.pull_batch(&keys[..WIRE_BATCH_KEYS]);
        assert_eq!(rows.len(), WIRE_BATCH_KEYS);
        assert_eq!(ps.traffic().snapshot().0, 1);
        // … one key over the chunk size is two, and bytes follow the rows.
        ps.pull_batch(&keys);
        let (pulls, _, bp, _) = ps.traffic().snapshot();
        assert_eq!(pulls, 3);
        assert_eq!(bp as usize, (2 * WIRE_BATCH_KEYS + 1) * 8);
        // Rows come back in input-key order with their versions.
        let sample = ps.pull_batch(&[keys[7], keys[3]]);
        assert_eq!(sample[0].0[0], 7.0);
        assert_eq!(sample[1].0[0], 3.0);
    }

    #[test]
    fn single_row_defaults_route_through_the_batch_path() {
        let ps = ParameterServer::new(2, 2);
        let key = ParamKey::new(1, 3);
        ps.init_row(key, vec![1.0, -1.0]);
        ps.push_delta(key, &[1.0, 0.0]);
        let src: &dyn RowSource = &ps;
        assert_eq!(src.pull_rows(&[key]), vec![(vec![2.0, -1.0], 1)]);
        assert_eq!(src.versions_of(&[key]), vec![1]);
        // One default single-row pull = one counted RPC, same as before
        // the batch-first redesign.
        let before = ps.traffic().snapshot().0;
        assert_eq!(src.pull_versioned(key), (vec![2.0, -1.0], 1));
        assert_eq!(ps.traffic().snapshot().0, before + 1);
        assert_eq!(src.version_of(key), 1);
    }

    #[test]
    fn restore_state_rewinds_values_and_accumulators() {
        let ps = ParameterServer::new(2, 2);
        let key = ParamKey::new(0, 0);
        ps.init_row(key, vec![1.0, 2.0]);
        ps.push_outer_grad(key, &[1.0, -1.0], 0.5);
        let rows = ps.dump_rows();
        let acc = ps.dump_adagrad();
        assert_eq!(acc.len(), 1, "one accumulator materialized");
        // Move further, then rewind.
        ps.push_outer_grad(key, &[4.0, 4.0], 0.5);
        ps.init_row(ParamKey::new(1, 1), vec![9.0, 9.0]);
        ps.restore_state(&rows, &acc);
        assert_eq!(ps.n_rows(), 1, "extra row dropped by restore");
        assert_eq!(ps.read_silent(key), rows[0].1.clone().into());
        assert_eq!(ps.dump_adagrad(), acc);
        // A post-restore push continues from the restored accumulator: it
        // must match a push applied directly after the snapshot point.
        let twin = ParameterServer::new(2, 2);
        twin.restore_state(&rows, &acc);
        ps.push_outer_grad(key, &[1.0, 1.0], 0.5);
        twin.push_outer_grad(key, &[1.0, 1.0], 0.5);
        assert_eq!(ps.read_silent(key), twin.read_silent(key));
    }

    #[test]
    fn push_delta_is_verbatim() {
        let ps = ParameterServer::new(1, 2);
        let key = ParamKey::new(3, 7);
        ps.init_row(key, vec![1.0, 1.0]);
        ps.push_delta(key, &[0.25, -0.5]);
        assert_eq!(ps.read_silent(key).unwrap(), vec![1.25, 0.5]);
    }

    #[test]
    fn concurrent_pulls_and_pushes_are_safe() {
        let ps = ParameterServer::new(8, 4);
        for r in 0..64 {
            ps.init_row(ParamKey::new(0, r), vec![0.0; 4]);
        }
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let ps = &ps;
                s.spawn(move |_| {
                    for i in 0..200 {
                        let key = ParamKey::new(0, ((t * 53 + i) % 64) as u32);
                        let _ = ps.pull(key);
                        ps.push_delta(key, &[1.0, 0.0, 0.0, 0.0]);
                    }
                });
            }
        })
        .unwrap();
        // All pushes landed: total added mass is 4 threads * 200 pushes.
        let total: f32 = (0..64).map(|r| ps.read_silent(ParamKey::new(0, r)).unwrap()[0]).sum();
        assert_eq!(total, 800.0);
        assert_eq!(ps.traffic().total_rpcs(), 1600);
    }
}
