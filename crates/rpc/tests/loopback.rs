//! Integration tests of the client/server pair over real loopback TCP:
//! request round trips, typed server errors, exactly-once push semantics
//! under duplication and retry, reconnect-after-disconnect, and graceful
//! drain.

use mamdr_obs::MetricsRegistry;
use mamdr_ps::{ParamKey, ParameterServer};
use mamdr_rpc::{
    FaultPlan, FaultState, PsServer, Request, Response, RetryPolicy, RpcError, WorkerClient,
};
use std::sync::Arc;

fn harness(dim: usize) -> (PsServer, Arc<ParameterServer>, Arc<MetricsRegistry>) {
    let ps = Arc::new(ParameterServer::new(4, dim));
    let metrics = Arc::new(MetricsRegistry::new());
    let server =
        PsServer::bind("127.0.0.1:0", Arc::clone(&ps), dim, Arc::clone(&metrics), None, None)
            .unwrap();
    (server, ps, metrics)
}

fn client(server: &PsServer, id: u32, metrics: &Arc<MetricsRegistry>) -> WorkerClient {
    WorkerClient::new(server.addr(), id, RetryPolicy::default(), None, Arc::clone(metrics))
}

fn faulted_client(
    server: &PsServer,
    id: u32,
    metrics: &Arc<MetricsRegistry>,
    policy: RetryPolicy,
    spec: &str,
) -> WorkerClient {
    let plan = FaultPlan::parse(spec).unwrap();
    let fault = Some(FaultState::new(plan, id));
    WorkerClient::new(server.addr(), id, policy, fault, Arc::clone(metrics))
}

#[test]
fn pull_and_push_roundtrip_with_traffic_accounting() {
    let (server, ps, metrics) = harness(4);
    let key = ParamKey::new(0, 7);
    ps.init_row(key, vec![1.0, 2.0, 3.0, 4.0]);
    let mut c = client(&server, 1, &metrics);

    let (value, version) = c.pull(key).unwrap();
    assert_eq!(value, vec![1.0, 2.0, 3.0, 4.0]);
    assert_eq!(version, 0);

    assert!(c.push(key, &[1.0, 0.0, 0.0, 0.0], 0.5).unwrap());
    let (after, version) = c.pull(key).unwrap();
    assert!(after[0] > 1.0, "{after:?}");
    assert_eq!(version, 1);

    // The wire path drives the same counted store operations as the
    // in-process path: two pulls, one push.
    let (pulls, pushes, _, _) = ps.traffic().snapshot();
    assert_eq!((pulls, pushes), (2, 1));
    // A version-only probe is silent.
    assert_eq!(c.pull_version(key).unwrap(), 1);
    assert_eq!(ps.traffic().snapshot().0, 2);
    assert!(metrics.counter("rpc_frames_total").get() >= 4);
}

#[test]
fn uninitialized_key_is_a_server_error_not_a_crash() {
    let (server, _ps, metrics) = harness(2);
    let mut c = client(&server, 1, &metrics);
    // Both the pull and push paths must answer with a typed Error frame
    // (the in-process store would panic); later requests still work.
    match c.pull(ParamKey::new(9, 9)) {
        Err(RpcError::Server(msg)) => assert!(msg.contains("uninitialized")),
        other => panic!("expected server error, got {other:?}"),
    }
    match c.push(ParamKey::new(9, 9), &[0.0, 0.0], 0.1) {
        Err(RpcError::Server(msg)) => assert!(msg.contains("uninitialized")),
        other => panic!("expected server error, got {other:?}"),
    }
    // Server errors are authoritative: none of the retry budget was spent.
    assert_eq!(metrics.counter("rpc_retries_total").get(), 0);
    // The connection survived and still serves requests.
    let key = ParamKey::new(0, 0);
    server.store().init_row(key, vec![1.0, 1.0]);
    assert_eq!(c.pull(key).unwrap().0, vec![1.0, 1.0]);
}

#[test]
fn duplicated_push_frames_are_applied_exactly_once() {
    let (server, ps, metrics) = harness(2);
    let key = ParamKey::new(0, 0);
    ps.init_row(key, vec![0.0, 0.0]);
    // Every request frame is sent twice; the server must deduplicate the
    // copy by (client, seq).
    let mut c = faulted_client(&server, 3, &metrics, RetryPolicy::default(), "seed=1,dup=1.0");
    for _ in 0..10 {
        assert!(c.push(key, &[1.0, 0.0], 1.0).unwrap());
    }
    // The last push's duplicate may still be in flight when its response
    // arrives; frames on one connection are served in order, so a trailing
    // round trip guarantees the server has processed every duplicate.
    c.pull(key).unwrap();
    assert_eq!(ps.traffic().snapshot().1, 10, "store saw each push once");
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), 10);
    assert_eq!(metrics.counter("rpc_push_deduped_total").get(), 10);
    // 10 duplicated pushes plus the duplicated trailing pull.
    assert_eq!(metrics.counter("rpc_faults_duplicated_total").get(), 11);
    // The duplicate responses were recognized as stale and discarded.
    assert!(metrics.counter("rpc_stale_responses_total").get() >= 9);
}

#[test]
fn lost_responses_retry_without_double_applying() {
    let (server, ps, metrics) = harness(2);
    let key = ParamKey::new(0, 0);
    ps.init_row(key, vec![0.0, 0.0]);
    // Half the responses vanish after the server processed the request:
    // the client retries the same sequence number and the server answers
    // from its dedup state instead of re-applying.
    let mut c = faulted_client(
        &server,
        4,
        &metrics,
        RetryPolicy { base_backoff_micros: 10, ..Default::default() },
        "seed=2,drop_recv=0.3",
    );
    for _ in 0..40 {
        c.push(key, &[1.0, 0.0], 1.0).unwrap();
    }
    assert_eq!(ps.traffic().snapshot().1, 40, "exactly one application per logical push");
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), 40);
    let deduped = metrics.counter("rpc_push_deduped_total").get();
    let retries = metrics.counter("rpc_retries_total").get();
    assert!(deduped > 0, "some retries must have hit the dedup path");
    assert_eq!(retries, metrics.counter("rpc_faults_dropped_total").get());
}

#[test]
fn injected_disconnect_reconnects_and_recovers() {
    let (server, ps, metrics) = harness(2);
    let key = ParamKey::new(0, 0);
    ps.init_row(key, vec![5.0, 5.0]);
    let mut c = faulted_client(
        &server,
        5,
        &metrics,
        RetryPolicy { base_backoff_micros: 10, ..Default::default() },
        "seed=3,disconnect=1+3",
    );
    for _ in 0..6 {
        assert_eq!(c.pull(key).unwrap().0, vec![5.0, 5.0]);
    }
    assert_eq!(metrics.counter("rpc_faults_disconnects_total").get(), 2);
    // Initial connect plus one reconnect per injected disconnect.
    assert_eq!(metrics.counter("rpc_connects_total").get(), 3);
    assert_eq!(metrics.counter("rpc_retries_total").get(), 2);
}

#[test]
fn unsendable_requests_exhaust_the_retry_budget() {
    let (server, ps, metrics) = harness(2);
    let key = ParamKey::new(0, 0);
    ps.init_row(key, vec![0.0, 0.0]);
    let mut c = faulted_client(
        &server,
        6,
        &metrics,
        RetryPolicy { max_attempts: 3, base_backoff_micros: 10, ..Default::default() },
        "seed=4,drop_send=1.0",
    );
    match c.pull(key) {
        Err(RpcError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected exhaustion, got {other:?}"),
    }
    assert_eq!(metrics.counter("rpc_retries_total").get(), 2);
    assert_eq!(metrics.counter("rpc_timeouts_total").get(), 3);
    // Nothing ever reached the server.
    assert_eq!(ps.traffic().snapshot().0, 0);
}

#[test]
fn batched_pull_and_push_roundtrip_with_chunked_accounting() {
    let (server, ps, metrics) = harness(2);
    let keys: Vec<ParamKey> = (0..5).map(|i| ParamKey::new(0, i)).collect();
    for (i, &k) in keys.iter().enumerate() {
        ps.init_row(k, vec![i as f32, 0.0]);
    }
    let mut c = client(&server, 1, &metrics);

    match c.call(Request::PullMany { keys: keys.clone() }).unwrap() {
        Response::PullMany { versions, values } => {
            assert_eq!(versions, vec![0; 5]);
            for (i, row) in values.chunks(2).enumerate() {
                assert_eq!(row, &[i as f32, 0.0]);
            }
        }
        other => panic!("unexpected response {other:?}"),
    }
    // The whole batch rode one frame and counted as one store pull.
    assert_eq!(ps.traffic().snapshot().0, 1);

    // One PushMany applies every row under a single sequence number.
    let grads: Vec<f32> = keys.iter().flat_map(|_| [1.0, -1.0]).collect();
    match c.call(Request::PushMany { lr: 1.0, keys: keys.clone(), grads }).unwrap() {
        Response::PushMany { applied } => assert!(applied),
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(ps.traffic().snapshot().1, 5, "one per-row application per batch row");
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), 5);

    // A batched version probe sees every bump and stays silent.
    match c.call(Request::PullVersions { keys }).unwrap() {
        Response::PullVersions { versions } => assert_eq!(versions, vec![1; 5]),
        other => panic!("unexpected response {other:?}"),
    }
    assert_eq!(ps.traffic().snapshot().0, 1, "version probes are unaccounted");
}

#[test]
fn batched_push_retries_dedup_the_whole_batch() {
    let (server, ps, metrics) = harness(2);
    let keys: Vec<ParamKey> = (0..4).map(|i| ParamKey::new(0, i)).collect();
    for &k in &keys {
        ps.init_row(k, vec![0.0, 0.0]);
    }
    // Every response vanishes once: each logical PushMany is sent twice
    // (original + retry) and the server must apply its rows exactly once,
    // deduplicating the retry as a unit.
    let mut c = faulted_client(
        &server,
        7,
        &metrics,
        RetryPolicy { base_backoff_micros: 10, ..Default::default() },
        "seed=5,drop_recv=0.5",
    );
    let mut sent_rows = 0u64;
    for _ in 0..10 {
        let grads: Vec<f32> = keys.iter().flat_map(|_| [1.0, 0.0]).collect();
        let resps =
            c.call_many(vec![Request::PushMany { lr: 1.0, keys: keys.clone(), grads }]).unwrap();
        assert_eq!(resps.len(), 1);
        sent_rows += keys.len() as u64;
    }
    assert_eq!(ps.traffic().snapshot().1, sent_rows, "each batch row applied exactly once");
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), sent_rows);
    let deduped = metrics.counter("rpc_push_deduped_total").get();
    assert!(deduped > 0, "some retried batches must have hit the dedup path");
    assert_eq!(deduped % keys.len() as u64, 0, "dedup counts whole batches");
}

#[test]
fn pipelining_depth_changes_scheduling_not_results() {
    let run = |depth: usize| {
        let (server, ps, metrics) = harness(2);
        let keys: Vec<ParamKey> = (0..6).map(|i| ParamKey::new(i % 4, i)).collect();
        for &k in &keys {
            ps.init_row(k, vec![1.0, 1.0]);
        }
        let policy = RetryPolicy { pipeline_depth: depth, ..Default::default() };
        let mut c = WorkerClient::new(server.addr(), 2, policy, None, Arc::clone(&metrics));
        let reqs: Vec<Request> = keys
            .iter()
            .map(|&k| Request::PushMany { lr: 0.5, keys: vec![k], grads: vec![1.0, -1.0] })
            .collect();
        c.call_many(reqs).unwrap();
        let pulls = c.call_many(vec![Request::PullMany { keys: keys.clone() }]).unwrap();
        let values = match &pulls[0] {
            Response::PullMany { values, .. } => values.clone(),
            other => panic!("unexpected response {other:?}"),
        };
        let frames = metrics.counter("rpc_frames_total").get();
        (values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), ps.traffic().snapshot(), frames)
    };
    // Depth 1 serializes every request; depth 8 keeps the window full.
    // Same requests, same sequence numbers, same store mutations — the
    // depth only changes when frames sit on the wire.
    assert_eq!(run(1), run(8));
}

#[test]
fn window_aborts_sends_after_an_injected_disconnect_preserving_order() {
    let (server, ps, metrics) = harness(2);
    let keys: Vec<ParamKey> = (0..8).map(|i| ParamKey::new(0, i)).collect();
    for &k in &keys {
        ps.init_row(k, vec![0.0, 0.0]);
    }
    // The third request of the pipelined window hits a disconnect: the
    // send loop must stop there (a later-seq frame reaching the server
    // first would poison the highest-seq dedup for the earlier ones) and
    // the sequential path must finish everything in request order.
    let mut c = faulted_client(
        &server,
        8,
        &metrics,
        RetryPolicy { base_backoff_micros: 10, ..Default::default() },
        "seed=6,disconnect=2",
    );
    let reqs: Vec<Request> = keys
        .iter()
        .map(|&k| Request::PushMany { lr: 1.0, keys: vec![k], grads: vec![1.0, 0.0] })
        .collect();
    let resps = c.call_many(reqs).unwrap();
    assert_eq!(resps.len(), keys.len());
    assert_eq!(metrics.counter("rpc_faults_disconnects_total").get(), 1);
    assert_eq!(ps.traffic().snapshot().1, keys.len() as u64, "every push applied exactly once");
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), keys.len() as u64);
    assert_eq!(metrics.counter("rpc_push_deduped_total").get(), 0);
}

#[test]
fn barrier_releases_all_workers_and_dedups_retried_arrivals() {
    let (server, _ps, metrics) = harness(2);
    let n = 4u32;
    let arrived: Vec<_> = std::thread::scope(|scope| {
        (0..n)
            .map(|w| {
                let metrics = Arc::clone(&metrics);
                let addr = server.addr();
                scope.spawn(move || {
                    let mut c =
                        WorkerClient::new(addr, w + 1, RetryPolicy::default(), None, metrics);
                    // Stagger arrivals so the barrier genuinely blocks.
                    std::thread::sleep(std::time::Duration::from_millis(5 * w as u64));
                    c.barrier(1, n).unwrap();
                    std::time::Instant::now()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    // Everyone was released at (nearly) the same instant: after the last
    // arrival, not at their own.
    let first = arrived.iter().min().unwrap();
    let last = arrived.iter().max().unwrap();
    assert!(last.duration_since(*first).as_millis() < 200);
}

#[test]
fn checkpoint_rpc_writes_a_loadable_snapshot() {
    let dim = 2;
    let ps = Arc::new(ParameterServer::new(4, dim));
    ps.init_row(ParamKey::new(0, 0), vec![1.5, -2.5]);
    let metrics = Arc::new(MetricsRegistry::new());
    let dir = std::env::temp_dir().join(format!("mamdr-rpc-ckpt-{}", std::process::id()));
    let server = PsServer::bind(
        "127.0.0.1:0",
        Arc::clone(&ps),
        dim,
        Arc::clone(&metrics),
        Some(dir.clone()),
        None,
    )
    .unwrap();
    let mut c = client(&server, 1, &metrics);
    let path = c.checkpoint(3).unwrap();
    assert!(path.ends_with("ckpt-0000000003.mamdrps"), "{path}");
    let restored = mamdr_ps::checkpoint::load_from_path(std::path::Path::new(&path), 4).unwrap();
    assert_eq!(restored.read_silent(ParamKey::new(0, 0)).unwrap(), vec![1.5, -2.5]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_drain_stops_accepting_and_joins() {
    let (server, _ps, metrics) = harness(2);
    let addr = server.addr();
    let mut c = client(&server, 1, &metrics);
    c.shutdown().unwrap();
    assert!(server.is_draining());
    drop(c);
    server.join();
    // The listener is gone: a fresh connection must fail.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(300)).is_err()
    );
}
