//! Property-based tests of the RPC wire codec: round trips are
//! bit-identical, corruption and truncation surface as typed errors, and
//! attacker-controlled bytes can never panic the decoder or trick it into
//! allocating more than the declared-length cap permits.

use mamdr_ps::ParamKey;
use mamdr_rpc::frame::{
    BarrierReq, CheckpointReq, Frame, FrameError, OpCode, PullManyReq, PullManyResp, PullReq,
    PullResp, PushManyReq, PushReq, PushResp, FRAME_OVERHEAD, MAX_PAYLOAD,
};
use proptest::prelude::*;

fn opcode_from(byte: u8) -> OpCode {
    // Map an arbitrary byte onto the valid op-code range (the table has
    // 15 entries at bytes 1..=15).
    OpCode::from_byte(1 + byte % OpCode::ALL.len() as u8).expect("in range")
}

proptest! {
    #[test]
    fn frame_roundtrip_is_bit_identical(
        op in 0u8..=255,
        flags in 0u8..=255,
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..600),
    ) {
        let frame = Frame { opcode: opcode_from(op), flags, seq, payload };
        let decoded = Frame::decode(frame.to_bytes().as_slice()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn corrupting_any_byte_is_a_typed_error(
        op in 0u8..=255,
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..200),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let frame = Frame::new(opcode_from(op), seq, payload);
        let mut bytes = frame.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Every single-byte flip lands in the magic, the checksummed
        // header+payload region, or the checksum itself — all detected.
        prop_assert!(Frame::decode(bytes.as_slice()).is_err());
    }

    #[test]
    fn truncating_anywhere_is_an_error_not_a_panic(
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..200),
        keep in 0usize..4096,
    ) {
        let bytes = Frame::new(OpCode::Push, seq, payload).to_bytes();
        let keep = keep % bytes.len();
        prop_assert!(Frame::decode(&bytes[..keep]).is_err());
    }

    #[test]
    fn attacker_bytes_never_panic_and_never_overallocate(
        junk in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // Raw junk as a frame stream: must return (almost surely an
        // error), never panic. The decoder validates the length cap before
        // allocating, so even junk that happens to spell an enormous
        // declared length cannot balloon memory.
        let _ = Frame::decode(junk.as_slice());
        // The same junk fed to every payload parser.
        let _ = PullReq::decode(&junk);
        let _ = PullResp::decode(&junk);
        let _ = PushReq::decode(&junk);
        let _ = PushResp::decode(&junk);
        let _ = BarrierReq::decode(&junk);
        let _ = CheckpointReq::decode(&junk);
        let _ = PullManyReq::decode(&junk);
        let _ = PullManyResp::decode(&junk);
        let _ = PushManyReq::decode(&junk);
    }

    #[test]
    fn declared_length_above_cap_is_rejected_before_payload_reads(
        seq in 0u64..u64::MAX,
        excess in 1u32..=u32::MAX - MAX_PAYLOAD,
    ) {
        // Hand-forge a header whose length field exceeds the cap; the
        // decoder must reject it from the 32 header bytes alone.
        let mut bytes = Frame::new(OpCode::Pull, seq, Vec::new()).to_bytes();
        bytes.truncate(FRAME_OVERHEAD - 8); // keep magic + header only
        let lying = MAX_PAYLOAD + excess;
        bytes[20..24].copy_from_slice(&lying.to_le_bytes());
        prop_assert!(matches!(
            Frame::decode(bytes.as_slice()),
            Err(FrameError::TooLarge(n)) if n == lying
        ));
    }

    #[test]
    fn pull_and_push_payloads_roundtrip(
        table in 0u32..16,
        row in 0u32..u32::MAX,
        client in 0u32..64,
        version in 0u64..u64::MAX,
        lr in -10.0f32..10.0,
        values in proptest::collection::vec(-1e30f32..1e30, 0..64),
    ) {
        let key = ParamKey::new(table, row);
        let pull = PullReq { key };
        prop_assert_eq!(PullReq::decode(&pull.encode()).unwrap(), pull);
        let resp = PullResp { version, value: values.clone() };
        prop_assert_eq!(PullResp::decode(&resp.encode()).unwrap(), resp);
        let push = PushReq { client_id: client, key, lr, grad: values };
        prop_assert_eq!(PushReq::decode(&push.encode()).unwrap(), push);
        let bar = BarrierReq { client_id: client, round: version, expected: table };
        prop_assert_eq!(BarrierReq::decode(&bar.encode()).unwrap(), bar);
    }

    #[test]
    fn multi_row_payloads_roundtrip(
        rows in proptest::collection::vec((0u32..16, 0u32..u32::MAX), 1..64),
        dim in 1usize..8,
        client in 0u32..64,
        lr in -10.0f32..10.0,
        seed in -1e30f32..1e30,
    ) {
        let keys: Vec<ParamKey> = rows.iter().map(|&(t, r)| ParamKey::new(t, r)).collect();
        let pull = PullManyReq { keys: keys.clone() };
        prop_assert_eq!(PullManyReq::decode(&pull.encode()).unwrap(), pull);

        let versions: Vec<u64> = (0..keys.len() as u64).collect();
        let values: Vec<f32> = (0..keys.len() * dim).map(|i| seed + i as f32).collect();
        let resp = PullManyResp { versions: versions.clone(), values: values.clone() };
        prop_assert_eq!(PullManyResp::decode(&resp.encode()).unwrap(), resp);
        // The version-only probe shape: rows without value bytes.
        let probe = PullManyResp { versions, values: Vec::new() };
        prop_assert_eq!(PullManyResp::decode(&probe.encode()).unwrap(), probe);

        let push = PushManyReq { client_id: client, lr, keys, grads: values };
        prop_assert_eq!(PushManyReq::decode(&push.encode()).unwrap(), push);
    }

    #[test]
    fn forged_multi_row_counts_error_before_allocating(
        count in 0u32..=u32::MAX,
        body in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        // A forged leading count field: either it happens to describe the
        // remaining bytes exactly (a valid decode), or the decoder must
        // reject it from the count alone — it never trusts the count to
        // size an allocation. u32::MAX keys would claim a 32 GiB vector.
        let mut bytes = count.to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        if count as usize > body.len() / 8 {
            prop_assert!(PullManyReq::decode(&bytes).is_err());
            prop_assert!(PullManyResp::decode(&bytes).is_err());
        } else {
            let _ = PullManyReq::decode(&bytes);
            let _ = PullManyResp::decode(&bytes);
        }
        // PushMany's key count sits after the client id and learning
        // rate; the same forgery must die the same way.
        let mut push_bytes = 7u32.to_le_bytes().to_vec();
        push_bytes.extend_from_slice(&0.5f32.to_le_bytes());
        push_bytes.extend_from_slice(&bytes);
        if count as usize > body.len() / 8 {
            prop_assert!(PushManyReq::decode(&push_bytes).is_err());
        } else {
            let _ = PushManyReq::decode(&push_bytes);
        }
    }

    #[test]
    fn truncating_multi_row_payloads_errors(
        n_keys in 1usize..32,
        dim in 1usize..6,
        cut in 1usize..512,
    ) {
        let keys: Vec<ParamKey> = (0..n_keys as u32).map(|i| ParamKey::new(i % 4, i)).collect();
        let grads: Vec<f32> = (0..n_keys * dim).map(|i| i as f32).collect();
        let push = PushManyReq { client_id: 3, lr: 0.25, keys: keys.clone(), grads };
        let bytes = push.encode();
        let cut = 1 + cut % (bytes.len() - 1);
        prop_assert!(PushManyReq::decode(&bytes[..bytes.len() - cut]).is_err());

        let bytes = PullManyReq { keys }.encode();
        let cut = 1 + cut % (bytes.len() - 1);
        prop_assert!(PullManyReq::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn oversized_key_batches_cross_the_frame_cap_as_errors(
        extra in 1usize..1024,
    ) {
        // A key batch just past what MAX_PAYLOAD can carry: encoding it
        // into a frame must surface `TooLarge` from the cap check, never
        // attempt the oversized wire write.
        let n = MAX_PAYLOAD as usize / 8 + extra;
        let keys: Vec<ParamKey> = (0..n as u32).map(|i| ParamKey::new(0, i)).collect();
        let payload = PullManyReq { keys }.encode();
        prop_assert!(payload.len() as u32 > MAX_PAYLOAD);
        let frame = Frame::new(OpCode::PullMany, 1, payload);
        prop_assert!(matches!(frame.encode(&mut Vec::new()), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_payload_bodies_error(
        values in proptest::collection::vec(-1e6f32..1e6, 1..32),
        cut in 1usize..256,
    ) {
        let push = PushReq {
            client_id: 1,
            key: ParamKey::new(2, 3),
            lr: 0.5,
            grad: values,
        };
        let bytes = push.encode();
        let cut = 1 + cut % (bytes.len() - 1);
        prop_assert!(PushReq::decode(&bytes[..bytes.len() - cut]).is_err());
    }
}
