//! Property-based tests of the RPC wire codec: round trips are
//! bit-identical, corruption and truncation surface as typed errors, and
//! attacker-controlled bytes can never panic the decoder or trick it into
//! allocating more than the declared-length cap permits.

use mamdr_ps::ParamKey;
use mamdr_rpc::frame::{
    BarrierReq, CheckpointReq, Frame, FrameError, OpCode, PullReq, PullResp, PushReq, PushResp,
    FRAME_OVERHEAD, MAX_PAYLOAD,
};
use proptest::prelude::*;

fn opcode_from(byte: u8) -> OpCode {
    // Map an arbitrary byte onto the valid op-code range.
    OpCode::from_byte(1 + byte % 11).expect("in range")
}

proptest! {
    #[test]
    fn frame_roundtrip_is_bit_identical(
        op in 0u8..=255,
        flags in 0u8..=255,
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..600),
    ) {
        let frame = Frame { opcode: opcode_from(op), flags, seq, payload };
        let decoded = Frame::decode(frame.to_bytes().as_slice()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn corrupting_any_byte_is_a_typed_error(
        op in 0u8..=255,
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..200),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let frame = Frame::new(opcode_from(op), seq, payload);
        let mut bytes = frame.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Every single-byte flip lands in the magic, the checksummed
        // header+payload region, or the checksum itself — all detected.
        prop_assert!(Frame::decode(bytes.as_slice()).is_err());
    }

    #[test]
    fn truncating_anywhere_is_an_error_not_a_panic(
        seq in 0u64..u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..200),
        keep in 0usize..4096,
    ) {
        let bytes = Frame::new(OpCode::Push, seq, payload).to_bytes();
        let keep = keep % bytes.len();
        prop_assert!(Frame::decode(&bytes[..keep]).is_err());
    }

    #[test]
    fn attacker_bytes_never_panic_and_never_overallocate(
        junk in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // Raw junk as a frame stream: must return (almost surely an
        // error), never panic. The decoder validates the length cap before
        // allocating, so even junk that happens to spell an enormous
        // declared length cannot balloon memory.
        let _ = Frame::decode(junk.as_slice());
        // The same junk fed to every payload parser.
        let _ = PullReq::decode(&junk);
        let _ = PullResp::decode(&junk);
        let _ = PushReq::decode(&junk);
        let _ = PushResp::decode(&junk);
        let _ = BarrierReq::decode(&junk);
        let _ = CheckpointReq::decode(&junk);
    }

    #[test]
    fn declared_length_above_cap_is_rejected_before_payload_reads(
        seq in 0u64..u64::MAX,
        excess in 1u32..=u32::MAX - MAX_PAYLOAD,
    ) {
        // Hand-forge a header whose length field exceeds the cap; the
        // decoder must reject it from the 32 header bytes alone.
        let mut bytes = Frame::new(OpCode::Pull, seq, Vec::new()).to_bytes();
        bytes.truncate(FRAME_OVERHEAD - 8); // keep magic + header only
        let lying = MAX_PAYLOAD + excess;
        bytes[20..24].copy_from_slice(&lying.to_le_bytes());
        prop_assert!(matches!(
            Frame::decode(bytes.as_slice()),
            Err(FrameError::TooLarge(n)) if n == lying
        ));
    }

    #[test]
    fn pull_and_push_payloads_roundtrip(
        table in 0u32..16,
        row in 0u32..u32::MAX,
        client in 0u32..64,
        version in 0u64..u64::MAX,
        lr in -10.0f32..10.0,
        values in proptest::collection::vec(-1e30f32..1e30, 0..64),
    ) {
        let key = ParamKey::new(table, row);
        let pull = PullReq { key };
        prop_assert_eq!(PullReq::decode(&pull.encode()).unwrap(), pull);
        let resp = PullResp { version, value: values.clone() };
        prop_assert_eq!(PullResp::decode(&resp.encode()).unwrap(), resp);
        let push = PushReq { client_id: client, key, lr, grad: values };
        prop_assert_eq!(PushReq::decode(&push.encode()).unwrap(), push);
        let bar = BarrierReq { client_id: client, round: version, expected: table };
        prop_assert_eq!(BarrierReq::decode(&bar.encode()).unwrap(), bar);
    }

    #[test]
    fn truncated_payload_bodies_error(
        values in proptest::collection::vec(-1e6f32..1e6, 1..32),
        cut in 1usize..256,
    ) {
        let push = PushReq {
            client_id: 1,
            key: ParamKey::new(2, 3),
            lr: 0.5,
            grad: values,
        };
        let bytes = push.encode();
        let cut = 1 + cut % (bytes.len() - 1);
        prop_assert!(PushReq::decode(&bytes[..bytes.len() - cut]).is_err());
    }
}
