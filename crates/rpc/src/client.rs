//! The worker-side RPC client: per-request deadlines, bounded exponential
//! backoff with seeded jitter, reconnect-on-failure, and idempotent
//! retries.
//!
//! Every logical request is assigned one sequence number that is *reused*
//! across its retries. Responses echo the request's sequence number, so a
//! stale response (left over from a duplicated frame or a dropped read) is
//! recognized and discarded instead of being mistaken for the current
//! reply; and the server deduplicates re-sent pushes by `(client, seq)`,
//! which is what makes a retried push exactly-once even when the original
//! was applied but its acknowledgement was lost.

use crate::fault::{FaultDecision, FaultState};
use crate::frame::{
    decode_error, BarrierReq, CheckpointReq, Frame, FrameError, OpCode, PullReq, PullResp, PushReq,
    PushResp, TraceContext, FLAG_VERSION_ONLY,
};
use mamdr_obs::{MetricsRegistry, SpanContext, Tracer};
use mamdr_ps::{ParamKey, RowSource};
use mamdr_tensor::rng::{derive_seed, seeded};
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry and deadline policy of a [`WorkerClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per logical request before giving up.
    pub max_attempts: u32,
    /// First backoff interval; doubles per retry.
    pub base_backoff_micros: u64,
    /// Backoff ceiling.
    pub max_backoff_micros: u64,
    /// Read/write deadline of ordinary requests.
    pub timeout: Duration,
    /// Read deadline of barrier waits, which legitimately block until the
    /// slowest worker arrives — far longer than any ordinary round trip.
    pub barrier_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff_micros: 100,
            max_backoff_micros: 50_000,
            timeout: Duration::from_secs(5),
            barrier_timeout: Duration::from_secs(300),
        }
    }
}

/// A client-side RPC failure.
#[derive(Debug)]
pub enum RpcError {
    /// Wire-level failure (I/O, corruption, protocol violation).
    Frame(FrameError),
    /// The request's deadline expired (real or injected).
    Timeout,
    /// The connection died; the next attempt reconnects.
    ConnectionLost(String),
    /// The server answered with an `Error` frame.
    Server(String),
    /// Every attempt failed; carries the last failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Frame(e) => write!(f, "frame error: {e}"),
            RpcError::Timeout => write!(f, "request deadline expired"),
            RpcError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
            RpcError::Server(m) => write!(f, "server error: {m}"),
            RpcError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(e: FrameError) -> Self {
        RpcError::Frame(e)
    }
}

/// The worker's connection to the parameter server.
pub struct WorkerClient {
    addr: SocketAddr,
    client_id: u32,
    stream: Option<TcpStream>,
    next_seq: u64,
    policy: RetryPolicy,
    fault: Option<FaultState>,
    backoff_rng: StdRng,
    metrics: Arc<MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
    trace_parent: Option<SpanContext>,
}

/// Span name of a client-side logical request, by op-code.
fn op_span_name(op: OpCode) -> &'static str {
    match op {
        OpCode::Pull => "rpc.pull",
        OpCode::Push => "rpc.push",
        OpCode::BarrierSync => "rpc.barrier",
        OpCode::Checkpoint => "rpc.checkpoint",
        OpCode::Shutdown => "rpc.shutdown",
        _ => "rpc.request",
    }
}

impl WorkerClient {
    /// A client for `addr`. `client_id` must be unique among concurrent
    /// clients of the same server (it namespaces push deduplication and
    /// barrier arrival). The connection itself is opened lazily on the
    /// first request.
    pub fn new(
        addr: SocketAddr,
        client_id: u32,
        policy: RetryPolicy,
        fault: Option<FaultState>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        WorkerClient {
            addr,
            client_id,
            stream: None,
            next_seq: 0,
            policy,
            fault,
            // The jitter stream is seeded off the client id, not wall time:
            // backoff schedules are reproducible like everything else.
            backoff_rng: seeded(derive_seed(0xBAC0FF, client_id as u64)),
            metrics,
            tracer: None,
            trace_parent: None,
        }
    }

    /// Attaches (or detaches) a tracer. When present, every logical
    /// request opens a span, each network attempt a child span, and
    /// request frames carry the logical span's [`TraceContext`] so the
    /// server side can parent its handling span to it. Never changes what
    /// goes over the wire beyond the trace extension — frame counts,
    /// sequence numbers and fault decisions are identical with or without
    /// it.
    pub fn with_tracer(mut self, tracer: Option<Arc<Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the span under which subsequent logical request spans are
    /// parented (e.g. the current worker-round span). `None` makes each
    /// request a root span of its own trace.
    pub fn set_trace_parent(&mut self, parent: Option<SpanContext>) {
        self.trace_parent = parent;
    }

    /// Whether a tracer is attached.
    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    /// This client's id.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// Pulls one row: `(value, version)`.
    pub fn pull(&mut self, key: ParamKey) -> Result<(Vec<f32>, u64), RpcError> {
        let resp = self.request(OpCode::Pull, 0, PullReq { key }.encode(), false)?;
        let resp = PullResp::decode(&resp.payload)?;
        Ok((resp.value, resp.version))
    }

    /// Reads one row's push version without transferring the value.
    pub fn pull_version(&mut self, key: ParamKey) -> Result<u64, RpcError> {
        let resp =
            self.request(OpCode::Pull, FLAG_VERSION_ONLY, PullReq { key }.encode(), false)?;
        Ok(PullResp::decode(&resp.payload)?.version)
    }

    /// Pushes one outer gradient. Returns `false` when the server
    /// recognized the push as a retry of an already-applied update.
    pub fn push(&mut self, key: ParamKey, grad: &[f32], lr: f32) -> Result<bool, RpcError> {
        let req = PushReq { client_id: self.client_id, key, lr, grad: grad.to_vec() };
        let resp = self.request(OpCode::Push, 0, req.encode(), false)?;
        Ok(PushResp::decode(&resp.payload)?.applied)
    }

    /// Blocks until `expected` distinct clients have arrived at `round`.
    pub fn barrier(&mut self, round: u64, expected: u32) -> Result<(), RpcError> {
        let req = BarrierReq { client_id: self.client_id, round, expected };
        self.request(OpCode::BarrierSync, 0, req.encode(), true)?;
        Ok(())
    }

    /// Asks the server to write a checkpoint; returns its path.
    pub fn checkpoint(&mut self, round: u64) -> Result<String, RpcError> {
        let resp = self.request(OpCode::Checkpoint, 0, CheckpointReq { round }.encode(), false)?;
        Ok(String::from_utf8_lossy(&resp.payload).into_owned())
    }

    /// Starts the server's graceful drain.
    pub fn shutdown(&mut self) -> Result<(), RpcError> {
        self.request(OpCode::Shutdown, 0, Vec::new(), false)?;
        Ok(())
    }

    /// One logical request: a single sequence number, retried with
    /// exponential backoff until a response arrives or the attempt budget
    /// is spent. When traced, the logical request is one span; every
    /// network attempt (including retries) is a child of it, and the
    /// frame carries the logical span's context so server-side handling
    /// spans parent to it — a retried/deduplicated push shows up as
    /// multiple attempts and multiple server spans under one logical
    /// span.
    fn request(
        &mut self,
        opcode: OpCode,
        flags: u8,
        payload: Vec<u8>,
        barrier: bool,
    ) -> Result<Frame, RpcError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut frame = Frame { opcode, flags, seq, payload };
        // Clone the handle so the span guard borrows a local, leaving
        // `self` free for `&mut` attempts.
        let tracer = self.tracer.clone();
        let logical = tracer.as_deref().map(|t| {
            let mut span = match self.trace_parent {
                Some(p) => t.child(op_span_name(opcode), p),
                None => t.span(op_span_name(opcode)),
            };
            span.attr("seq", seq);
            span
        });
        if let Some(span) = &logical {
            let ctx = span.ctx();
            frame = frame
                .with_trace_context(TraceContext { trace_id: ctx.trace_id, span_id: ctx.span_id });
        }
        let trace_ctx = logical.as_ref().map(|s| s.ctx());
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.attempt(&frame, barrier, trace_ctx, attempt) {
                Ok(resp) => return Ok(resp),
                // An application-level refusal is authoritative: the server
                // received the request and rejected it, so retrying cannot
                // change the answer.
                Err(e @ RpcError::Server(_)) => return Err(e),
                Err(e) => e,
            };
            if attempt >= self.policy.max_attempts {
                return Err(RpcError::Exhausted { attempts: attempt, last: err.to_string() });
            }
            self.metrics.counter("rpc_retries_total").inc();
            let backoff = (self.policy.base_backoff_micros << (attempt - 1).min(20))
                .min(self.policy.max_backoff_micros);
            // Full jitter: a uniform slice of the exponential window, from
            // the client's seeded stream.
            let jittered = self.backoff_rng.gen_range(0..=backoff);
            std::thread::sleep(Duration::from_micros(jittered));
        }
    }

    /// One attempt: roll the fault dice, send, read responses until one
    /// matches this request's sequence number.
    fn attempt(
        &mut self,
        frame: &Frame,
        barrier: bool,
        trace_ctx: Option<SpanContext>,
        attempt_no: u32,
    ) -> Result<Frame, RpcError> {
        let tracer = self.tracer.clone();
        let attempt_span = match (tracer.as_deref(), trace_ctx) {
            (Some(t), Some(ctx)) => {
                let mut span = t.child("rpc.attempt", ctx);
                span.attr("attempt", attempt_no as u64);
                Some(span)
            }
            _ => None,
        };
        let result = self.attempt_inner(frame, barrier, tracer.as_deref());
        if let Some(mut span) = attempt_span {
            span.attr("ok", result.is_ok() as u64);
            span.finish();
        }
        result
    }

    fn attempt_inner(
        &mut self,
        frame: &Frame,
        barrier: bool,
        tracer: Option<&Tracer>,
    ) -> Result<Frame, RpcError> {
        let decision = match &mut self.fault {
            Some(fs) => fs.decide(),
            None => FaultDecision::default(),
        };
        if decision.disconnect {
            self.metrics.counter("rpc_faults_disconnects_total").inc();
            self.drop_connection();
            return Err(RpcError::ConnectionLost("injected disconnect".into()));
        }
        if decision.drop_send {
            // The frame "never left": indistinguishable from a network
            // drop, so it surfaces as a deadline expiry. Simulated rather
            // than slept so fault runs stay fast and their counters exact.
            self.metrics.counter("rpc_faults_dropped_total").inc();
            self.metrics.counter("rpc_timeouts_total").inc();
            return Err(RpcError::Timeout);
        }
        if decision.delay {
            self.metrics.counter("rpc_faults_delayed_total").inc();
            let micros = self.fault.as_ref().expect("delay implies plan").delay_micros();
            std::thread::sleep(Duration::from_micros(micros));
        }

        let read_timeout = if barrier { self.policy.barrier_timeout } else { self.policy.timeout };
        let mut buf = match tracer {
            Some(t) => {
                let t0 = Instant::now();
                let buf = frame.to_bytes();
                t.record_phase("wire.encode", t0.elapsed());
                buf
            }
            None => frame.to_bytes(),
        };
        if decision.duplicate {
            // Two copies of the same frame back-to-back; the server must
            // apply at most one and answer both.
            self.metrics.counter("rpc_faults_duplicated_total").inc();
            buf.extend_from_slice(&frame.to_bytes());
        }
        let stream = self.ensure_connected()?;
        stream.set_read_timeout(Some(read_timeout)).map_err(FrameError::Io)?;
        if let Err(e) = stream.write_all(&buf) {
            self.drop_connection();
            return Err(RpcError::ConnectionLost(e.to_string()));
        }

        loop {
            // Timed decode measures deserialization after the response's
            // first bytes arrive, not the wait for the server.
            let decoded = match tracer {
                Some(t) => Frame::decode_timed(&mut *self.stream.as_mut().expect("connected")).map(
                    |(f, d)| {
                        t.record_phase("wire.decode", d);
                        f
                    },
                ),
                None => Frame::decode(&mut *self.stream.as_mut().expect("connected")),
            };
            let resp = match decoded {
                Ok(f) => f,
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // A real deadline expiry may leave a half-read frame on
                    // the stream; reconnect to resynchronize.
                    self.metrics.counter("rpc_timeouts_total").inc();
                    self.drop_connection();
                    return Err(RpcError::Timeout);
                }
                Err(e) => {
                    self.drop_connection();
                    return Err(e.into());
                }
            };
            if resp.seq != frame.seq {
                // Leftover from a duplicated earlier request or a dropped
                // read: discard and keep reading.
                self.metrics.counter("rpc_stale_responses_total").inc();
                continue;
            }
            if decision.drop_recv {
                // The server processed the request but its response "got
                // lost". The retry will re-send the same sequence number
                // and exercise the server's exactly-once path.
                self.metrics.counter("rpc_faults_dropped_total").inc();
                self.metrics.counter("rpc_timeouts_total").inc();
                return Err(RpcError::Timeout);
            }
            if resp.opcode == OpCode::Error {
                return Err(RpcError::Server(decode_error(&resp.payload)));
            }
            return Ok(resp);
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, RpcError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.policy.timeout)
                .map_err(|e| RpcError::ConnectionLost(e.to_string()))?;
            stream.set_nodelay(true).map_err(FrameError::Io)?;
            stream.set_write_timeout(Some(self.policy.timeout)).map_err(FrameError::Io)?;
            self.metrics.counter("rpc_connects_total").inc();
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn drop_connection(&mut self) {
        self.stream = None;
    }
}

/// A [`RowSource`] over a [`WorkerClient`], letting the generic cached
/// training round ([`mamdr_ps::run_cached_round`]) read rows over the wire
/// exactly as it reads the in-process server. Interior mutability because
/// the socket client needs `&mut` for I/O while `RowSource` reads take
/// `&self`; single-threaded per worker, so a `RefCell` suffices.
///
/// The `RowSource` trait is infallible (the in-process store cannot fail)
/// but the wire can. Instead of panicking — which would abort the whole
/// training process on one worker's bad connection — the source records
/// the *first* RPC failure, stops touching the network, and serves
/// zero-filled rows for the remainder of the round. The worker loop then
/// finds the poisoned flag via [`RpcRowSource::take_error`] and reports a
/// typed failure to the supervisor, which discards the round's output and
/// re-runs the partition.
pub struct RpcRowSource {
    client: RefCell<WorkerClient>,
    dim: usize,
    error: RefCell<Option<RpcError>>,
}

impl RpcRowSource {
    /// Wraps a client serving rows of width `dim` (the width of the
    /// zero rows served after a failure).
    pub fn new(client: WorkerClient, dim: usize) -> Self {
        RpcRowSource { client: RefCell::new(client), dim, error: RefCell::new(None) }
    }

    /// Unwraps the client (e.g. to run the end-of-round barrier).
    pub fn into_client(self) -> WorkerClient {
        self.client.into_inner()
    }

    /// Takes the first RPC failure, if any read failed. Once set, every
    /// subsequent read was served locally as zeros — the round's output is
    /// garbage and must be discarded.
    pub fn take_error(&self) -> Option<RpcError> {
        self.error.borrow_mut().take()
    }

    fn poisoned(&self) -> bool {
        self.error.borrow().is_some()
    }

    fn record(&self, e: RpcError) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl RowSource for RpcRowSource {
    fn pull_versioned(&self, key: ParamKey) -> (Vec<f32>, u64) {
        if self.poisoned() {
            return (vec![0.0; self.dim], 0);
        }
        match self.client.borrow_mut().pull(key) {
            Ok(row) => row,
            Err(e) => {
                self.record(e);
                (vec![0.0; self.dim], 0)
            }
        }
    }

    fn version_of(&self, key: ParamKey) -> u64 {
        if self.poisoned() {
            return 0;
        }
        match self.client.borrow_mut().pull_version(key) {
            Ok(v) => v,
            Err(e) => {
                self.record(e);
                0
            }
        }
    }
}
