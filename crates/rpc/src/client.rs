//! The worker-side RPC client: a typed request/response surface with
//! per-request deadlines, bounded exponential backoff with seeded jitter,
//! reconnect-on-failure, idempotent retries, and request pipelining.
//!
//! Every logical request is assigned one sequence number that is *reused*
//! across its retries. Responses echo the request's sequence number, so a
//! stale response (left over from a duplicated frame or a dropped read) is
//! recognized and discarded instead of being mistaken for the current
//! reply; and the server deduplicates re-sent pushes by `(client, seq)`,
//! which is what makes a retried push exactly-once even when the original
//! was applied but its acknowledgement was lost.
//!
//! All requests flow through one code path: [`WorkerClient::call`] for a
//! single request, [`WorkerClient::call_many`] to pipeline a batch with a
//! bounded in-flight window. The named wrappers (`pull`, `push`, …) are
//! thin conveniences over [`Request`] values, so pipelining, retry,
//! tracing, and fault injection live in exactly one place.

use crate::fault::{FaultDecision, FaultState};
use crate::frame::{
    decode_error, BarrierReq, CheckpointReq, Frame, FrameError, OpCode, PullManyReq, PullManyResp,
    PullReq, PullResp, PushManyReq, PushReq, PushResp, TraceContext, FLAG_VERSION_ONLY,
};
use mamdr_obs::{MetricsRegistry, SpanContext, SpanGuard, Tracer};
use mamdr_ps::{ParamKey, RowSource, ShardMap, WIRE_BATCH_KEYS};
use mamdr_tensor::rng::{derive_seed, seeded};
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry and deadline policy of a [`WorkerClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per logical request before giving up.
    pub max_attempts: u32,
    /// First backoff interval; doubles per retry.
    pub base_backoff_micros: u64,
    /// Backoff ceiling.
    pub max_backoff_micros: u64,
    /// Read/write deadline of ordinary requests.
    pub timeout: Duration,
    /// Read deadline of barrier waits, which legitimately block until the
    /// slowest worker arrives — far longer than any ordinary round trip.
    pub barrier_timeout: Duration,
    /// In-flight window of [`WorkerClient::call_many`]: how many requests
    /// may be on the wire before the client starts reading responses.
    /// Depth 1 degenerates to strictly sequential request/response.
    pub pipeline_depth: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff_micros: 100,
            max_backoff_micros: 50_000,
            timeout: Duration::from_secs(5),
            barrier_timeout: Duration::from_secs(300),
            pipeline_depth: 8,
        }
    }
}

/// A typed request to the parameter server — the single client-side
/// vocabulary behind [`WorkerClient::call`] / [`WorkerClient::call_many`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Read one row (value + version).
    Pull {
        /// The row to read.
        key: ParamKey,
    },
    /// Read one row's push version only (silent server-side).
    PullVersion {
        /// The row to probe.
        key: ParamKey,
    },
    /// Read many rows in one frame. Keys should be `(table, row)`-sorted.
    PullMany {
        /// The rows to read.
        keys: Vec<ParamKey>,
    },
    /// Read many rows' push versions in one frame (silent server-side).
    PullVersions {
        /// The rows to probe.
        keys: Vec<ParamKey>,
    },
    /// Apply one outer-gradient row update.
    Push {
        /// The row to update.
        key: ParamKey,
        /// Server-side Adagrad learning rate.
        lr: f32,
        /// The outer gradient.
        grad: Vec<f32>,
    },
    /// Apply many outer-gradient rows atomically under one sequence
    /// number. Keys should be `(table, row)`-sorted; `grads` holds the
    /// concatenated per-row gradients in key order.
    PushMany {
        /// Server-side Adagrad learning rate.
        lr: f32,
        /// The rows to update.
        keys: Vec<ParamKey>,
        /// Concatenated gradients, `keys.len() * dim` values.
        grads: Vec<f32>,
    },
    /// Block until `expected` distinct clients reached `round`.
    Barrier {
        /// The round boundary.
        round: u64,
        /// Distinct clients required for release.
        expected: u32,
    },
    /// Ask the server to write a checkpoint labelled `round`.
    Checkpoint {
        /// Round label.
        round: u64,
    },
    /// Begin the server's graceful drain.
    Shutdown,
}

impl Request {
    fn opcode(&self) -> OpCode {
        match self {
            Request::Pull { .. } | Request::PullVersion { .. } => OpCode::Pull,
            Request::PullMany { .. } | Request::PullVersions { .. } => OpCode::PullMany,
            Request::Push { .. } => OpCode::Push,
            Request::PushMany { .. } => OpCode::PushMany,
            Request::Barrier { .. } => OpCode::BarrierSync,
            Request::Checkpoint { .. } => OpCode::Checkpoint,
            Request::Shutdown => OpCode::Shutdown,
        }
    }

    fn flags(&self) -> u8 {
        match self {
            Request::PullVersion { .. } | Request::PullVersions { .. } => FLAG_VERSION_ONLY,
            _ => 0,
        }
    }

    fn payload(&self, client_id: u32) -> Vec<u8> {
        match self {
            Request::Pull { key } | Request::PullVersion { key } => PullReq { key: *key }.encode(),
            Request::PullMany { keys } | Request::PullVersions { keys } => {
                PullManyReq { keys: keys.clone() }.encode()
            }
            Request::Push { key, lr, grad } => {
                PushReq { client_id, key: *key, lr: *lr, grad: grad.clone() }.encode()
            }
            Request::PushMany { lr, keys, grads } => {
                PushManyReq { client_id, lr: *lr, keys: keys.clone(), grads: grads.clone() }
                    .encode()
            }
            Request::Barrier { round, expected } => {
                BarrierReq { client_id, round: *round, expected: *expected }.encode()
            }
            Request::Checkpoint { round } => CheckpointReq { round: *round }.encode(),
            Request::Shutdown => Vec::new(),
        }
    }

    fn is_barrier(&self) -> bool {
        matches!(self, Request::Barrier { .. })
    }

    /// Span name of the logical request. The `Many` variants share their
    /// single-row siblings' names: a span consumer cares about pull vs
    /// push, not about the frame-level batching.
    fn span_name(&self) -> &'static str {
        match self {
            Request::Pull { .. }
            | Request::PullVersion { .. }
            | Request::PullMany { .. }
            | Request::PullVersions { .. } => "rpc.pull",
            Request::Push { .. } | Request::PushMany { .. } => "rpc.push",
            Request::Barrier { .. } => "rpc.barrier",
            Request::Checkpoint { .. } => "rpc.checkpoint",
            Request::Shutdown => "rpc.shutdown",
        }
    }

    /// Decodes (and validates) the server's response frame for this
    /// request. The response op-code must be the request's success
    /// op-code — anything else is a protocol violation.
    fn decode_response(&self, resp: &Frame) -> Result<Response, RpcError> {
        let expect = match self.opcode() {
            OpCode::Pull => OpCode::PullOk,
            OpCode::PullMany => OpCode::PullManyOk,
            OpCode::Push => OpCode::PushOk,
            OpCode::PushMany => OpCode::PushManyOk,
            OpCode::BarrierSync => OpCode::BarrierOk,
            OpCode::Checkpoint => OpCode::CheckpointOk,
            OpCode::Shutdown => OpCode::ShutdownOk,
            other => {
                return Err(RpcError::Frame(FrameError::Malformed(format!(
                    "{other:?} is not a request op-code"
                ))))
            }
        };
        if resp.opcode != expect {
            return Err(RpcError::Frame(FrameError::Malformed(format!(
                "expected {expect:?} response, got {:?}",
                resp.opcode
            ))));
        }
        Ok(match self {
            Request::Pull { .. } => {
                let r = PullResp::decode(&resp.payload)?;
                Response::Pull { value: r.value, version: r.version }
            }
            Request::PullVersion { .. } => {
                Response::PullVersion { version: PullResp::decode(&resp.payload)?.version }
            }
            Request::PullMany { keys } => {
                let r = PullManyResp::decode(&resp.payload)?;
                if r.versions.len() != keys.len() {
                    return Err(RpcError::Frame(FrameError::Malformed(format!(
                        "asked for {} rows, response covers {}",
                        keys.len(),
                        r.versions.len()
                    ))));
                }
                Response::PullMany { versions: r.versions, values: r.values }
            }
            Request::PullVersions { keys } => {
                let r = PullManyResp::decode(&resp.payload)?;
                if r.versions.len() != keys.len() || !r.values.is_empty() {
                    return Err(RpcError::Frame(FrameError::Malformed(format!(
                        "version probe of {} rows answered with {} versions, {} values",
                        keys.len(),
                        r.versions.len(),
                        r.values.len()
                    ))));
                }
                Response::PullVersions { versions: r.versions }
            }
            Request::Push { .. } => {
                Response::Push { applied: PushResp::decode(&resp.payload)?.applied }
            }
            Request::PushMany { .. } => {
                Response::PushMany { applied: PushResp::decode(&resp.payload)?.applied }
            }
            Request::Barrier { .. } => Response::Barrier,
            Request::Checkpoint { .. } => {
                Response::Checkpoint { path: String::from_utf8_lossy(&resp.payload).into_owned() }
            }
            Request::Shutdown => Response::Shutdown,
        })
    }
}

/// A typed, validated server response — one variant per [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Row value + version.
    Pull {
        /// Row values.
        value: Vec<f32>,
        /// Push version at read time.
        version: u64,
    },
    /// Version-only probe result.
    PullVersion {
        /// Push version at read time.
        version: u64,
    },
    /// Batched rows: versions and concatenated values in request order.
    PullMany {
        /// Per-key versions.
        versions: Vec<u64>,
        /// Concatenated values, `keys.len() * dim` floats.
        values: Vec<f32>,
    },
    /// Batched version probe result.
    PullVersions {
        /// Per-key versions.
        versions: Vec<u64>,
    },
    /// Push acknowledged.
    Push {
        /// False when the server recognized a duplicate and skipped it.
        applied: bool,
    },
    /// Batch push acknowledged (the whole batch applied or deduplicated).
    PushMany {
        /// False when the server recognized a duplicate and skipped it.
        applied: bool,
    },
    /// Barrier released.
    Barrier,
    /// Checkpoint written.
    Checkpoint {
        /// Path of the checkpoint file on the server.
        path: String,
    },
    /// Drain acknowledged.
    Shutdown,
}

/// A client-side RPC failure.
#[derive(Debug)]
pub enum RpcError {
    /// Wire-level failure (I/O, corruption, protocol violation).
    Frame(FrameError),
    /// The request's deadline expired (real or injected).
    Timeout,
    /// The connection died; the next attempt reconnects.
    ConnectionLost(String),
    /// The server answered with an `Error` frame.
    Server(String),
    /// Every attempt failed; carries the last failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Frame(e) => write!(f, "frame error: {e}"),
            RpcError::Timeout => write!(f, "request deadline expired"),
            RpcError::ConnectionLost(m) => write!(f, "connection lost: {m}"),
            RpcError::Server(m) => write!(f, "server error: {m}"),
            RpcError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(e: FrameError) -> Self {
        RpcError::Frame(e)
    }
}

/// The worker's connection to the parameter server.
pub struct WorkerClient {
    addr: SocketAddr,
    client_id: u32,
    stream: Option<TcpStream>,
    next_seq: u64,
    policy: RetryPolicy,
    fault: Option<FaultState>,
    backoff_rng: StdRng,
    metrics: Arc<MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
    trace_parent: Option<SpanContext>,
}

impl WorkerClient {
    /// A client for `addr`. `client_id` must be unique among concurrent
    /// clients of the same server (it namespaces push deduplication and
    /// barrier arrival). The connection itself is opened lazily on the
    /// first request.
    pub fn new(
        addr: SocketAddr,
        client_id: u32,
        policy: RetryPolicy,
        fault: Option<FaultState>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        WorkerClient {
            addr,
            client_id,
            stream: None,
            next_seq: 0,
            policy,
            fault,
            // The jitter stream is seeded off the client id, not wall time:
            // backoff schedules are reproducible like everything else.
            backoff_rng: seeded(derive_seed(0xBAC0FF, client_id as u64)),
            metrics,
            tracer: None,
            trace_parent: None,
        }
    }

    /// Attaches (or detaches) a tracer. When present, every logical
    /// request opens a span, each network attempt a child span, and
    /// request frames carry the logical span's [`TraceContext`] so the
    /// server side can parent its handling span to it. Never changes what
    /// goes over the wire beyond the trace extension — frame counts,
    /// sequence numbers and fault decisions are identical with or without
    /// it.
    pub fn with_tracer(mut self, tracer: Option<Arc<Tracer>>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the span under which subsequent logical request spans are
    /// parented (e.g. the current worker-round span). `None` makes each
    /// request a root span of its own trace.
    pub fn set_trace_parent(&mut self, parent: Option<SpanContext>) {
        self.trace_parent = parent;
    }

    /// Whether a tracer is attached.
    pub fn has_tracer(&self) -> bool {
        self.tracer.is_some()
    }

    /// This client's id.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// Pulls one row: `(value, version)`.
    pub fn pull(&mut self, key: ParamKey) -> Result<(Vec<f32>, u64), RpcError> {
        match self.call(Request::Pull { key })? {
            Response::Pull { value, version } => Ok((value, version)),
            other => unreachable!("Pull answered with {other:?}"),
        }
    }

    /// Reads one row's push version without transferring the value.
    pub fn pull_version(&mut self, key: ParamKey) -> Result<u64, RpcError> {
        match self.call(Request::PullVersion { key })? {
            Response::PullVersion { version } => Ok(version),
            other => unreachable!("PullVersion answered with {other:?}"),
        }
    }

    /// Pushes one outer gradient. Returns `false` when the server
    /// recognized the push as a retry of an already-applied update.
    pub fn push(&mut self, key: ParamKey, grad: &[f32], lr: f32) -> Result<bool, RpcError> {
        match self.call(Request::Push { key, lr, grad: grad.to_vec() })? {
            Response::Push { applied } => Ok(applied),
            other => unreachable!("Push answered with {other:?}"),
        }
    }

    /// Blocks until `expected` distinct clients have arrived at `round`.
    pub fn barrier(&mut self, round: u64, expected: u32) -> Result<(), RpcError> {
        self.call(Request::Barrier { round, expected })?;
        Ok(())
    }

    /// Asks the server to write a checkpoint; returns its path.
    pub fn checkpoint(&mut self, round: u64) -> Result<String, RpcError> {
        match self.call(Request::Checkpoint { round })? {
            Response::Checkpoint { path } => Ok(path),
            other => unreachable!("Checkpoint answered with {other:?}"),
        }
    }

    /// Starts the server's graceful drain.
    pub fn shutdown(&mut self) -> Result<(), RpcError> {
        self.call(Request::Shutdown)?;
        Ok(())
    }

    /// One logical request: a single sequence number, retried with
    /// exponential backoff until a response arrives or the attempt budget
    /// is spent. When traced, the logical request is one span; every
    /// network attempt (including retries) is a child of it, and the
    /// frame carries the logical span's context so server-side handling
    /// spans parent to it — a retried/deduplicated push shows up as
    /// multiple attempts and multiple server spans under one logical
    /// span.
    pub fn call(&mut self, req: Request) -> Result<Response, RpcError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut frame = Frame {
            opcode: req.opcode(),
            flags: req.flags(),
            seq,
            payload: req.payload(self.client_id),
        };
        // Clone the handle so the span guard borrows a local, leaving
        // `self` free for `&mut` attempts.
        let tracer = self.tracer.clone();
        let logical = tracer.as_deref().map(|t| {
            let mut span = match self.trace_parent {
                Some(p) => t.child(req.span_name(), p),
                None => t.span(req.span_name()),
            };
            span.attr("seq", seq);
            span
        });
        if let Some(span) = &logical {
            let ctx = span.ctx();
            frame = frame
                .with_trace_context(TraceContext { trace_id: ctx.trace_id, span_id: ctx.span_id });
        }
        let trace_ctx = logical.as_ref().map(|s| s.ctx());
        let resp = self.finish_with_retries(&frame, req.is_barrier(), trace_ctx, None)?;
        req.decode_response(&resp)
    }

    /// Pipelines a batch of requests: up to `pipeline_depth` frames are
    /// on the wire before the client starts reading responses, which are
    /// matched back to their requests by sequence number (the server
    /// answers a connection's frames in order, so completions arrive
    /// seq-ordered). Each request keeps its own sequence number across
    /// retries, so the exactly-once dedup contract is exactly that of
    /// sequential [`WorkerClient::call`]s — including under injected
    /// faults, where any request the window could not complete falls back
    /// to the sequential retry path *in request order* (see
    /// [`WorkerClient::attempt_window`] for why ordering is load-bearing).
    ///
    /// Responses are returned in request order. A server `Error` response
    /// is authoritative and fails the whole call. Barrier requests are
    /// not supported here (their read deadline differs) — use
    /// [`WorkerClient::call`].
    pub fn call_many(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, RpcError> {
        debug_assert!(!reqs.iter().any(Request::is_barrier), "barriers are not pipelined");
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let depth = self.policy.pipeline_depth.max(1);
        let tracer = self.tracer.clone();
        // Prepare every frame up front: sequence numbers in request
        // order, one logical span each, trace context embedded before
        // the first send so retries re-use it.
        let mut frames = Vec::with_capacity(reqs.len());
        let mut spans = Vec::with_capacity(reqs.len());
        let mut ctxs = Vec::with_capacity(reqs.len());
        for req in &reqs {
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut frame = Frame {
                opcode: req.opcode(),
                flags: req.flags(),
                seq,
                payload: req.payload(self.client_id),
            };
            let logical = tracer.as_deref().map(|t| {
                let mut span = match self.trace_parent {
                    Some(p) => t.child(req.span_name(), p),
                    None => t.span(req.span_name()),
                };
                span.attr("seq", seq);
                span
            });
            if let Some(span) = &logical {
                let ctx = span.ctx();
                frame = frame.with_trace_context(TraceContext {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                });
            }
            ctxs.push(logical.as_ref().map(|s| s.ctx()));
            spans.push(logical);
            frames.push(frame);
        }
        let n = reqs.len();
        let mut resolved: Vec<Option<Frame>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<Option<RpcError>> = (0..n).map(|_| None).collect();
        let mut start = 0;
        while start < n {
            let end = (start + depth).min(n);
            self.attempt_window(
                &frames[start..end],
                &ctxs[start..end],
                &mut resolved[start..end],
                &mut failures[start..end],
            );
            // Sequential completion of whatever the window could not
            // finish, in request order.
            for i in start..end {
                if resolved[i].is_none() {
                    let first_err = failures[i].take();
                    let resp = self.finish_with_retries(&frames[i], false, ctxs[i], first_err)?;
                    resolved[i] = Some(resp);
                }
            }
            start = end;
        }
        drop(spans);
        let mut out = Vec::with_capacity(n);
        for (req, resp) in reqs.iter().zip(resolved) {
            let resp = resp.expect("every slot resolved above");
            if resp.opcode == OpCode::Error {
                return Err(RpcError::Server(decode_error(&resp.payload)));
            }
            out.push(req.decode_response(&resp)?);
        }
        Ok(out)
    }

    /// Drives one prepared frame to completion: retried with exponential
    /// backoff until a response arrives or the attempt budget is spent.
    /// `window_failure` carries the outcome of a failed pipelined attempt
    /// (which already consumed attempt #1 and its fault draws), so the
    /// retry accounting is identical whether the first attempt ran alone
    /// or inside a window.
    fn finish_with_retries(
        &mut self,
        frame: &Frame,
        barrier: bool,
        trace_ctx: Option<SpanContext>,
        window_failure: Option<RpcError>,
    ) -> Result<Frame, RpcError> {
        let mut attempt = u32::from(window_failure.is_some());
        let mut pending = window_failure;
        loop {
            if let Some(err) = pending.take() {
                if attempt >= self.policy.max_attempts {
                    return Err(RpcError::Exhausted { attempts: attempt, last: err.to_string() });
                }
                self.metrics.counter("rpc_retries_total").inc();
                let backoff = (self.policy.base_backoff_micros << (attempt - 1).min(20))
                    .min(self.policy.max_backoff_micros);
                // Full jitter: a uniform slice of the exponential window,
                // from the client's seeded stream.
                let jittered = self.backoff_rng.gen_range(0..=backoff);
                std::thread::sleep(Duration::from_micros(jittered));
            }
            attempt += 1;
            match self.attempt(frame, barrier, trace_ctx, attempt) {
                Ok(resp) => return Ok(resp),
                // An application-level refusal is authoritative: the server
                // received the request and rejected it, so retrying cannot
                // change the answer.
                Err(e @ RpcError::Server(_)) => return Err(e),
                Err(e) => pending = Some(e),
            }
        }
    }

    /// One attempt: roll the fault dice, send, read responses until one
    /// matches this request's sequence number.
    fn attempt(
        &mut self,
        frame: &Frame,
        barrier: bool,
        trace_ctx: Option<SpanContext>,
        attempt_no: u32,
    ) -> Result<Frame, RpcError> {
        let tracer = self.tracer.clone();
        let attempt_span = match (tracer.as_deref(), trace_ctx) {
            (Some(t), Some(ctx)) => {
                let mut span = t.child("rpc.attempt", ctx);
                span.attr("attempt", attempt_no as u64);
                Some(span)
            }
            _ => None,
        };
        let result = self.attempt_inner(frame, barrier, tracer.as_deref());
        if let Some(mut span) = attempt_span {
            span.attr("ok", result.is_ok() as u64);
            span.finish();
        }
        result
    }

    fn attempt_inner(
        &mut self,
        frame: &Frame,
        barrier: bool,
        tracer: Option<&Tracer>,
    ) -> Result<Frame, RpcError> {
        let decision = match &mut self.fault {
            Some(fs) => fs.decide(),
            None => FaultDecision::default(),
        };
        if decision.disconnect {
            self.metrics.counter("rpc_faults_disconnects_total").inc();
            self.drop_connection();
            return Err(RpcError::ConnectionLost("injected disconnect".into()));
        }
        if decision.drop_send {
            // The frame "never left": indistinguishable from a network
            // drop, so it surfaces as a deadline expiry. Simulated rather
            // than slept so fault runs stay fast and their counters exact.
            self.metrics.counter("rpc_faults_dropped_total").inc();
            self.metrics.counter("rpc_timeouts_total").inc();
            return Err(RpcError::Timeout);
        }
        if decision.delay {
            self.metrics.counter("rpc_faults_delayed_total").inc();
            let micros = self.fault.as_ref().expect("delay implies plan").delay_micros();
            std::thread::sleep(Duration::from_micros(micros));
        }

        let read_timeout = if barrier { self.policy.barrier_timeout } else { self.policy.timeout };
        let mut buf = match tracer {
            Some(t) => {
                let t0 = Instant::now();
                let buf = frame.to_bytes();
                t.record_phase("wire.encode", t0.elapsed());
                buf
            }
            None => frame.to_bytes(),
        };
        if decision.duplicate {
            // Two copies of the same frame back-to-back; the server must
            // apply at most one and answer both.
            self.metrics.counter("rpc_faults_duplicated_total").inc();
            buf.extend_from_slice(&frame.to_bytes());
        }
        let stream = self.ensure_connected()?;
        stream.set_read_timeout(Some(read_timeout)).map_err(FrameError::Io)?;
        if let Err(e) = stream.write_all(&buf) {
            self.drop_connection();
            return Err(RpcError::ConnectionLost(e.to_string()));
        }

        loop {
            // Timed decode measures deserialization after the response's
            // first bytes arrive, not the wait for the server.
            let decoded = match tracer {
                Some(t) => Frame::decode_timed(&mut *self.stream.as_mut().expect("connected")).map(
                    |(f, d)| {
                        t.record_phase("wire.decode", d);
                        f
                    },
                ),
                None => Frame::decode(&mut *self.stream.as_mut().expect("connected")),
            };
            let resp = match decoded {
                Ok(f) => f,
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // A real deadline expiry may leave a half-read frame on
                    // the stream; reconnect to resynchronize.
                    self.metrics.counter("rpc_timeouts_total").inc();
                    self.drop_connection();
                    return Err(RpcError::Timeout);
                }
                Err(e) => {
                    self.drop_connection();
                    return Err(e.into());
                }
            };
            if resp.seq != frame.seq {
                // Leftover from a duplicated earlier request or a dropped
                // read: discard and keep reading.
                self.metrics.counter("rpc_stale_responses_total").inc();
                continue;
            }
            if decision.drop_recv {
                // The server processed the request but its response "got
                // lost". The retry will re-send the same sequence number
                // and exercise the server's exactly-once path.
                self.metrics.counter("rpc_faults_dropped_total").inc();
                self.metrics.counter("rpc_timeouts_total").inc();
                return Err(RpcError::Timeout);
            }
            if resp.opcode == OpCode::Error {
                return Err(RpcError::Server(decode_error(&resp.payload)));
            }
            return Ok(resp);
        }
    }

    /// One pipelined attempt over a window of prepared frames: send every
    /// frame back to back (fault dice rolled per request, in send order —
    /// one four-draw decision per attempted request, same as the
    /// sequential path), then read responses until every sent frame is
    /// resolved or the connection fails. Unresolved slots keep their
    /// first-attempt error in `failures` for the caller's sequential
    /// retry path.
    ///
    /// Ordering is load-bearing: the server's exactly-once dedup keeps
    /// only the *highest* applied sequence number per client, so a
    /// request must never be (re)sent after a later-seq request has been
    /// applied unless it was itself already on the wire (and therefore
    /// possibly applied). The send loop aborts at the first frame that
    /// fails to reach the wire (injected disconnect/drop, write error);
    /// later frames stay unsent and are driven — in request order — by
    /// the sequential path, which preserves the monotonic-seq invariant.
    /// A frame lost *after* sending (dropped response, read failure) is
    /// safe to retry out of that order: it was applied-or-lost before any
    /// later frame, so a dedup answer is truthful.
    fn attempt_window(
        &mut self,
        frames: &[Frame],
        ctxs: &[Option<SpanContext>],
        resolved: &mut [Option<Frame>],
        failures: &mut [Option<RpcError>],
    ) {
        let tracer = self.tracer.clone();
        let t = tracer.as_deref();
        let mut attempt_spans: Vec<Option<SpanGuard<'_>>> = Vec::with_capacity(frames.len());
        let mut outstanding: HashMap<u64, usize> = HashMap::new();
        let mut drop_recv = vec![false; frames.len()];
        // An injected disconnect severs the connection *after* the
        // responses already in flight are drained (they arrived before
        // the cut) — dropping immediately would close the socket with
        // unread data and turn the close into a reset, making server-side
        // accounting racy.
        let mut pending_disconnect = false;
        for (i, frame) in frames.iter().enumerate() {
            let decision = match &mut self.fault {
                Some(fs) => fs.decide(),
                None => FaultDecision::default(),
            };
            let mut span = match (t, ctxs[i]) {
                (Some(t), Some(ctx)) => {
                    let mut s = t.child("rpc.attempt", ctx);
                    s.attr("attempt", 1);
                    Some(s)
                }
                _ => None,
            };
            if decision.disconnect {
                self.metrics.counter("rpc_faults_disconnects_total").inc();
                pending_disconnect = true;
                failures[i] = Some(RpcError::ConnectionLost("injected disconnect".into()));
                if let Some(s) = &mut span {
                    s.attr("ok", 0);
                }
                attempt_spans.push(span);
                break;
            }
            if decision.drop_send {
                self.metrics.counter("rpc_faults_dropped_total").inc();
                self.metrics.counter("rpc_timeouts_total").inc();
                failures[i] = Some(RpcError::Timeout);
                if let Some(s) = &mut span {
                    s.attr("ok", 0);
                }
                attempt_spans.push(span);
                break;
            }
            if decision.delay {
                self.metrics.counter("rpc_faults_delayed_total").inc();
                let micros = self.fault.as_ref().expect("delay implies plan").delay_micros();
                std::thread::sleep(Duration::from_micros(micros));
            }
            let mut buf = match t {
                Some(t) => {
                    let t0 = Instant::now();
                    let buf = frame.to_bytes();
                    t.record_phase("wire.encode", t0.elapsed());
                    buf
                }
                None => frame.to_bytes(),
            };
            if decision.duplicate {
                self.metrics.counter("rpc_faults_duplicated_total").inc();
                buf.extend_from_slice(&frame.to_bytes());
            }
            let timeout = self.policy.timeout;
            let sent: Result<(), RpcError> = match self.ensure_connected() {
                Ok(stream) => {
                    if let Err(e) = stream.set_read_timeout(Some(timeout)) {
                        Err(RpcError::Frame(FrameError::Io(e)))
                    } else if let Err(e) = stream.write_all(&buf) {
                        Err(RpcError::ConnectionLost(e.to_string()))
                    } else {
                        Ok(())
                    }
                }
                Err(e) => Err(e),
            };
            match sent {
                Ok(()) => {
                    drop_recv[i] = decision.drop_recv;
                    outstanding.insert(frame.seq, i);
                    attempt_spans.push(span);
                }
                Err(e) => {
                    self.drop_connection();
                    failures[i] = Some(e);
                    if let Some(s) = &mut span {
                        s.attr("ok", 0);
                    }
                    attempt_spans.push(span);
                    break;
                }
            }
        }
        // Read phase: completions arrive seq-ordered per connection;
        // unknown sequence numbers are stale leftovers (duplicates,
        // dropped reads) and are discarded exactly as in the sequential
        // path.
        let mut drained_by_timeout = false;
        while !outstanding.is_empty() && self.stream.is_some() {
            let decoded = match t {
                Some(t) => Frame::decode_timed(&mut *self.stream.as_mut().expect("connected")).map(
                    |(f, d)| {
                        t.record_phase("wire.decode", d);
                        f
                    },
                ),
                None => Frame::decode(&mut *self.stream.as_mut().expect("connected")),
            };
            match decoded {
                Ok(resp) => {
                    let Some(i) = outstanding.remove(&resp.seq) else {
                        self.metrics.counter("rpc_stale_responses_total").inc();
                        continue;
                    };
                    if drop_recv[i] {
                        // The server processed the request but its response
                        // "got lost"; the sequential retry re-sends the same
                        // sequence number and exercises the dedup path.
                        self.metrics.counter("rpc_faults_dropped_total").inc();
                        self.metrics.counter("rpc_timeouts_total").inc();
                        failures[i] = Some(RpcError::Timeout);
                        if let Some(s) = &mut attempt_spans[i] {
                            s.attr("ok", 0);
                        }
                    } else {
                        if let Some(s) = &mut attempt_spans[i] {
                            s.attr("ok", u64::from(resp.opcode != OpCode::Error));
                        }
                        resolved[i] = Some(resp);
                    }
                }
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // One socket-level deadline expiry; everything still
                    // in flight on this connection is lost with it.
                    self.metrics.counter("rpc_timeouts_total").inc();
                    self.drop_connection();
                    drained_by_timeout = true;
                }
                Err(e) => {
                    self.drop_connection();
                    let mut idxs: Vec<usize> = outstanding.values().copied().collect();
                    idxs.sort_unstable();
                    failures[idxs[0]] = Some(e.into());
                }
            }
        }
        for (_, i) in outstanding {
            if failures[i].is_none() {
                failures[i] = Some(if drained_by_timeout {
                    RpcError::Timeout
                } else {
                    RpcError::ConnectionLost("connection failed mid-window".into())
                });
            }
            if let Some(s) = &mut attempt_spans[i] {
                s.attr("ok", 0);
            }
        }
        if pending_disconnect {
            self.drop_connection();
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, RpcError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.policy.timeout)
                .map_err(|e| RpcError::ConnectionLost(e.to_string()))?;
            stream.set_nodelay(true).map_err(FrameError::Io)?;
            stream.set_write_timeout(Some(self.policy.timeout)).map_err(FrameError::Io)?;
            self.metrics.counter("rpc_connects_total").inc();
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn drop_connection(&mut self) {
        self.stream = None;
    }
}

/// A [`RowSource`] over a [`WorkerClient`], letting the generic cached
/// training round ([`mamdr_ps::run_cached_round`]) read rows over the wire
/// exactly as it reads the in-process server. Interior mutability because
/// the socket client needs `&mut` for I/O while `RowSource` reads take
/// `&self`; single-threaded per worker, so a `RefCell` suffices.
///
/// The `RowSource` trait is infallible (the in-process store cannot fail)
/// but the wire can. Instead of panicking — which would abort the whole
/// training process on one worker's bad connection — the source records
/// the *first* RPC failure, stops touching the network, and serves
/// zero-filled rows for the remainder of the round. The worker loop then
/// finds the poisoned flag via [`RpcRowSource::take_error`] and reports a
/// typed failure to the supervisor, which discards the round's output and
/// re-runs the partition.
pub struct RpcRowSource {
    client: RefCell<WorkerClient>,
    dim: usize,
    error: RefCell<Option<RpcError>>,
}

impl RpcRowSource {
    /// Wraps a client serving rows of width `dim` (the width of the
    /// zero rows served after a failure).
    pub fn new(client: WorkerClient, dim: usize) -> Self {
        RpcRowSource { client: RefCell::new(client), dim, error: RefCell::new(None) }
    }

    /// Unwraps the client (e.g. to run the end-of-round barrier).
    pub fn into_client(self) -> WorkerClient {
        self.client.into_inner()
    }

    /// Takes the first RPC failure, if any read failed. Once set, every
    /// subsequent read was served locally as zeros — the round's output is
    /// garbage and must be discarded.
    pub fn take_error(&self) -> Option<RpcError> {
        self.error.borrow_mut().take()
    }

    fn poisoned(&self) -> bool {
        self.error.borrow().is_some()
    }

    fn record(&self, e: RpcError) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl RowSource for RpcRowSource {
    /// One batched read: the key set is split into [`WIRE_BATCH_KEYS`]
    /// chunks — one `PullMany` frame each, pipelined on the connection —
    /// so a round's whole cache-miss set costs a handful of round trips
    /// instead of one per key.
    fn pull_rows(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)> {
        if keys.is_empty() {
            return Vec::new();
        }
        if self.poisoned() {
            return keys.iter().map(|_| (vec![0.0; self.dim], 0)).collect();
        }
        let reqs: Vec<Request> = keys
            .chunks(WIRE_BATCH_KEYS)
            .map(|chunk| Request::PullMany { keys: chunk.to_vec() })
            .collect();
        match self.client.borrow_mut().call_many(reqs) {
            Ok(resps) => {
                let mut out = Vec::with_capacity(keys.len());
                for (chunk, resp) in keys.chunks(WIRE_BATCH_KEYS).zip(resps) {
                    let Response::PullMany { versions, values } = resp else {
                        unreachable!("PullMany answered with a different variant")
                    };
                    if values.len() != chunk.len() * self.dim {
                        self.record(RpcError::Frame(FrameError::Malformed(format!(
                            "expected {} values for {} rows of width {}, got {}",
                            chunk.len() * self.dim,
                            chunk.len(),
                            self.dim,
                            values.len()
                        ))));
                        return keys.iter().map(|_| (vec![0.0; self.dim], 0)).collect();
                    }
                    for (row, version) in values.chunks(self.dim).zip(versions) {
                        out.push((row.to_vec(), version));
                    }
                }
                out
            }
            Err(e) => {
                self.record(e);
                keys.iter().map(|_| (vec![0.0; self.dim], 0)).collect()
            }
        }
    }

    /// One batched version probe per [`WIRE_BATCH_KEYS`] chunk, silent
    /// server-side like the single-key probe it replaces.
    fn versions_of(&self, keys: &[ParamKey]) -> Vec<u64> {
        if keys.is_empty() {
            return Vec::new();
        }
        if self.poisoned() {
            return vec![0; keys.len()];
        }
        let reqs: Vec<Request> = keys
            .chunks(WIRE_BATCH_KEYS)
            .map(|chunk| Request::PullVersions { keys: chunk.to_vec() })
            .collect();
        match self.client.borrow_mut().call_many(reqs) {
            Ok(resps) => resps
                .into_iter()
                .flat_map(|resp| {
                    let Response::PullVersions { versions } = resp else {
                        unreachable!("PullVersions answered with a different variant")
                    };
                    versions
                })
                .collect(),
            Err(e) => {
                self.record(e);
                vec![0; keys.len()]
            }
        }
    }
}

/// Builds one request per [`WIRE_BATCH_KEYS`] chunk of a shard's sub-batch
/// (`idxs` indexes into the caller's key slice, input order preserved).
fn shard_requests<F>(idxs: &[usize], keys: &[ParamKey], make_req: &F) -> Vec<Request>
where
    F: Fn(Vec<ParamKey>) -> Request,
{
    idxs.chunks(WIRE_BATCH_KEYS)
        .map(|chunk| make_req(chunk.iter().map(|&i| keys[i]).collect()))
        .collect()
}

/// Issues one pipelined [`WorkerClient::call_many`] per non-empty shard and
/// returns the per-shard results (`None` for shards the batch never
/// touches). A single live shard is called inline on the caller's thread —
/// byte-for-byte the traffic a plain [`RpcRowSource`] would produce — while
/// two or more live shards run concurrently on scoped threads, one per
/// shard. Concurrency cannot perturb determinism: each client owns its
/// socket, sequence space, and fault RNG, so nothing is shared across
/// threads.
fn call_shards<F>(
    clients: &mut [WorkerClient],
    parts: &[Vec<usize>],
    keys: &[ParamKey],
    make_req: F,
) -> Vec<Option<Result<Vec<Response>, RpcError>>>
where
    F: Fn(Vec<ParamKey>) -> Request + Sync,
{
    let mut results: Vec<Option<Result<Vec<Response>, RpcError>>> =
        (0..parts.len()).map(|_| None).collect();
    let live = parts.iter().filter(|p| !p.is_empty()).count();
    if live <= 1 {
        if let Some((s, idxs)) = parts.iter().enumerate().find(|(_, p)| !p.is_empty()) {
            let reqs = shard_requests(idxs, keys, &make_req);
            results[s] = Some(clients[s].call_many(reqs));
        }
        return results;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .filter(|(s, _)| !parts[*s].is_empty())
            .map(|(s, client)| {
                let reqs = shard_requests(&parts[s], keys, &make_req);
                scope.spawn(move || (s, client.call_many(reqs)))
            })
            .collect();
        for h in handles {
            let (s, r) = h.join().expect("shard rpc thread never panics");
            results[s] = Some(r);
        }
    });
    results
}

/// A [`RowSource`] over a *fleet* of per-shard [`WorkerClient`]s: every
/// batched read is partitioned by the [`ShardMap`], the per-shard
/// sub-batches are pulled concurrently (pipelined within each connection,
/// parallel across shards), and the responses are re-assembled into the
/// caller's key order. With one shard it degenerates to [`RpcRowSource`]
/// exactly — same frames, same chunking, no extra threads.
///
/// Failure semantics mirror [`RpcRowSource`]: the first error (in shard
/// order, so the record is deterministic) poisons the source, the whole
/// read returns zeros, and the worker loop surfaces the failure via
/// [`ShardedRowSource::take_error`].
pub struct ShardedRowSource {
    clients: RefCell<Vec<WorkerClient>>,
    map: ShardMap,
    dim: usize,
    error: RefCell<Option<RpcError>>,
}

impl ShardedRowSource {
    /// Wraps one client per shard of `map` (panics on a count mismatch).
    pub fn new(clients: Vec<WorkerClient>, map: ShardMap, dim: usize) -> Self {
        assert_eq!(clients.len(), map.n_shards(), "one client per shard");
        ShardedRowSource { clients: RefCell::new(clients), map, dim, error: RefCell::new(None) }
    }

    /// Unwraps the per-shard clients (e.g. to run the end-of-round
    /// barrier, which goes through shard 0 only).
    pub fn into_clients(self) -> Vec<WorkerClient> {
        self.clients.into_inner()
    }

    /// Takes the first RPC failure, if any read failed — same poisoned
    /// contract as [`RpcRowSource::take_error`].
    pub fn take_error(&self) -> Option<RpcError> {
        self.error.borrow_mut().take()
    }

    fn poisoned(&self) -> bool {
        self.error.borrow().is_some()
    }

    fn record(&self, e: RpcError) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn zero_rows(&self, n: usize) -> Vec<(Vec<f32>, u64)> {
        (0..n).map(|_| (vec![0.0; self.dim], 0)).collect()
    }
}

impl RowSource for ShardedRowSource {
    fn pull_rows(&self, keys: &[ParamKey]) -> Vec<(Vec<f32>, u64)> {
        if keys.is_empty() {
            return Vec::new();
        }
        if self.poisoned() {
            return self.zero_rows(keys.len());
        }
        let parts = self.map.partition_indices(keys);
        let mut clients = self.clients.borrow_mut();
        let mut results =
            call_shards(&mut clients, &parts, keys, |keys| Request::PullMany { keys });
        let mut out: Vec<(Vec<f32>, u64)> = Vec::new();
        out.resize_with(keys.len(), || (Vec::new(), 0));
        let mut failed = false;
        for (shard, idxs) in parts.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            match results[shard].take().expect("live shard has a result") {
                Ok(resps) => {
                    for (chunk, resp) in idxs.chunks(WIRE_BATCH_KEYS).zip(resps) {
                        let Response::PullMany { versions, values } = resp else {
                            unreachable!("PullMany answered with a different variant")
                        };
                        if values.len() != chunk.len() * self.dim {
                            self.record(RpcError::Frame(FrameError::Malformed(format!(
                                "expected {} values for {} rows of width {}, got {}",
                                chunk.len() * self.dim,
                                chunk.len(),
                                self.dim,
                                values.len()
                            ))));
                            failed = true;
                            break;
                        }
                        for ((&i, row), version) in
                            chunk.iter().zip(values.chunks(self.dim)).zip(versions)
                        {
                            out[i] = (row.to_vec(), version);
                        }
                    }
                }
                Err(e) => {
                    self.record(e);
                    failed = true;
                }
            }
        }
        if failed {
            return self.zero_rows(keys.len());
        }
        out
    }

    fn versions_of(&self, keys: &[ParamKey]) -> Vec<u64> {
        if keys.is_empty() {
            return Vec::new();
        }
        if self.poisoned() {
            return vec![0; keys.len()];
        }
        let parts = self.map.partition_indices(keys);
        let mut clients = self.clients.borrow_mut();
        let mut results =
            call_shards(&mut clients, &parts, keys, |keys| Request::PullVersions { keys });
        let mut out = vec![0u64; keys.len()];
        let mut failed = false;
        for (shard, idxs) in parts.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            match results[shard].take().expect("live shard has a result") {
                Ok(resps) => {
                    for (chunk, resp) in idxs.chunks(WIRE_BATCH_KEYS).zip(resps) {
                        let Response::PullVersions { versions } = resp else {
                            unreachable!("PullVersions answered with a different variant")
                        };
                        for (&i, version) in chunk.iter().zip(versions) {
                            out[i] = version;
                        }
                    }
                }
                Err(e) => {
                    self.record(e);
                    failed = true;
                }
            }
        }
        if failed {
            return vec![0; keys.len()];
        }
        out
    }
}
