//! The networked parameter server: a thread-per-connection TCP front end
//! over the in-process [`ParameterServer`] store.
//!
//! Responsibilities beyond plain request dispatch:
//!
//! * **Exactly-once pushes.** Clients send pushes with monotonically
//!   increasing sequence numbers; the server remembers the highest applied
//!   sequence per client and applies a push only when its sequence is new.
//!   A retried or duplicated push frame is acknowledged (`applied: false`)
//!   without touching the store. The check-and-apply holds one lock, so
//!   the guarantee survives concurrent connections.
//! * **Round barriers.** `BarrierSync` blocks its connection thread until
//!   the expected number of *distinct* clients has arrived at the round —
//!   arrival is a set insert, so a retried arrival cannot double-count.
//! * **Graceful drain.** `Shutdown` stops the accept loop; existing
//!   connections keep being served until their clients hang up, then
//!   [`PsServer::join`] returns.
//!
//! Every frame in or out is counted (`rpc_frames_total`,
//! `rpc_bytes_in_total`, `rpc_bytes_out_total`), and push dedup is visible
//! as `rpc_push_applied_total` / `rpc_push_deduped_total`.

use crate::frame::{
    encode_error, BarrierReq, CheckpointReq, Frame, FrameError, OpCode, PullManyReq, PullManyResp,
    PullReq, PullResp, PushManyReq, PushReq, PushResp, TraceContext, FLAG_VERSION_ONLY,
    TRACE_EXT_LEN,
};
use mamdr_obs::{MetricsRegistry, SpanContext, Tracer};
use mamdr_ps::{checkpoint, ParameterServer};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Inner {
    ps: Arc<ParameterServer>,
    dim: usize,
    metrics: Arc<MetricsRegistry>,
    /// Highest applied push sequence per client id.
    last_push_seq: Mutex<HashMap<u32, u64>>,
    /// Distinct clients arrived at each barrier round.
    barrier: Mutex<HashMap<u64, HashSet<u32>>>,
    barrier_cv: Condvar,
    draining: AtomicBool,
    /// Set by [`PsServer::kill`]: the shard died hard. Barrier waiters
    /// abort instead of waiting for arrivals that can never come.
    killed: AtomicBool,
    /// Every accepted connection's stream, cloned so a kill can tear the
    /// sockets down under the blocked connection threads.
    conns: Mutex<Vec<TcpStream>>,
    /// Server-shard id when this front end is one of several; frames it
    /// serves are additionally counted as `rpc_frames_total{shard="i"}`.
    shard_label: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    /// When present, each traced request's handling is recorded as a span
    /// parented to the client-side logical span carried in the frame's
    /// trace extension.
    tracer: Option<Arc<Tracer>>,
}

/// The TCP parameter-server front end.
pub struct PsServer {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl PsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop. The store is shared — the driver keeps direct access
    /// for evaluation and checkpoint comparison.
    pub fn bind(
        addr: &str,
        ps: Arc<ParameterServer>,
        dim: usize,
        metrics: Arc<MetricsRegistry>,
        checkpoint_dir: Option<PathBuf>,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<Self> {
        Self::bind_shard(addr, ps, dim, metrics, checkpoint_dir, tracer, None)
    }

    /// [`PsServer::bind`] for one shard of a sharded deployment: frames
    /// this server handles are additionally counted under
    /// `rpc_frames_total{shard="<label>"}` (the unlabeled total still
    /// moves, so single-server dashboards and CI pins keep working).
    pub fn bind_shard(
        addr: &str,
        ps: Arc<ParameterServer>,
        dim: usize,
        metrics: Arc<MetricsRegistry>,
        checkpoint_dir: Option<PathBuf>,
        tracer: Option<Arc<Tracer>>,
        shard_label: Option<usize>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking so the accept loop can observe the drain flag.
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            ps,
            dim,
            metrics,
            last_push_seq: Mutex::new(HashMap::new()),
            barrier: Mutex::new(HashMap::new()),
            barrier_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            shard_label,
            checkpoint_dir,
            tracer,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if accept_inner.draining.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(clone) = stream.try_clone() {
                            accept_inner.conns.lock().expect("conn registry lock").push(clone);
                        }
                        let conn_inner = Arc::clone(&accept_inner);
                        conns.push(std::thread::spawn(move || serve_conn(stream, &conn_inner)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    Err(_) => break,
                }
            }
            // Drain: wait for every open connection to finish.
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(PsServer { addr, inner, accept: Some(accept) })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<ParameterServer> {
        &self.inner.ps
    }

    /// Waits for the accept loop (and every connection it spawned) to
    /// finish. Returns immediately useful only after a `Shutdown` request
    /// and the clients disconnecting.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// True once a `Shutdown` request was processed.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain directly, bypassing the `Shutdown` RPC — the
    /// fallback the trainer uses when the drain request itself fails, so a
    /// dead wire can never wedge [`PsServer::join`].
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Kills the shard *hard*, simulating a server-machine death: every
    /// open connection's socket is shut down under its thread (in-flight
    /// requests fail mid-read or mid-write, nothing is drained), barrier
    /// waiters are woken to abort, the accept loop stops, and the call
    /// returns once every server thread has exited. Unlike the graceful
    /// drain there is no goodbye on the wire — clients observe exactly
    /// what a crashed machine looks like: connection reset.
    pub fn kill(mut self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
        // Take the barrier lock before notifying: a waiter is either
        // holding it (it will re-check `killed` before waiting again) or
        // blocked in `wait` (the notification reaches it) — the flag can
        // never slip between a waiter's check and its sleep.
        {
            let _rounds = self.inner.barrier.lock().expect("barrier lock");
            self.inner.barrier_cv.notify_all();
        }
        for conn in self.inner.conns.lock().expect("conn registry lock").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Span name of a server-side request handling, by op-code.
fn server_span_name(op: OpCode) -> &'static str {
    match op {
        OpCode::Pull | OpCode::PullMany => "server.pull",
        // The push handler's job is applying the update to the store;
        // this is the span the issue's "worker pull/push parents server
        // apply" contract names.
        OpCode::Push | OpCode::PushMany => "server.apply",
        OpCode::BarrierSync => "server.barrier",
        OpCode::Checkpoint => "server.checkpoint",
        OpCode::Shutdown => "server.shutdown",
        _ => "server.request",
    }
}

/// Serves one client connection until EOF, error, or drain + hangup.
fn serve_conn(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let m = &inner.metrics;
    loop {
        let decoded = match &inner.tracer {
            Some(t) => Frame::decode_timed(&mut stream).map(|(f, d)| {
                t.record_phase("wire.decode", d);
                f
            }),
            None => Frame::decode(&mut stream),
        };
        let mut req = match decoded {
            Ok(f) => f,
            // EOF is the clean hangup; a reset is the same hangup when the
            // peer closed with undrained bytes (e.g. a pipelining client
            // that abandoned in-flight responses) — neither is a protocol
            // violation, so neither counts as a bad frame.
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::UnexpectedEof
                    || e.kind() == std::io::ErrorKind::ConnectionReset =>
            {
                return
            }
            Err(_) => {
                // Undecodable bytes: the stream cannot be resynchronized,
                // so count and hang up; the client reconnects and retries.
                m.counter("rpc_frames_bad_total").inc();
                return;
            }
        };
        // Strip the trace extension *before* any accounting or dispatch:
        // from here on the frame is byte-identical to its untraced form,
        // so `rpc_bytes_in_total` (and every payload codec) sees the same
        // bytes with tracing on or off. Extension traffic is visible
        // separately as `rpc_trace_bytes_total`.
        let trace_ctx = match req.take_trace_context() {
            Ok(ctx) => ctx,
            Err(_) => {
                m.counter("rpc_frames_bad_total").inc();
                return;
            }
        };
        if trace_ctx.is_some() {
            m.counter("rpc_trace_bytes_total").add(TRACE_EXT_LEN as u64);
        }
        m.counter("rpc_frames_total").inc();
        if let Some(shard) = inner.shard_label {
            m.counter(&format!("rpc_frames_total{{shard=\"{shard}\"}}")).inc();
        }
        m.counter("rpc_bytes_in_total").add(req.wire_len() as u64);
        let span = match (&inner.tracer, trace_ctx) {
            (Some(t), Some(TraceContext { trace_id, span_id })) => {
                let mut span =
                    t.child(server_span_name(req.opcode), SpanContext { trace_id, span_id });
                span.attr("seq", req.seq);
                Some(span)
            }
            _ => None,
        };
        let resp = handle(&req, inner);
        if let Some(mut span) = span {
            if resp.opcode == OpCode::PushOk || resp.opcode == OpCode::PushManyOk {
                // `applied: false` means the exactly-once path recognized
                // a retransmission — visible in the trace as a deduped
                // sibling attempt under the same logical push span.
                span.attr("deduped", (resp.payload == [0u8]) as u64);
            }
            span.finish();
        }
        m.counter("rpc_bytes_out_total").add(resp.wire_len() as u64);
        let write_ok = match &inner.tracer {
            Some(t) => {
                let t0 = std::time::Instant::now();
                let buf = resp.to_bytes();
                t.record_phase("wire.encode", t0.elapsed());
                stream.write_all(&buf).is_ok()
            }
            None => resp.encode(&mut stream).is_ok(),
        };
        if !write_ok || stream.flush().is_err() {
            return;
        }
    }
}

/// Dispatches one request frame to the store. The response echoes the
/// request's sequence number.
fn handle(req: &Frame, inner: &Inner) -> Frame {
    let seq = req.seq;
    let error = |msg: String| Frame::new(OpCode::Error, seq, encode_error(&msg));
    match req.opcode {
        OpCode::Pull => match PullReq::decode(&req.payload) {
            Ok(pull) => {
                if req.flags & FLAG_VERSION_ONLY != 0 {
                    // Silent observability probe: no value bytes, no
                    // traffic accounting — mirrors `ParameterServer::version`.
                    let version = inner.ps.version(pull.key);
                    let payload = PullResp { version, value: Vec::new() }.encode();
                    return Frame::new(OpCode::PullOk, seq, payload);
                }
                if inner.ps.read_silent(pull.key).is_none() {
                    return error(format!("pull of uninitialized key {:?}", pull.key));
                }
                let value = inner.ps.pull(pull.key);
                let version = inner.ps.version(pull.key);
                Frame::new(OpCode::PullOk, seq, PullResp { version, value }.encode())
            }
            Err(e) => error(format!("bad pull payload: {e}")),
        },
        OpCode::PullMany => match PullManyReq::decode(&req.payload) {
            Ok(pull) => {
                if req.flags & FLAG_VERSION_ONLY != 0 {
                    // Silent observability probe, batched: one frame carries
                    // every version, no value bytes, no traffic accounting.
                    let versions = pull.keys.iter().map(|&k| inner.ps.version(k)).collect();
                    let payload = PullManyResp { versions, values: Vec::new() }.encode();
                    return Frame::new(OpCode::PullManyOk, seq, payload);
                }
                for &key in &pull.keys {
                    if inner.ps.read_silent(key).is_none() {
                        return error(format!("pull of uninitialized key {key:?}"));
                    }
                }
                // One batched store read: counts a single pull per wire
                // chunk, keeping the traffic counter identical to the
                // in-process trainer's.
                let rows = inner.ps.pull_batch(&pull.keys);
                let mut versions = Vec::with_capacity(rows.len());
                let mut values = Vec::with_capacity(rows.len() * inner.dim);
                for (value, version) in rows {
                    versions.push(version);
                    values.extend_from_slice(&value);
                }
                Frame::new(OpCode::PullManyOk, seq, PullManyResp { versions, values }.encode())
            }
            Err(e) => error(format!("bad pull-many payload: {e}")),
        },
        OpCode::Push => match PushReq::decode(&req.payload) {
            Ok(push) => {
                if inner.ps.read_silent(push.key).is_none() {
                    return error(format!("push to uninitialized key {:?}", push.key));
                }
                // Exactly-once: check-and-apply under one lock so retries
                // and concurrent clients cannot double-apply.
                let mut last = inner.last_push_seq.lock().expect("push-seq lock");
                let applied = match last.get(&push.client_id) {
                    Some(&prev) if seq <= prev => false,
                    _ => {
                        inner.ps.push_outer_grad(push.key, &push.grad, push.lr);
                        last.insert(push.client_id, seq);
                        true
                    }
                };
                drop(last);
                let name =
                    if applied { "rpc_push_applied_total" } else { "rpc_push_deduped_total" };
                inner.metrics.counter(name).inc();
                Frame::new(OpCode::PushOk, seq, PushResp { applied }.encode())
            }
            Err(e) => error(format!("bad push payload: {e}")),
        },
        OpCode::PushMany => match PushManyReq::decode(&req.payload) {
            Ok(push) => {
                if push.grads.len() != push.keys.len() * inner.dim {
                    return error(format!(
                        "push-many grad width mismatch: {} grads for {} keys of dim {}",
                        push.grads.len(),
                        push.keys.len(),
                        inner.dim
                    ));
                }
                for &key in &push.keys {
                    if inner.ps.read_silent(key).is_none() {
                        return error(format!("push to uninitialized key {key:?}"));
                    }
                }
                // Exactly-once for the *whole batch*: the frame carries one
                // sequence number, so a retry of a partially lost response
                // dedups the entire row set as a unit — either every row
                // was applied under this seq or none was.
                let mut last = inner.last_push_seq.lock().expect("push-seq lock");
                let applied = match last.get(&push.client_id) {
                    Some(&prev) if seq <= prev => false,
                    _ => {
                        for (key, grad) in push.keys.iter().zip(push.grads.chunks(inner.dim)) {
                            inner.ps.push_outer_grad(*key, grad, push.lr);
                        }
                        last.insert(push.client_id, seq);
                        true
                    }
                };
                drop(last);
                let name =
                    if applied { "rpc_push_applied_total" } else { "rpc_push_deduped_total" };
                inner.metrics.counter(name).add(push.keys.len() as u64);
                Frame::new(OpCode::PushManyOk, seq, PushResp { applied }.encode())
            }
            Err(e) => error(format!("bad push-many payload: {e}")),
        },
        OpCode::BarrierSync => match BarrierReq::decode(&req.payload) {
            Ok(bar) => {
                let mut rounds = inner.barrier.lock().expect("barrier lock");
                rounds.entry(bar.round).or_default().insert(bar.client_id);
                inner.barrier_cv.notify_all();
                while rounds.get(&bar.round).map_or(0, HashSet::len) < bar.expected as usize {
                    if inner.killed.load(Ordering::SeqCst) {
                        // The shard died under us: the remaining arrivals
                        // can never come. (The response rarely reaches the
                        // client — the kill shut the socket down too.)
                        return error("server shard killed".into());
                    }
                    rounds = inner.barrier_cv.wait(rounds).expect("barrier wait");
                }
                Frame::new(OpCode::BarrierOk, seq, Vec::new())
            }
            Err(e) => error(format!("bad barrier payload: {e}")),
        },
        OpCode::Checkpoint => match CheckpointReq::decode(&req.payload) {
            Ok(ck) => match &inner.checkpoint_dir {
                Some(dir) => match checkpoint::save_to_dir(&inner.ps, inner.dim, dir, ck.round) {
                    Ok(path) => Frame::new(
                        OpCode::CheckpointOk,
                        seq,
                        path.to_string_lossy().into_owned().into_bytes(),
                    ),
                    Err(e) => error(format!("checkpoint failed: {e}")),
                },
                None => error("server has no checkpoint directory".into()),
            },
            Err(e) => error(format!("bad checkpoint payload: {e}")),
        },
        OpCode::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            Frame::new(OpCode::ShutdownOk, seq, Vec::new())
        }
        // Response op-codes arriving as requests are protocol violations.
        other => error(format!("unexpected request op-code {other:?}")),
    }
}
