//! Deterministic fault injection at the framing boundary.
//!
//! A [`FaultPlan`] describes, with probabilities and a seed, the failures a
//! client connection suffers: dropped sends, dropped responses, delivery
//! delays, duplicated request frames, and forced disconnects. Each client
//! derives its own RNG stream from the plan seed and its client id, and
//! every request attempt consumes draws in a fixed order — so two runs with
//! the same plan, seed and workload inject *exactly* the same faults, and
//! every `rpc_faults_*` / `rpc_retries_total` counter is reproducible down
//! to the unit. That determinism is what lets CI grep exact counter values
//! out of a fault-injected training run.

use mamdr_tensor::rng::{derive_seed, seeded};
use rand::rngs::StdRng;
use rand::Rng;

/// A deterministic schedule of injected faults.
///
/// All probabilities are per request attempt, in `[0, 1]`. The default plan
/// injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed; client `c` draws from stream `derive_seed(seed, c)`.
    pub seed: u64,
    /// Probability a request frame is never sent (looks like a timeout).
    pub drop_send: f64,
    /// Probability a response frame is lost after the server processed the
    /// request (the retry then exercises the exactly-once path).
    pub drop_recv: f64,
    /// Probability an attempt is delayed by [`FaultPlan::delay_micros`].
    pub delay: f64,
    /// Injected delay duration in microseconds.
    pub delay_micros: u64,
    /// Probability the request frame is sent twice (the server must
    /// deduplicate the second copy).
    pub duplicate: f64,
    /// Request-attempt indices (per client, 0-based) at which the
    /// connection is torn down before sending.
    pub disconnect_at: Vec<u64>,
    /// `(round, worker)` pairs at which the worker *crashes* before doing
    /// any work: it reports a [`crate::trainer::WorkerFailure::Killed`] and
    /// the supervisor must recover the round without it.
    pub kill_worker: Vec<(u64, u32)>,
    /// `(round, worker)` pairs at which the worker *hangs* for
    /// [`FaultPlan::hang_micros`] before starting — long enough to trip the
    /// supervisor's deadline, which restarts the partition elsewhere.
    pub hang_worker: Vec<(u64, u32)>,
    /// How long a hung worker sleeps, in microseconds.
    pub hang_micros: u64,
    /// `(round, worker)` pairs whose outer gradients are poisoned with a
    /// NaN after the round — the deterministic trigger for the divergence
    /// guard.
    pub poison: Vec<(u64, u32)>,
    /// `(round, shard)` pairs at which an entire *server* shard is torn
    /// down before the round runs: every connection to it dies, the round
    /// attempt fails, and the supervisor must restart the shard from its
    /// last committed checkpoint and replay the round.
    pub kill_shard: Vec<(u64, u32)>,
    /// Rounds at which the continual *publisher* crashes mid-write: it
    /// persists only a partial temp file (no fsync, no rename) and offers
    /// nothing to the gate — the atomic-commit proof that a torn write can
    /// never be swapped into serving. Publisher rounds are 1-based
    /// completed-round counts: `kill_publish=2` faults the snapshot that
    /// would have been published as version 2.
    pub kill_publish: Vec<u64>,
    /// Rounds whose committed snapshot file has one byte flipped after the
    /// digest was computed — the gate's digest check must reject it.
    /// 1-based, like [`FaultPlan::kill_publish`].
    pub corrupt_snapshot: Vec<u64>,
    /// Rounds whose outer gradients are poisoned with a NaN on *every*
    /// worker — whole-round divergence. With the `ps::guard` rail armed
    /// the trainer skips/rolls back the round; without it the NaN reaches
    /// the store and the publish gate's finite check is the last line of
    /// defense before traffic. Indices are 0-based epochs, matching the
    /// per-worker `poison` schedule: `poison_round=4` taints the store
    /// from the round published as snapshot version 5 onward.
    pub poison_round: Vec<u64>,
}

impl FaultPlan {
    /// Parses the `dist_bench --fault-plan` spec string: comma-separated
    /// `key=value` fields. Keys: `seed`, `drop_send`, `drop_recv`,
    /// `dup`, `delay` (as `prob:micros`), `disconnect` (as `+`-separated
    /// attempt indices), the scheduled worker faults `kill`, `hang`
    /// and `poison` (each `+`-separated `round:worker` pairs) plus
    /// `hang_micros`, and the scheduled publisher faults `kill_publish`,
    /// `corrupt_snapshot` and `poison_round` (each `+`-separated round
    /// indices). Example:
    ///
    /// ```text
    /// seed=7,drop_send=0.05,drop_recv=0.05,delay=0.1:200,dup=0.05,disconnect=40+90
    /// kill=1:0+2:3,hang=1:2,hang_micros=200000,poison=2:1
    /// kill_publish=2,corrupt_snapshot=3,poison_round=5
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for field in spec.split(',').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault-plan field '{field}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 =
                    v.parse().map_err(|_| format!("fault-plan {key}: '{v}' is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault-plan {key}: probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("fault-plan seed: '{value}'"))?;
                }
                "drop_send" => plan.drop_send = prob(value)?,
                "drop_recv" => plan.drop_recv = prob(value)?,
                "dup" => plan.duplicate = prob(value)?,
                "delay" => {
                    let (p, micros) = value
                        .split_once(':')
                        .ok_or_else(|| format!("fault-plan delay: '{value}' is not prob:micros"))?;
                    plan.delay = prob(p)?;
                    plan.delay_micros = micros
                        .parse()
                        .map_err(|_| format!("fault-plan delay micros: '{micros}'"))?;
                }
                "disconnect" => {
                    plan.disconnect_at = value
                        .split('+')
                        .map(|i| i.parse().map_err(|_| format!("fault-plan disconnect: '{i}'")))
                        .collect::<Result<_, _>>()?;
                }
                "kill" => plan.kill_worker = parse_round_worker("kill", value)?,
                "kill_shard" => plan.kill_shard = parse_round_worker("kill_shard", value)?,
                "hang" => plan.hang_worker = parse_round_worker("hang", value)?,
                "poison" => plan.poison = parse_round_worker("poison", value)?,
                "kill_publish" => plan.kill_publish = parse_rounds("kill_publish", value)?,
                "corrupt_snapshot" => {
                    plan.corrupt_snapshot = parse_rounds("corrupt_snapshot", value)?;
                }
                "poison_round" => plan.poison_round = parse_rounds("poison_round", value)?,
                "hang_micros" => {
                    plan.hang_micros =
                        value.parse().map_err(|_| format!("fault-plan hang_micros: '{value}'"))?;
                }
                other => return Err(format!("fault-plan: unknown key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_noop(&self) -> bool {
        self.drop_send == 0.0
            && self.drop_recv == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.disconnect_at.is_empty()
            && self.kill_worker.is_empty()
            && self.hang_worker.is_empty()
            && self.poison.is_empty()
            && self.kill_shard.is_empty()
            && self.kill_publish.is_empty()
            && self.corrupt_snapshot.is_empty()
            && self.poison_round.is_empty()
    }

    /// True when `worker` is scheduled to crash in `round`. Consulted by
    /// the supervisor on *initial* worker launch only — a restarted worker
    /// is never re-killed, so recovery always terminates. These checks
    /// consume no RNG draws: adding a kill/hang/poison schedule leaves the
    /// wire-fault stream (and every `rpc_faults_*` counter) untouched.
    pub fn should_kill(&self, round: u64, worker: u32) -> bool {
        self.kill_worker.contains(&(round, worker))
    }

    /// True when `worker` is scheduled to hang in `round` (initial launch
    /// only, like [`FaultPlan::should_kill`]).
    pub fn should_hang(&self, round: u64, worker: u32) -> bool {
        self.hang_worker.contains(&(round, worker))
    }

    /// True when `worker`'s round-`round` gradients are to be poisoned
    /// with a NaN (applies to restarts too: the poison models divergent
    /// *data*, which a re-run reproduces). A `poison_round` schedule
    /// poisons *every* worker of that round the same way.
    pub fn should_poison(&self, round: u64, worker: u32) -> bool {
        self.poison.contains(&(round, worker)) || self.poison_round.contains(&round)
    }

    /// True when the continual publisher is scheduled to crash mid-write
    /// after round `round`. Like every scheduled fault, consulting this
    /// consumes no RNG draws, so the wire-fault stream is unshifted.
    pub fn should_kill_publish(&self, round: u64) -> bool {
        self.kill_publish.contains(&round)
    }

    /// True when round `round`'s committed snapshot file is scheduled to
    /// have one byte flipped (post-digest disk corruption).
    pub fn should_corrupt_snapshot(&self, round: u64) -> bool {
        self.corrupt_snapshot.contains(&round)
    }

    /// The server shards scheduled to die in `round`, in schedule order.
    /// Like the worker schedules, consulting this consumes no RNG draws,
    /// and a restarted shard is never re-killed in the replay — recovery
    /// always terminates.
    pub fn shards_to_kill(&self, round: u64) -> Vec<u32> {
        self.kill_shard.iter().filter(|(r, _)| *r == round).map(|&(_, s)| s).collect()
    }
}

/// Parses `+`-separated `round:worker` pairs (e.g. `2:1+3:0`).
fn parse_round_worker(key: &str, value: &str) -> Result<Vec<(u64, u32)>, String> {
    value
        .split('+')
        .map(|pair| {
            let (r, w) = pair
                .split_once(':')
                .ok_or_else(|| format!("fault-plan {key}: '{pair}' is not round:worker"))?;
            let round = r.parse().map_err(|_| format!("fault-plan {key} round: '{r}'"))?;
            let worker = w.parse().map_err(|_| format!("fault-plan {key} worker: '{w}'"))?;
            Ok((round, worker))
        })
        .collect()
}

/// Parses `+`-separated round indices (e.g. `2+5`).
fn parse_rounds(key: &str, value: &str) -> Result<Vec<u64>, String> {
    value
        .split('+')
        .map(|r| r.parse().map_err(|_| format!("fault-plan {key} round: '{r}'")))
        .collect()
}

/// The faults chosen for one request attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Tear the connection down instead of sending.
    pub disconnect: bool,
    /// Pretend the request frame was lost.
    pub drop_send: bool,
    /// Sleep [`FaultPlan::delay_micros`] before sending.
    pub delay: bool,
    /// Send the request frame twice.
    pub duplicate: bool,
    /// Read the response, then pretend it was lost.
    pub drop_recv: bool,
}

/// One client's fault stream: the plan plus the client-specific RNG and
/// attempt counter.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    attempts: u64,
}

impl FaultState {
    /// The fault stream of client `client_id` under `plan`.
    pub fn new(plan: FaultPlan, client_id: u32) -> Self {
        let rng = seeded(derive_seed(plan.seed, client_id as u64));
        FaultState { plan, rng, attempts: 0 }
    }

    /// Decides the faults of the next request attempt.
    ///
    /// Exactly four RNG draws per call, in a fixed order (`drop_send`,
    /// `delay`, `duplicate`, `drop_recv`) regardless of the probabilities —
    /// the stream position depends only on the attempt count, never on
    /// which faults actually fired.
    pub fn decide(&mut self) -> FaultDecision {
        let attempt = self.attempts;
        self.attempts += 1;
        let mut d = FaultDecision {
            disconnect: self.plan.disconnect_at.contains(&attempt),
            drop_send: self.rng.gen_bool(self.plan.drop_send),
            delay: self.rng.gen_bool(self.plan.delay),
            duplicate: self.rng.gen_bool(self.plan.duplicate),
            drop_recv: self.rng.gen_bool(self.plan.drop_recv),
        };
        if d.disconnect {
            // The connection dies before any frame moves; the four draws
            // above were still consumed to keep the stream aligned.
            d.drop_send = false;
            d.delay = false;
            d.duplicate = false;
            d.drop_recv = false;
        }
        d
    }

    /// Injected delay duration.
    pub fn delay_micros(&self) -> u64 {
        self.plan.delay_micros
    }

    /// Number of attempts decided so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_field() {
        let plan = FaultPlan::parse(
            "seed=7,drop_send=0.05,drop_recv=0.1,delay=0.2:300,dup=0.02,disconnect=4+9",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_send, 0.05);
        assert_eq!(plan.drop_recv, 0.1);
        assert_eq!(plan.delay, 0.2);
        assert_eq!(plan.delay_micros, 300);
        assert_eq!(plan.duplicate, 0.02);
        assert_eq!(plan.disconnect_at, vec![4, 9]);
        assert!(!plan.is_noop());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop_send").is_err());
        assert!(FaultPlan::parse("drop_send=2.0").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("disconnect=1+x").is_err());
        assert!(FaultPlan::parse("kill=2").is_err());
        assert!(FaultPlan::parse("kill=x:0").is_err());
        assert!(FaultPlan::parse("hang_micros=soon").is_err());
        assert!(FaultPlan::parse("kill_publish=x").is_err());
        assert!(FaultPlan::parse("corrupt_snapshot=1:0").is_err());
        assert!(FaultPlan::parse("poison_round=2+y").is_err());
    }

    #[test]
    fn parse_scheduled_publisher_faults() {
        let plan = FaultPlan::parse("kill_publish=2+5,corrupt_snapshot=3,poison_round=4").unwrap();
        assert_eq!(plan.kill_publish, vec![2, 5]);
        assert_eq!(plan.corrupt_snapshot, vec![3]);
        assert_eq!(plan.poison_round, vec![4]);
        assert!(!plan.is_noop());
        assert!(plan.should_kill_publish(2) && plan.should_kill_publish(5));
        assert!(!plan.should_kill_publish(3));
        assert!(plan.should_corrupt_snapshot(3) && !plan.should_corrupt_snapshot(2));
        // poison_round poisons every worker of that round.
        assert!(plan.should_poison(4, 0) && plan.should_poison(4, 3));
        assert!(!plan.should_poison(5, 0));
    }

    #[test]
    fn parse_scheduled_worker_faults() {
        let plan = FaultPlan::parse("kill=1:0+2:3,hang=1:2,hang_micros=250000,poison=2:1").unwrap();
        assert_eq!(plan.kill_worker, vec![(1, 0), (2, 3)]);
        assert_eq!(plan.hang_worker, vec![(1, 2)]);
        assert_eq!(plan.hang_micros, 250_000);
        assert_eq!(plan.poison, vec![(2, 1)]);
        assert!(!plan.is_noop());
        assert!(plan.should_kill(1, 0) && plan.should_kill(2, 3));
        assert!(!plan.should_kill(1, 3));
        assert!(plan.should_hang(1, 2) && !plan.should_hang(2, 2));
        assert!(plan.should_poison(2, 1) && !plan.should_poison(1, 1));
    }

    #[test]
    fn parse_scheduled_shard_kills() {
        let plan = FaultPlan::parse("kill_shard=1:2+1:0+3:1").unwrap();
        assert_eq!(plan.kill_shard, vec![(1, 2), (1, 0), (3, 1)]);
        assert!(!plan.is_noop());
        assert_eq!(plan.shards_to_kill(1), vec![2, 0]);
        assert_eq!(plan.shards_to_kill(3), vec![1]);
        assert!(plan.shards_to_kill(0).is_empty());
        assert!(FaultPlan::parse("kill_shard=1").is_err());
        assert!(FaultPlan::parse("kill_shard=x:0").is_err());
    }

    #[test]
    fn scheduled_faults_do_not_shift_the_wire_fault_stream() {
        // A kill/hang/poison schedule must not perturb the per-attempt RNG
        // draws — CI greps exact wire-fault counters across such runs.
        let base = FaultPlan::parse("seed=3,drop_send=0.3,drop_recv=0.3,dup=0.2").unwrap();
        let mut with_sched = base.clone();
        with_sched.kill_worker = vec![(1, 0)];
        with_sched.hang_worker = vec![(2, 1)];
        with_sched.poison = vec![(0, 2)];
        with_sched.kill_shard = vec![(1, 1)];
        with_sched.kill_publish = vec![2];
        with_sched.corrupt_snapshot = vec![3];
        with_sched.poison_round = vec![4];
        let run = |plan: &FaultPlan| -> Vec<FaultDecision> {
            let mut fs = FaultState::new(plan.clone(), 1);
            (0..100).map(|_| fs.decide()).collect()
        };
        assert_eq!(run(&base), run(&with_sched));
    }

    #[test]
    fn decisions_are_deterministic_per_client() {
        let plan = FaultPlan::parse("seed=3,drop_send=0.3,drop_recv=0.3,dup=0.2").unwrap();
        let run = |client: u32| -> Vec<FaultDecision> {
            let mut fs = FaultState::new(plan.clone(), client);
            (0..200).map(|_| fs.decide()).collect()
        };
        assert_eq!(run(1), run(1));
        // Distinct clients draw from decorrelated streams.
        assert_ne!(run(1), run(2));
        // With these rates, every fault kind fires at least once in 200.
        let seq = run(1);
        assert!(seq.iter().any(|d| d.drop_send));
        assert!(seq.iter().any(|d| d.drop_recv));
        assert!(seq.iter().any(|d| d.duplicate));
    }

    #[test]
    fn disconnect_fires_at_exact_attempts_and_masks_other_faults() {
        let plan = FaultPlan::parse("seed=1,drop_send=1.0,disconnect=2").unwrap();
        let mut fs = FaultState::new(plan, 0);
        assert!(!fs.decide().disconnect);
        assert!(!fs.decide().disconnect);
        let d = fs.decide();
        assert!(d.disconnect && !d.drop_send);
        assert!(!fs.decide().disconnect);
        assert_eq!(fs.attempts(), 4);
    }
}
