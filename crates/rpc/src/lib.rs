//! # mamdr-rpc
//!
//! The networked PS–worker runtime: what `mamdr-ps` simulates with shared
//! memory, this crate runs over real sockets — a length-prefixed,
//! checksummed TCP wire protocol ([`frame`]), a thread-per-connection
//! parameter-server front end ([`server`]), a retrying worker client with
//! per-request deadlines and idempotent sequence-numbered pushes
//! ([`client`]), deterministic fault injection at the framing boundary
//! ([`fault`]), and a loopback distributed trainer ([`trainer`]) that
//! reproduces the in-process synchronous trainer bit for bit when faults
//! are off.
//!
//! Built on `std::net` only. All counters land in `mamdr-obs` under the
//! `rpc_*` namespace, and every injected fault is drawn from a seeded RNG
//! stream, so even a heavily faulted run has exactly reproducible
//! `rpc_retries_total` / `rpc_faults_*_total` values.

pub mod client;
pub mod fault;
pub mod frame;
pub mod server;
pub mod trainer;

pub use client::{
    Request, Response, RetryPolicy, RpcError, RpcRowSource, ShardedRowSource, WorkerClient,
};
pub use fault::{FaultDecision, FaultPlan, FaultState};
pub use frame::{Frame, FrameError, OpCode, MAX_PAYLOAD, WIRE_VERSION};
pub use server::PsServer;
pub use trainer::{DistributedTrainer, LoopbackConfig, PublishHook, TrainerError, WorkerFailure};
