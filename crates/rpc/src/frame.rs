//! The length-prefixed binary wire protocol between PS and workers.
//!
//! Every message is one frame (little-endian):
//!
//! ```text
//! magic   "MAMDRRPC1"            9 bytes
//! version u8   (= WIRE_VERSION)  op-codes are versioned by this byte
//! opcode  u8
//! flags   u8
//! seq     u64                    request id, echoed by the response
//! len     u32                    payload length, <= MAX_PAYLOAD
//! payload len bytes
//! crc     u64                    FNV-1a over version..payload (not magic)
//! ```
//!
//! Design points:
//!
//! * **Checksummed.** The trailing FNV-1a digest covers the header (after
//!   the magic) and the payload, so a flipped bit anywhere in a frame is a
//!   typed [`FrameError::Checksum`] — never a silently corrupted update.
//! * **Length-capped.** `len` is validated against [`MAX_PAYLOAD`] *before*
//!   any payload allocation; attacker-controlled declared lengths cannot
//!   make the decoder over-allocate.
//! * **Zero-copy f32 sections.** Row payloads move through
//!   [`mamdr_util::write_f32_section`] / [`read_f32_into`], which on
//!   little-endian hosts write and read the f32 memory block directly.
//! * **Sequence-numbered.** `seq` pairs responses with requests (a client
//!   discards stale responses after a retry) and makes pushes idempotent:
//!   the server applies each `(client, seq)` push at most once.

use mamdr_ps::ParamKey;
use mamdr_util::{read_f32_into, Checksum};
use std::io::{Read, Write};

/// The 9-byte frame magic.
pub const MAGIC: &[u8; 9] = b"MAMDRRPC1";

/// Wire-protocol version. Bumped whenever op-codes or payload layouts
/// change; a server rejects frames from a different version with a typed
/// error instead of misparsing them. Version 2 added the vectorized
/// `PullMany`/`PushMany` family (multi-row payloads, one frame per key
/// batch instead of one per key).
pub const WIRE_VERSION: u8 = 2;

/// Hard cap on a frame's declared payload length (16 MiB). Validated
/// before allocation: a malicious or corrupt length field cannot force an
/// absurd allocation.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Bytes of framing around the payload: 9 magic + 1 version + 1 opcode +
/// 1 flags + 8 seq + 4 len + 8 crc.
pub const FRAME_OVERHEAD: usize = 32;

/// Pull flag: respond with the row's version only (no value section, no
/// traffic accounting server-side) — used by staleness probes.
pub const FLAG_VERSION_ONLY: u8 = 0b0000_0001;

/// Trace flag: the payload is prefixed by a [`TraceContext`] extension
/// ([`TRACE_EXT_LEN`] bytes) carrying the sender's trace/span ids, so a
/// server-side span can parent to the worker-side span that caused it.
/// The extension is stripped (and the flag cleared) by
/// [`Frame::take_trace_context`] before any payload codec runs; frames
/// without the flag are byte-identical to the untraced protocol.
pub const FLAG_TRACE: u8 = 0b0000_0010;

/// Version byte of the trace-context extension (independent of
/// [`WIRE_VERSION`] so the extension can evolve without a protocol bump).
pub const TRACE_EXT_VERSION: u8 = 1;

/// Encoded size of the trace-context extension: 1 version + 8 trace id +
/// 8 span id.
pub const TRACE_EXT_LEN: usize = 17;

/// The trace identity a traced request carries across the wire: which
/// trace the request belongs to and which sender-side span is the logical
/// parent of all server-side work it causes. Retries re-send the *same*
/// context (the logical span's), so deduplicated and retried attempts all
/// land under one logical span in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every causally related span.
    pub trace_id: u64,
    /// The sender-side logical span the receiver parents to.
    pub span_id: u64,
}

impl TraceContext {
    /// Encodes the extension (version byte + ids, little-endian).
    pub fn encode(&self) -> [u8; TRACE_EXT_LEN] {
        let mut out = [0u8; TRACE_EXT_LEN];
        out[0] = TRACE_EXT_VERSION;
        out[1..9].copy_from_slice(&self.trace_id.to_le_bytes());
        out[9..17].copy_from_slice(&self.span_id.to_le_bytes());
        out
    }

    /// Decodes the extension, rejecting unknown extension versions.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() != TRACE_EXT_LEN {
            return Err(FrameError::Malformed(format!(
                "trace extension needs {TRACE_EXT_LEN} bytes, has {}",
                bytes.len()
            )));
        }
        if bytes[0] != TRACE_EXT_VERSION {
            return Err(FrameError::Malformed(format!(
                "unknown trace extension version {}",
                bytes[0]
            )));
        }
        Ok(TraceContext {
            trace_id: u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")),
            span_id: u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")),
        })
    }
}

/// Operation codes of wire version 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Worker → PS: read one row (optionally version-only).
    Pull = 1,
    /// PS → worker: row version + value.
    PullOk = 2,
    /// Worker → PS: apply one outer-gradient push (idempotent by seq).
    Push = 3,
    /// PS → worker: push acknowledged (applied or deduplicated).
    PushOk = 4,
    /// Worker → PS: block until every worker reached this round boundary.
    BarrierSync = 5,
    /// PS → worker: barrier released.
    BarrierOk = 6,
    /// Worker → PS: snapshot the store to the server's checkpoint dir.
    Checkpoint = 7,
    /// PS → worker: checkpoint written (payload carries the path).
    CheckpointOk = 8,
    /// Driver → PS: begin graceful drain.
    Shutdown = 9,
    /// PS → driver: drain acknowledged.
    ShutdownOk = 10,
    /// PS → worker: request-level failure (message payload).
    Error = 11,
    /// Worker → PS: read many rows in one frame (optionally version-only).
    PullMany = 12,
    /// PS → worker: versions + concatenated values for a `PullMany`.
    PullManyOk = 13,
    /// Worker → PS: apply many outer-gradient rows atomically (one seq
    /// dedups the whole batch).
    PushMany = 14,
    /// PS → worker: batch push acknowledged (applied or deduplicated).
    PushManyOk = 15,
}

impl OpCode {
    /// Every op-code of the current wire version, in byte order. This is
    /// the single table both wire directions share: encode casts the
    /// variant (`as u8`), decode scans this table — adding a variant here
    /// makes it decodable, and a variant missing from the table fails the
    /// exhaustive roundtrip test, so the two directions cannot drift.
    pub const ALL: [OpCode; 15] = [
        OpCode::Pull,
        OpCode::PullOk,
        OpCode::Push,
        OpCode::PushOk,
        OpCode::BarrierSync,
        OpCode::BarrierOk,
        OpCode::Checkpoint,
        OpCode::CheckpointOk,
        OpCode::Shutdown,
        OpCode::ShutdownOk,
        OpCode::Error,
        OpCode::PullMany,
        OpCode::PullManyOk,
        OpCode::PushMany,
        OpCode::PushManyOk,
    ];

    /// Decodes an op-code byte of the current wire version by table
    /// lookup — the inverse of `op as u8`.
    pub fn from_byte(b: u8) -> Result<Self, FrameError> {
        OpCode::ALL.iter().copied().find(|op| *op as u8 == b).ok_or(FrameError::UnknownOpcode(b))
    }
}

/// A decode/transport error. Every way untrusted bytes can be malformed
/// maps to a typed variant — the decoder never panics.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure (includes truncation mid-frame).
    Io(std::io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 9]),
    /// The frame's version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The op-code byte is not defined in this wire version.
    UnknownOpcode(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The FNV-1a digest does not match the received bytes.
    Checksum { stored: u64, computed: u64 },
    /// A payload body is shorter/longer than its op-code requires.
    Malformed(String),
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::UnknownOpcode(b) => write!(f, "unknown op-code {b}"),
            FrameError::TooLarge(n) => {
                write!(f, "declared payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Operation code.
    pub opcode: OpCode,
    /// Op-specific flags (e.g. [`FLAG_VERSION_ONLY`]).
    pub flags: u8,
    /// Request id; responses echo the request's `seq`.
    pub seq: u64,
    /// Op-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no flags.
    pub fn new(opcode: OpCode, seq: u64, payload: Vec<u8>) -> Self {
        Frame { opcode, flags: 0, seq, payload }
    }

    /// Prepends a trace-context extension to the payload and sets
    /// [`FLAG_TRACE`]. The inverse of [`Frame::take_trace_context`].
    pub fn with_trace_context(mut self, ctx: TraceContext) -> Self {
        let mut payload = Vec::with_capacity(TRACE_EXT_LEN + self.payload.len());
        payload.extend_from_slice(&ctx.encode());
        payload.append(&mut self.payload);
        self.payload = payload;
        self.flags |= FLAG_TRACE;
        self
    }

    /// Splits the trace-context extension off the payload when
    /// [`FLAG_TRACE`] is set, clearing the flag — afterwards the frame is
    /// byte-equivalent to its untraced form, so payload codecs and
    /// traffic accounting see identical bytes with tracing on or off.
    pub fn take_trace_context(&mut self) -> Result<Option<TraceContext>, FrameError> {
        if self.flags & FLAG_TRACE == 0 {
            return Ok(None);
        }
        if self.payload.len() < TRACE_EXT_LEN {
            return Err(FrameError::Malformed(format!(
                "FLAG_TRACE set but payload has only {} bytes",
                self.payload.len()
            )));
        }
        let ctx = TraceContext::decode(&self.payload[..TRACE_EXT_LEN])?;
        self.payload.drain(..TRACE_EXT_LEN);
        self.flags &= !FLAG_TRACE;
        Ok(Some(ctx))
    }

    /// Total encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD + self.payload.len()
    }

    /// Encodes the frame into `w`.
    pub fn encode(&self, mut w: impl Write) -> Result<(), FrameError> {
        if self.payload.len() > MAX_PAYLOAD as usize {
            return Err(FrameError::TooLarge(self.payload.len() as u32));
        }
        let mut head = [0u8; 15];
        head[0] = WIRE_VERSION;
        head[1] = self.opcode as u8;
        head[2] = self.flags;
        head[3..11].copy_from_slice(&self.seq.to_le_bytes());
        head[11..15].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let mut crc = Checksum::new();
        crc.update(&head);
        crc.update(&self.payload);
        w.write_all(MAGIC)?;
        w.write_all(&head)?;
        w.write_all(&self.payload)?;
        w.write_all(&crc.digest().to_le_bytes())?;
        Ok(())
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode(&mut buf).expect("Vec write is infallible");
        buf
    }

    /// Decodes one frame from `r`.
    ///
    /// Validation order matters for robustness against untrusted bytes:
    /// magic, version and the length cap are all checked *before* the
    /// payload allocation, and the checksum is verified before the frame is
    /// handed to any payload parser.
    pub fn decode(mut r: impl Read) -> Result<Self, FrameError> {
        Self::read_magic(&mut r)?;
        Self::decode_after_magic(&mut r)
    }

    /// Like [`Frame::decode`], but also reports how long decoding took
    /// *after* the frame's first bytes arrived — i.e. header parsing,
    /// payload read, checksum verification — excluding the (potentially
    /// long) wait for the peer to start sending. This is the number the
    /// wire-overhead attribution wants: deserialization cost, not
    /// request/response latency.
    pub fn decode_timed(mut r: impl Read) -> Result<(Self, std::time::Duration), FrameError> {
        Self::read_magic(&mut r)?;
        let start = std::time::Instant::now();
        let frame = Self::decode_after_magic(&mut r)?;
        Ok((frame, start.elapsed()))
    }

    fn read_magic(r: &mut impl Read) -> Result<(), FrameError> {
        let mut magic = [0u8; 9];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        Ok(())
    }

    fn decode_after_magic(r: &mut impl Read) -> Result<Self, FrameError> {
        let mut head = [0u8; 15];
        r.read_exact(&mut head)?;
        if head[0] != WIRE_VERSION {
            return Err(FrameError::UnsupportedVersion(head[0]));
        }
        let opcode_byte = head[1];
        let flags = head[2];
        let seq = u64::from_le_bytes(head[3..11].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(head[11..15].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(FrameError::TooLarge(len));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 8];
        r.read_exact(&mut crc_bytes)?;
        let stored = u64::from_le_bytes(crc_bytes);
        let mut crc = Checksum::new();
        crc.update(&head);
        crc.update(&payload);
        let computed = crc.digest();
        if stored != computed {
            return Err(FrameError::Checksum { stored, computed });
        }
        // The op-code is validated *after* the checksum so corruption inside
        // the opcode byte reports as corruption, not as a protocol gap.
        let opcode = OpCode::from_byte(opcode_byte)?;
        Ok(Frame { opcode, flags, seq, payload })
    }
}

// ---------------------------------------------------------------------------
// Payload codecs. Cursor-style readers over `&[u8]`, mirroring the style of
// `serve::snapshot`: every read is bounds-checked and returns a typed error.
// ---------------------------------------------------------------------------

fn take<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], FrameError> {
    if r.len() < n {
        return Err(FrameError::Malformed(format!(
            "payload needs {n} more bytes, has {}",
            r.len()
        )));
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Ok(head)
}

fn read_u32(r: &mut &[u8]) -> Result<u32, FrameError> {
    Ok(u32::from_le_bytes(take(r, 4)?.try_into().expect("4 bytes")))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, FrameError> {
    Ok(u64::from_le_bytes(take(r, 8)?.try_into().expect("8 bytes")))
}

fn read_f32(r: &mut &[u8]) -> Result<f32, FrameError> {
    Ok(f32::from_le_bytes(take(r, 4)?.try_into().expect("4 bytes")))
}

fn expect_empty(r: &[u8]) -> Result<(), FrameError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(FrameError::Malformed(format!("{} trailing bytes", r.len())))
    }
}

/// Reads a `u32`-counted f32 section, bounds-checking the count against the
/// remaining payload before allocating.
fn read_counted_f32s(r: &mut &[u8]) -> Result<Vec<f32>, FrameError> {
    let n = read_u32(r)? as usize;
    if n * 4 > r.len() {
        return Err(FrameError::Malformed(format!("{n} f32s declared, {} bytes left", r.len())));
    }
    let mut values = vec![0.0f32; n];
    read_f32_into(take(r, n * 4)?, &mut values).expect("length checked");
    Ok(values)
}

fn write_counted_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    mamdr_util::write_f32_section(&mut *out, values).expect("Vec write is infallible");
}

/// `Pull` request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullReq {
    /// The row to read.
    pub key: ParamKey,
}

impl PullReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&self.key.table.to_le_bytes());
        out.extend_from_slice(&self.key.row.to_le_bytes());
        out
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let table = read_u32(&mut r)?;
        let row = read_u32(&mut r)?;
        expect_empty(r)?;
        Ok(PullReq { key: ParamKey::new(table, row) })
    }
}

/// `PullOk` response payload.
#[derive(Debug, Clone, PartialEq)]
pub struct PullResp {
    /// The row's push version at read time.
    pub version: u64,
    /// Row values (empty for a version-only probe).
    pub value: Vec<f32>,
}

impl PullResp {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 4 * self.value.len());
        out.extend_from_slice(&self.version.to_le_bytes());
        write_counted_f32s(&mut out, &self.value);
        out
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let version = read_u64(&mut r)?;
        let value = read_counted_f32s(&mut r)?;
        expect_empty(r)?;
        Ok(PullResp { version, value })
    }
}

/// `Push` request payload: one outer-gradient row update.
#[derive(Debug, Clone, PartialEq)]
pub struct PushReq {
    /// The pushing worker (dedup namespace for `seq`).
    pub client_id: u32,
    /// The row to update.
    pub key: ParamKey,
    /// Server-side Adagrad learning rate.
    pub lr: f32,
    /// The outer gradient (Θ̃ − Θ for this row).
    pub grad: Vec<f32>,
}

impl PushReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + 4 * self.grad.len());
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&self.key.table.to_le_bytes());
        out.extend_from_slice(&self.key.row.to_le_bytes());
        out.extend_from_slice(&self.lr.to_le_bytes());
        write_counted_f32s(&mut out, &self.grad);
        out
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let client_id = read_u32(&mut r)?;
        let table = read_u32(&mut r)?;
        let row = read_u32(&mut r)?;
        let lr = read_f32(&mut r)?;
        let grad = read_counted_f32s(&mut r)?;
        expect_empty(r)?;
        Ok(PushReq { client_id, key: ParamKey::new(table, row), lr, grad })
    }
}

/// `PushOk` response payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushResp {
    /// False when the push was recognized as a duplicate and skipped —
    /// the retry saw its original already applied.
    pub applied: bool,
}

impl PushResp {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        vec![self.applied as u8]
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let b = take(&mut r, 1)?[0];
        expect_empty(r)?;
        Ok(PushResp { applied: b != 0 })
    }
}

/// `BarrierSync` request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierReq {
    /// The worker arriving at the barrier (dedup: a retried arrival does
    /// not count twice).
    pub client_id: u32,
    /// The round boundary being synchronized.
    pub round: u64,
    /// Number of distinct workers that must arrive before release.
    pub expected: u32,
}

impl BarrierReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.expected.to_le_bytes());
        out
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let client_id = read_u32(&mut r)?;
        let round = read_u64(&mut r)?;
        let expected = read_u32(&mut r)?;
        expect_empty(r)?;
        Ok(BarrierReq { client_id, round, expected })
    }
}

/// `Checkpoint` request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReq {
    /// Round label baked into the checkpoint filename.
    pub round: u64,
}

impl CheckpointReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        self.round.to_le_bytes().to_vec()
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let round = read_u64(&mut r)?;
        expect_empty(r)?;
        Ok(CheckpointReq { round })
    }
}

/// Reads a `u32`-counted key section (table/row pairs), bounds-checking
/// the count against the remaining payload before allocating.
fn read_counted_keys(r: &mut &[u8]) -> Result<Vec<ParamKey>, FrameError> {
    let n = read_u32(r)? as usize;
    if n.saturating_mul(8) > r.len() {
        return Err(FrameError::Malformed(format!("{n} keys declared, {} bytes left", r.len())));
    }
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let table = read_u32(r)?;
        let row = read_u32(r)?;
        keys.push(ParamKey::new(table, row));
    }
    Ok(keys)
}

fn write_counted_keys(out: &mut Vec<u8>, keys: &[ParamKey]) {
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for key in keys {
        out.extend_from_slice(&key.table.to_le_bytes());
        out.extend_from_slice(&key.row.to_le_bytes());
    }
}

/// `PullMany` request payload: a key-sorted batch of rows to read in one
/// round trip. [`FLAG_VERSION_ONLY`] turns the whole batch into a silent
/// version probe (no value section in the response, no traffic
/// accounting server-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PullManyReq {
    /// The rows to read, sorted by `(table, row)` by the caller.
    pub keys: Vec<ParamKey>,
}

impl PullManyReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * self.keys.len());
        write_counted_keys(&mut out, &self.keys);
        out
    }

    /// Decodes from a payload buffer.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let keys = read_counted_keys(&mut r)?;
        expect_empty(r)?;
        Ok(PullManyReq { keys })
    }
}

/// `PullManyOk` response payload: per-key versions in request order, plus
/// one contiguous f32 section holding every row's values back to back
/// (empty for a version-only probe) — a single zero-copy block on
/// little-endian hosts, not one length-prefixed vector per row.
#[derive(Debug, Clone, PartialEq)]
pub struct PullManyResp {
    /// Per-key push versions, in request-key order.
    pub versions: Vec<u64>,
    /// Concatenated row values in request-key order; the row width is
    /// `values.len() / versions.len()`. Empty for version-only probes.
    pub values: Vec<f32>,
}

impl PullManyResp {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.versions.len() + 4 * self.values.len());
        out.extend_from_slice(&(self.versions.len() as u32).to_le_bytes());
        for v in &self.versions {
            out.extend_from_slice(&v.to_le_bytes());
        }
        write_counted_f32s(&mut out, &self.values);
        out
    }

    /// Decodes from a payload buffer, rejecting value sections that are
    /// not an exact multiple of the key count.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let n = read_u32(&mut r)? as usize;
        if n.saturating_mul(8) > r.len() {
            return Err(FrameError::Malformed(format!(
                "{n} versions declared, {} bytes left",
                r.len()
            )));
        }
        let mut versions = Vec::with_capacity(n);
        for _ in 0..n {
            versions.push(read_u64(&mut r)?);
        }
        let values = read_counted_f32s(&mut r)?;
        expect_empty(r)?;
        // Empty values with rows present is the version-only probe shape;
        // otherwise the value section must divide evenly across the rows.
        if values.is_empty() || (n > 0 && values.len() % n == 0) {
            return Ok(PullManyResp { versions, values });
        }
        Err(FrameError::Malformed(format!("{} values do not divide across {n} rows", values.len())))
    }
}

/// `PushMany` request payload: a key-sorted batch of outer-gradient row
/// updates applied atomically under one `(client, seq)` — a retry of the
/// frame dedups the whole batch, so pipelined pushes keep the
/// exactly-once guarantee of the single-row protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct PushManyReq {
    /// The pushing worker (dedup namespace for `seq`).
    pub client_id: u32,
    /// Server-side Adagrad learning rate (shared by every row).
    pub lr: f32,
    /// The rows to update, sorted by `(table, row)` by the caller.
    pub keys: Vec<ParamKey>,
    /// Concatenated outer gradients (Θ̃ − Θ) in key order; the row width
    /// is `grads.len() / keys.len()`.
    pub grads: Vec<f32>,
}

impl PushManyReq {
    /// Encodes into a payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * self.keys.len() + 4 * self.grads.len());
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&self.lr.to_le_bytes());
        write_counted_keys(&mut out, &self.keys);
        write_counted_f32s(&mut out, &self.grads);
        out
    }

    /// Decodes from a payload buffer, rejecting gradient sections that are
    /// not an exact multiple of the key count.
    pub fn decode(mut r: &[u8]) -> Result<Self, FrameError> {
        let client_id = read_u32(&mut r)?;
        let lr = read_f32(&mut r)?;
        let keys = read_counted_keys(&mut r)?;
        let grads = read_counted_f32s(&mut r)?;
        expect_empty(r)?;
        if keys.is_empty() || grads.is_empty() || grads.len() % keys.len() != 0 {
            return Err(FrameError::Malformed(format!(
                "{} gradient values do not divide across {} rows",
                grads.len(),
                keys.len()
            )));
        }
        Ok(PushManyReq { client_id, lr, keys, grads })
    }
}

/// Encodes an `Error` frame's message payload.
pub fn encode_error(msg: &str) -> Vec<u8> {
    msg.as_bytes().to_vec()
}

/// Decodes an `Error` frame's message payload.
pub fn decode_error(payload: &[u8]) -> String {
    String::from_utf8_lossy(payload).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        Frame::decode(frame.to_bytes().as_slice()).unwrap()
    }

    #[test]
    fn frame_roundtrips_bit_exactly() {
        let frame = Frame::new(OpCode::Push, 42, vec![1, 2, 3, 255, 0]);
        assert_eq!(roundtrip(&frame), frame);
        let empty = Frame { opcode: OpCode::Shutdown, flags: 3, seq: u64::MAX, payload: vec![] };
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let buf =
            Frame::new(OpCode::Pull, 7, PullReq { key: ParamKey::new(1, 9) }.encode()).to_bytes();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(Frame::decode(bad.as_slice()).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_an_io_error() {
        let buf = Frame::new(OpCode::Pull, 1, vec![0u8; 16]).to_bytes();
        for keep in 0..buf.len() {
            let err = Frame::decode(&buf[..keep]).unwrap_err();
            assert!(
                matches!(err, FrameError::Io(_) | FrameError::BadMagic(_)),
                "keep={keep}: {err:?}"
            );
        }
    }

    #[test]
    fn absurd_declared_length_is_rejected_before_allocation() {
        // Hand-build a header declaring a payload over the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        let mut head = [0u8; 15];
        head[0] = WIRE_VERSION;
        head[1] = OpCode::Pull as u8;
        head[11..15].copy_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&head);
        assert!(matches!(Frame::decode(buf.as_slice()), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn wrong_version_and_opcode_are_typed_errors() {
        // A frame from the retired v1 protocol is rejected up front.
        let mut buf = Frame::new(OpCode::Pull, 1, vec![]).to_bytes();
        buf[9] = 1; // version byte
        assert!(matches!(Frame::decode(buf.as_slice()), Err(FrameError::UnsupportedVersion(1))));

        // A valid checksum over an unknown op-code byte.
        let mut frame = Frame::new(OpCode::Pull, 1, vec![]);
        frame.opcode = OpCode::Error;
        let mut buf = frame.to_bytes();
        // Re-encode with opcode byte 200 and a matching checksum.
        buf[10] = 200;
        let mut crc = Checksum::new();
        crc.update(&buf[9..buf.len() - 8]);
        let crc = crc.digest().to_le_bytes();
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&crc);
        assert!(matches!(Frame::decode(buf.as_slice()), Err(FrameError::UnknownOpcode(200))));
    }

    #[test]
    fn payload_codecs_roundtrip() {
        let pull = PullReq { key: ParamKey::new(3, 77) };
        assert_eq!(PullReq::decode(&pull.encode()).unwrap(), pull);
        let resp = PullResp { version: 12, value: vec![1.5, -2.25, 0.0] };
        assert_eq!(PullResp::decode(&resp.encode()).unwrap(), resp);
        let push =
            PushReq { client_id: 2, key: ParamKey::new(0, 5), lr: 0.5, grad: vec![0.25, -0.125] };
        assert_eq!(PushReq::decode(&push.encode()).unwrap(), push);
        let bar = BarrierReq { client_id: 1, round: 9, expected: 4 };
        assert_eq!(BarrierReq::decode(&bar.encode()).unwrap(), bar);
        let ck = CheckpointReq { round: 3 };
        assert_eq!(CheckpointReq::decode(&ck.encode()).unwrap(), ck);
        assert!(PushResp::decode(&PushResp { applied: true }.encode()).unwrap().applied);
        assert_eq!(decode_error(&encode_error("boom")), "boom");
    }

    #[test]
    fn opcode_table_covers_both_directions_for_every_byte() {
        // Encode→decode is the identity for every variant in the table …
        for &op in OpCode::ALL.iter() {
            assert_eq!(OpCode::from_byte(op as u8).unwrap(), op);
        }
        // … and every byte outside the table is a typed error, so the
        // table is the complete decode surface.
        let known: Vec<u8> = OpCode::ALL.iter().map(|&op| op as u8).collect();
        for b in 0..=u8::MAX {
            match OpCode::from_byte(b) {
                Ok(op) => assert!(known.contains(&(op as u8))),
                Err(FrameError::UnknownOpcode(bad)) => {
                    assert_eq!(bad, b);
                    assert!(!known.contains(&b));
                }
                Err(other) => panic!("unexpected error for byte {b}: {other:?}"),
            }
        }
        assert_eq!(known.len(), OpCode::ALL.len());
    }

    #[test]
    fn multi_row_codecs_roundtrip() {
        let pull = PullManyReq { keys: vec![ParamKey::new(0, 1), ParamKey::new(3, 77)] };
        assert_eq!(PullManyReq::decode(&pull.encode()).unwrap(), pull);
        let empty = PullManyReq { keys: vec![] };
        assert_eq!(PullManyReq::decode(&empty.encode()).unwrap(), empty);

        let resp = PullManyResp { versions: vec![4, 9], values: vec![1.5, -2.25, 0.0, 7.0] };
        assert_eq!(PullManyResp::decode(&resp.encode()).unwrap(), resp);
        // Version-only probe: versions without values.
        let probe = PullManyResp { versions: vec![4, 9], values: vec![] };
        assert_eq!(PullManyResp::decode(&probe.encode()).unwrap(), probe);

        let push = PushManyReq {
            client_id: 2,
            lr: 0.5,
            keys: vec![ParamKey::new(0, 5), ParamKey::new(1, 6)],
            grads: vec![0.25, -0.125, 1.0, 2.0],
        };
        assert_eq!(PushManyReq::decode(&push.encode()).unwrap(), push);
    }

    #[test]
    fn multi_row_codecs_reject_malformed_payloads() {
        // Declared key count exceeding the remaining bytes errors before
        // any allocation — including u32::MAX, which would be a 32 GiB
        // key vector if the count were trusted.
        let mut lying = PullManyReq { keys: vec![ParamKey::new(0, 1)] }.encode();
        lying[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(PullManyReq::decode(&lying), Err(FrameError::Malformed(_))));

        let mut lying = PullManyResp { versions: vec![1], values: vec![1.0] }.encode();
        lying[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(PullManyResp::decode(&lying), Err(FrameError::Malformed(_))));

        // A value section that does not divide across the declared rows.
        let resp = PullManyResp { versions: vec![1, 2], values: vec![1.0, 2.0, 3.0] };
        assert!(matches!(PullManyResp::decode(&resp.encode()), Err(FrameError::Malformed(_))));
        // Values without any rows to attach them to.
        let resp = PullManyResp { versions: vec![], values: vec![1.0] };
        assert!(matches!(PullManyResp::decode(&resp.encode()), Err(FrameError::Malformed(_))));

        // PushMany: gradient section must divide across the keys, and an
        // empty batch is meaningless on the wire.
        let push = PushManyReq {
            client_id: 0,
            lr: 0.1,
            keys: vec![ParamKey::new(0, 0), ParamKey::new(0, 1)],
            grads: vec![1.0, 2.0, 3.0],
        };
        assert!(matches!(PushManyReq::decode(&push.encode()), Err(FrameError::Malformed(_))));
        let empty = PushManyReq { client_id: 0, lr: 0.1, keys: vec![], grads: vec![] };
        assert!(matches!(PushManyReq::decode(&empty.encode()), Err(FrameError::Malformed(_))));

        // Truncation anywhere inside a multi-row payload is typed.
        let bytes = PushManyReq {
            client_id: 2,
            lr: 0.5,
            keys: vec![ParamKey::new(0, 5)],
            grads: vec![0.25, -0.125],
        }
        .encode();
        for keep in 0..bytes.len() {
            assert!(PushManyReq::decode(&bytes[..keep]).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn oversized_batches_hit_the_frame_cap_not_the_allocator() {
        // A key batch whose encoding crosses MAX_PAYLOAD must be refused
        // at encode time (the sender chunks batches well below the cap).
        let too_many = (MAX_PAYLOAD as usize / 8) + 1;
        let keys: Vec<ParamKey> = (0..too_many as u32).map(|i| ParamKey::new(0, i)).collect();
        let payload = PullManyReq { keys }.encode();
        let frame = Frame::new(OpCode::PullMany, 1, payload);
        let mut sink = Vec::new();
        assert!(matches!(frame.encode(&mut sink), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn trace_context_roundtrips_through_a_frame() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF_CAFE, span_id: 42 };
        let inner = PullReq { key: ParamKey::new(1, 9) }.encode();
        let traced = Frame::new(OpCode::Pull, 7, inner.clone()).with_trace_context(ctx);
        assert_eq!(traced.flags & FLAG_TRACE, FLAG_TRACE);
        assert_eq!(traced.wire_len(), FRAME_OVERHEAD + TRACE_EXT_LEN + inner.len());

        let mut decoded = roundtrip(&traced);
        let got = decoded.take_trace_context().unwrap();
        assert_eq!(got, Some(ctx));
        // After stripping, the frame is byte-identical to the untraced one.
        assert_eq!(decoded, Frame::new(OpCode::Pull, 7, inner.clone()));
        assert_eq!(decoded.take_trace_context().unwrap(), None);
        // Payload codecs see the original bytes.
        assert_eq!(PullReq::decode(&decoded.payload).unwrap().key, ParamKey::new(1, 9));
    }

    #[test]
    fn trace_context_other_flags_survive_strip() {
        let ctx = TraceContext { trace_id: 1, span_id: 2 };
        let mut frame = Frame::new(OpCode::Pull, 1, PullReq { key: ParamKey::new(0, 0) }.encode());
        frame.flags |= FLAG_VERSION_ONLY;
        let mut traced = frame.clone().with_trace_context(ctx);
        assert_eq!(traced.flags, FLAG_VERSION_ONLY | FLAG_TRACE);
        traced.take_trace_context().unwrap();
        assert_eq!(traced.flags, FLAG_VERSION_ONLY);
    }

    #[test]
    fn malformed_trace_extensions_are_typed_errors() {
        // Flag set but payload too short.
        let mut short = Frame::new(OpCode::Pull, 1, vec![0u8; 4]);
        short.flags |= FLAG_TRACE;
        assert!(matches!(short.take_trace_context(), Err(FrameError::Malformed(_))));
        // Unknown extension version.
        let mut bytes = TraceContext { trace_id: 1, span_id: 2 }.encode();
        bytes[0] = 9;
        assert!(matches!(TraceContext::decode(&bytes), Err(FrameError::Malformed(_))));
        // Wrong length.
        assert!(TraceContext::decode(&bytes[..5]).is_err());
    }

    #[test]
    fn payload_codecs_reject_truncation_and_trailing_garbage() {
        let push =
            PushReq { client_id: 2, key: ParamKey::new(0, 5), lr: 0.5, grad: vec![0.25, -0.125] };
        let bytes = push.encode();
        assert!(PushReq::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(PushReq::decode(&long).is_err());
        // A counted f32 section whose count exceeds the remaining bytes
        // must error before allocating.
        let mut lying = PullResp { version: 1, value: vec![1.0] }.encode();
        lying[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(PullResp::decode(&lying).is_err());
    }
}
