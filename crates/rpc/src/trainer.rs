//! Networked MAMDR training against the loopback [`PsServer`].
//!
//! The driver mirrors the in-process synchronous trainer
//! (`DistributedConfig::sync_rounds`) move for move: identical domain
//! partitions, identical per-worker seeds, identical aggregation, and the
//! same single-writer gradient application — worker order, keys sorted.
//! The only difference is *where* reads and writes go: worker threads pull
//! rows through [`WorkerClient`]s over TCP, and the driver delivers the
//! outer gradients as sequence-numbered `Push` RPCs. With fault injection
//! off, a loopback run therefore produces bit-identical parameters,
//! traffic counters and report to the in-process trainer; with faults on,
//! retries and deduplication keep the *parameters* identical while the
//! `rpc_*` counters record exactly what the fault plan injected.

use crate::client::{RetryPolicy, RpcRowSource, WorkerClient};
use crate::fault::{FaultPlan, FaultState};
use crate::server::PsServer;
use mamdr_data::{MdrDataset, Split};
use mamdr_obs::MetricsRegistry;
use mamdr_ps::trainer::{
    evaluate_server, partition_domains, run_cached_round, seed_server, worker_round_seed,
    CachedRoundOutput,
};
use mamdr_ps::{CacheStats, DistributedConfig, DistributedReport, ParameterServer, SyncMode};
use mamdr_tensor::pool;
use mamdr_tensor::rng::derive_seed;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a loopback distributed run.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// The training hyper-parameters, shared verbatim with the in-process
    /// trainer. `mode` must be [`SyncMode::Cached`] — the no-cache
    /// baseline's per-example round trips are an in-process measurement
    /// tool, not a wire protocol.
    pub train: DistributedConfig,
    /// Deterministic fault schedule; `None` injects nothing.
    pub fault: Option<FaultPlan>,
    /// Client retry/deadline policy.
    pub retry: RetryPolicy,
    /// Where `Checkpoint` RPCs write snapshots (`None` disables them).
    pub checkpoint_dir: Option<PathBuf>,
}

impl LoopbackConfig {
    /// A loopback config over training hyper-parameters, no faults.
    pub fn new(train: DistributedConfig) -> Self {
        LoopbackConfig { train, fault: None, retry: RetryPolicy::default(), checkpoint_dir: None }
    }
}

/// The networked PS–worker trainer: a loopback [`PsServer`] plus N worker
/// threads driving it through [`WorkerClient`]s.
pub struct DistributedTrainer {
    ps: Arc<ParameterServer>,
    server: Option<PsServer>,
    cfg: LoopbackConfig,
    metrics: Arc<MetricsRegistry>,
}

impl DistributedTrainer {
    /// Seeds a fresh store exactly like [`mamdr_ps::DistributedMamdr::new`]
    /// and starts the loopback server on an ephemeral port.
    pub fn new(
        ds: &MdrDataset,
        cfg: LoopbackConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> std::io::Result<Self> {
        assert_eq!(
            cfg.train.mode,
            SyncMode::Cached,
            "the networked trainer implements the cached §IV-E protocol only"
        );
        let ps = Arc::new(ParameterServer::new(cfg.train.n_shards, cfg.train.dim));
        seed_server(&ps, ds, cfg.train.dim, cfg.train.seed);
        let server = PsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&ps),
            cfg.train.dim,
            Arc::clone(&metrics),
            cfg.checkpoint_dir.clone(),
        )?;
        Ok(DistributedTrainer { ps, server: Some(server), cfg, metrics })
    }

    /// The server's loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// The server-side store (for evaluation and checkpoint comparison).
    pub fn store(&self) -> &Arc<ParameterServer> {
        &self.ps
    }

    /// A client with this run's retry policy and — when a fault plan is
    /// configured — a fault stream decorrelated by `(stream, client_id)`.
    fn make_client(&self, client_id: u32, stream: u64) -> WorkerClient {
        let fault = self.cfg.fault.as_ref().map(|plan| {
            let mut p = plan.clone();
            p.seed = derive_seed(plan.seed, stream);
            FaultState::new(p, client_id)
        });
        WorkerClient::new(self.addr(), client_id, self.cfg.retry, fault, Arc::clone(&self.metrics))
    }

    /// Runs the configured number of outer rounds over the wire and
    /// reports exactly like the in-process trainer.
    pub fn train(&self, ds: &MdrDataset) -> DistributedReport {
        let cfg = self.cfg.train;
        if cfg.kernel_threads > 0 {
            pool::set_threads(cfg.kernel_threads);
        }
        let mut combined = CacheStats::default();
        let mut max_staleness = 0u64;
        let mut round_losses = Vec::with_capacity(cfg.epochs);
        // Client id 0 is the driver; workers are 1..=n. The driver's
        // pushes carry the fault plan too, so retries exercise the
        // server's exactly-once path where it matters most.
        let mut driver = self.make_client(0, 0xD0);
        for epoch in 0..cfg.epochs {
            let partitions = partition_domains(ds.n_domains(), cfg.seed, epoch, cfg.n_workers);
            let outputs: Vec<CachedRoundOutput> = std::thread::scope(|scope| {
                let handles: Vec<_> = partitions
                    .iter()
                    .enumerate()
                    .map(|(w, part)| {
                        scope.spawn(move || {
                            // Per-epoch fault stream: the same plan seeds a
                            // different fault sequence each round.
                            let client = self.make_client(w as u32 + 1, epoch as u64);
                            let src = RpcRowSource::new(client);
                            let out = run_cached_round(
                                &src,
                                ds,
                                part,
                                cfg.inner_lr,
                                worker_round_seed(cfg.seed, epoch, w),
                            );
                            let mut client = src.into_client();
                            client
                                .barrier(epoch as u64, cfg.n_workers as u32)
                                .unwrap_or_else(|e| panic!("worker {w} barrier: {e}"));
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let mut loss_sum = 0.0f64;
            let mut n_examples = 0u64;
            for out in outputs {
                combined.hits += out.cache.hits;
                combined.misses += out.cache.misses;
                max_staleness = max_staleness.max(out.staleness.max);
                loss_sum += out.loss_sum;
                n_examples += out.n_examples;
                // Single writer, worker order, keys pre-sorted: the same
                // total order the in-process synchronous driver applies.
                for (key, delta) in out.grads {
                    driver
                        .push(key, &delta, cfg.outer_lr)
                        .unwrap_or_else(|e| panic!("driver push of {key:?}: {e}"));
                }
            }
            round_losses.push(if n_examples == 0 { 0.0 } else { loss_sum / n_examples as f64 });
        }
        let (pulls, pushes, bp, bs) = self.ps.traffic().snapshot();
        self.ps.export_kv_gauges(&self.metrics);
        DistributedReport {
            mean_auc: evaluate_server(&self.ps, ds, Split::Test),
            pulls,
            pushes,
            total_bytes: bp + bs,
            cache: combined,
            max_staleness,
            round_losses,
        }
    }

    /// Writes a server-side checkpoint via the `Checkpoint` RPC and
    /// returns its path. Requires [`LoopbackConfig::checkpoint_dir`].
    pub fn checkpoint(&self, round: u64) -> Result<String, crate::client::RpcError> {
        self.make_client(u32::MAX, 0xCC).checkpoint(round)
    }

    /// Gracefully drains the server: `Shutdown` RPC, then joins the accept
    /// loop and every connection thread.
    pub fn shutdown(mut self) {
        // The drain request itself must not be fault-injected away.
        let mut client = WorkerClient::new(
            self.addr(),
            u32::MAX - 1,
            self.cfg.retry,
            None,
            Arc::clone(&self.metrics),
        );
        client.shutdown().expect("shutdown rpc");
        drop(client);
        if let Some(server) = self.server.take() {
            server.join();
        }
    }
}
