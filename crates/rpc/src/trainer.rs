//! Networked MAMDR training against one or more loopback [`PsServer`]
//! shards, with worker supervision, crash-resumable rounds, shard-death
//! recovery, and divergence guardrails.
//!
//! The driver mirrors the in-process synchronous trainer
//! (`DistributedConfig::sync_rounds`) move for move: identical domain
//! partitions, identical per-worker seeds, identical aggregation, and the
//! same single-writer gradient application — worker order, keys sorted.
//! The only difference is *where* reads and writes go: worker threads pull
//! rows through [`WorkerClient`]s over TCP, and the driver delivers the
//! outer gradients as sequence-numbered `Push` RPCs. With fault injection
//! off, a loopback run therefore produces bit-identical parameters,
//! traffic counters and report to the in-process trainer; with faults on,
//! retries and deduplication keep the *parameters* identical while the
//! `rpc_*` counters record exactly what the fault plan injected.
//!
//! ## Sharding
//!
//! With [`LoopbackConfig::shards`] above one, the key space is split over
//! N independent servers by the FNV [`ShardMap`] — the pure hash route
//! every client computes identically. Reads and writes are partitioned
//! into per-shard sub-batches that preserve the global order within each
//! shard; Adagrad updates on distinct keys commute, so applying each
//! shard's key-sorted sub-sequence yields bit-identical parameters to the
//! single-server order. Checkpoints and journals are written per shard
//! (shard-parallel) and committed by a [`ShardManifest`] written last —
//! the rename is the commit point, and resume re-routes the merged state
//! through whatever shard count the new run uses.
//!
//! ## Supervision
//!
//! Workers are supervised, not trusted: each one reports its round result
//! (or a typed [`WorkerFailure`]) to the driver over a channel *before*
//! entering the round barrier. A worker that crashes ([`FaultPlan`]
//! `kill`), hangs past [`LoopbackConfig::worker_deadline`], or exhausts
//! its RPC retries is restarted: the supervisor re-runs its domain
//! partition on a fresh thread with the *same* client id and round seed.
//! Because workers are read-only during a round (the server is quiescent
//! until every worker joins), the re-run produces bit-identical gradients
//! — so a recovered round is indistinguishable from an undisturbed one,
//! down to the parameter bits. Restarts are visible as
//! `rpc_worker_restarts_total`; a partition that keeps failing past
//! [`LoopbackConfig::max_worker_retries`] fails the round with
//! [`TrainerError::RoundFailed`] instead of looping forever.
//!
//! Servers are supervised too: a `kill_shard=round:shard` schedule hard-
//! kills that shard's server at the top of the round (sockets reset, no
//! drain — what a dead machine looks like). The doomed round attempt fails
//! once worker retries exhaust, nothing is applied, and the supervisor
//! restarts the shard from its last *committed* manifest files — honest
//! disk-based recovery — then replays the round. Workers are read-only
//! mid-round and every seed is stateless, so the replay is bit-identical.
//! Restarts count as `rpc_shard_restarts_total`.
//!
//! ## Crash-resumable rounds
//!
//! With [`LoopbackConfig::checkpoint_every`] set, the driver writes a
//! parameter checkpoint plus a [`RoundJournal`] (round index, report
//! aggregates, and the Adagrad accumulators the checkpoint format omits)
//! at each boundary. Single-server runs keep the journal itself as the
//! commit point; sharded runs write one checkpoint + journal per shard in
//! parallel and commit them all with one digest-carrying manifest. A
//! restarted driver with [`LoopbackConfig::resume`] restores the store(s)
//! and re-runs the remaining rounds; since every RNG stream is derived
//! statelessly from `(seed, epoch, worker)`, the resumed run's final
//! parameters and report are bit-identical to an uninterrupted run — at
//! *any* shard count, because resume merges the committed shard files and
//! re-routes them through the new map.
//!
//! ## Divergence guardrails
//!
//! When [`mamdr_ps::GuardConfig`] is enabled, every worker-round update is
//! vetted (in application order) before the driver pushes it: non-finite
//! or exploding loss / gradient norms are skipped, and after K consecutive
//! trips the stores are rolled back in place to the last clean round
//! boundary — values *and* optimizer state.

use crate::client::{Request, RetryPolicy, ShardedRowSource, WorkerClient};
use crate::fault::{FaultPlan, FaultState};
use crate::server::PsServer;
use mamdr_data::{MdrDataset, Split};
use mamdr_obs::{maybe_child, maybe_span, MetricsRegistry, SpanContext, Tracer};
use mamdr_ps::journal::{latest_journal, RoundJournal};
use mamdr_ps::trainer::{
    evaluate_server, partition_domains, run_cached_round, seed_sharded_servers, worker_round_seed,
    CachedRoundOutput,
};
use mamdr_ps::{
    checkpoint, latest_manifest, load_manifest_state, merge_stores, outer_grad_norm, shard_dir,
    CacheStats, ContinualPublisher, DistributedConfig, DistributedReport, GuardRail, GuardVerdict,
    ParamKey, ParameterServer, PublishOutcome, PublisherFaults, ShardFiles, ShardManifest,
    ShardMap, SyncMode, TimedRowSource, WIRE_BATCH_KEYS,
};
use mamdr_tensor::pool;
use mamdr_tensor::rng::derive_seed;
use mamdr_util::Checksum;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One worker's typed failure, as observed by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker crashed before doing any work (injected via the fault
    /// plan's `kill` schedule, or a real thread death).
    Killed {
        /// Worker index within the round.
        worker: usize,
    },
    /// The worker missed the supervisor's deadline.
    Hung {
        /// Worker index within the round.
        worker: usize,
    },
    /// The worker's row reads failed past the client's retry budget.
    Rpc {
        /// Worker index within the round.
        worker: usize,
        /// The first RPC failure.
        error: String,
    },
    /// The worker finished its round but could not register at the
    /// barrier.
    Barrier {
        /// Worker index within the round.
        worker: usize,
        /// The barrier failure.
        error: String,
    },
    /// The worker thread panicked.
    Panicked {
        /// Worker index within the round.
        worker: usize,
    },
}

impl WorkerFailure {
    /// The worker index the failure belongs to.
    pub fn worker(&self) -> usize {
        match self {
            WorkerFailure::Killed { worker }
            | WorkerFailure::Hung { worker }
            | WorkerFailure::Rpc { worker, .. }
            | WorkerFailure::Barrier { worker, .. }
            | WorkerFailure::Panicked { worker } => *worker,
        }
    }
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerFailure::Killed { worker } => write!(f, "worker {worker} killed"),
            WorkerFailure::Hung { worker } => write!(f, "worker {worker} missed its deadline"),
            WorkerFailure::Rpc { worker, error } => write!(f, "worker {worker} rpc: {error}"),
            WorkerFailure::Barrier { worker, error } => {
                write!(f, "worker {worker} barrier: {error}")
            }
            WorkerFailure::Panicked { worker } => write!(f, "worker {worker} panicked"),
        }
    }
}

/// A distributed-training failure the driver could not recover from.
#[derive(Debug)]
pub enum TrainerError {
    /// The configuration is inconsistent (e.g. resume without a
    /// checkpoint directory).
    Config(String),
    /// Binding or running the loopback server failed.
    Io(std::io::Error),
    /// The server was already shut down.
    ServerStopped,
    /// A round could not be completed even after restarting its failed
    /// workers.
    RoundFailed {
        /// The failed round.
        epoch: usize,
        /// The unrecovered failures.
        failures: Vec<WorkerFailure>,
    },
    /// A driver-side RPC (gradient push or checkpoint) failed past its
    /// retry budget.
    Driver(String),
    /// Resume state could not be loaded (no journal, or a checkpoint /
    /// journal mismatch).
    Resume(String),
}

impl std::fmt::Display for TrainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerError::Config(m) => write!(f, "bad trainer config: {m}"),
            TrainerError::Io(e) => write!(f, "server I/O: {e}"),
            TrainerError::ServerStopped => write!(f, "server already shut down"),
            TrainerError::RoundFailed { epoch, failures } => {
                write!(f, "round {epoch} failed: ")?;
                for (i, fail) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{fail}")?;
                }
                Ok(())
            }
            TrainerError::Driver(m) => write!(f, "driver rpc: {m}"),
            TrainerError::Resume(m) => write!(f, "resume: {m}"),
        }
    }
}

impl std::error::Error for TrainerError {}

impl From<std::io::Error> for TrainerError {
    fn from(e: std::io::Error) -> Self {
        TrainerError::Io(e)
    }
}

/// Configuration of a loopback distributed run.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// The training hyper-parameters, shared verbatim with the in-process
    /// trainer. `mode` must be [`SyncMode::Cached`] — the no-cache
    /// baseline's per-example round trips are an in-process measurement
    /// tool, not a wire protocol.
    pub train: DistributedConfig,
    /// Number of independent parameter-server shards the key space is
    /// split over (consistent FNV routing via [`ShardMap`]). `1` — the
    /// default — is the classic single-server deployment.
    pub shards: usize,
    /// Deterministic fault schedule; `None` injects nothing.
    pub fault: Option<FaultPlan>,
    /// Client retry/deadline policy.
    pub retry: RetryPolicy,
    /// Where `Checkpoint` RPCs write snapshots (`None` disables them).
    /// Sharded runs write per-shard files under `shard-<i>/` plus a
    /// top-level manifest.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint + round journal every this many rounds
    /// (`0` disables journaling). Requires a checkpoint directory.
    pub checkpoint_every: usize,
    /// Resume from the newest valid journal (single-server) or committed
    /// manifest (sharded) in the checkpoint directory instead of starting
    /// from round 0.
    pub resume: bool,
    /// How long the supervisor waits without hearing from *any* worker
    /// before presuming the missing ones hung and restarting them.
    pub worker_deadline: Duration,
    /// Restarts per worker per round before the round is failed.
    pub max_worker_retries: u32,
    /// When present, every round is recorded as a span tree — driver
    /// phases (partition / workers / apply / journal / evaluate), one
    /// span per worker round with pull vs compute attribution, and every
    /// RPC with its server-side handling parented across the wire.
    /// Training results are bit-identical with or without it.
    pub tracer: Option<Arc<Tracer>>,
    /// Continual publication: when present, every
    /// [`PublishHook::every`] rounds the merged store is encoded and
    /// committed as a serving snapshot (atomic rename, faultable via the
    /// plan's `kill_publish`/`corrupt_snapshot` schedules), and the
    /// committed path is offered to the hook's callback — typically a
    /// serve-side publish gate. Publication reads the stores *after* the
    /// round's pushes flushed and never writes them, so training results
    /// stay bit-identical with or without it.
    pub publish: Option<PublishHook>,
}

impl LoopbackConfig {
    /// A loopback config over training hyper-parameters, one shard, no
    /// faults, no journaling, and a supervision deadline generous enough
    /// that only a genuinely wedged worker trips it.
    pub fn new(train: DistributedConfig) -> Self {
        LoopbackConfig {
            train,
            shards: 1,
            fault: None,
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
            checkpoint_every: 0,
            resume: false,
            worker_deadline: Duration::from_secs(60),
            max_worker_retries: 2,
            tracer: None,
            publish: None,
        }
    }
}

/// The trainer half of the continual train→publish→serve loop: how often
/// to publish, where the snapshot files go, and what to do with a
/// committed file.
///
/// The hook is format-agnostic on purpose: the trainer hands the merged
/// [`ParameterServer`] to `encode` and moves the returned bytes through
/// [`mamdr_ps::ContinualPublisher`]; what those bytes *are* (a
/// `ServingSnapshot`, in the standard wiring) is the caller's business, so
/// this crate never depends on the serving stack.
#[derive(Clone)]
pub struct PublishHook {
    /// Publish after every this many completed rounds (0 disables).
    pub every: usize,
    /// Directory the snapshot files are committed into.
    pub dir: PathBuf,
    /// Encodes the merged store of round `round` into snapshot bytes.
    /// An `Err` fails training — a snapshot that cannot even be encoded
    /// means the store is in a state the caller never expected.
    #[allow(clippy::type_complexity)]
    pub encode: Arc<dyn Fn(u64, &ParameterServer) -> Result<Vec<u8>, String> + Send + Sync>,
    /// Called with each *committed* snapshot file (never a killed,
    /// half-written staging file) — the offer to the serving gate.
    #[allow(clippy::type_complexity)]
    pub on_commit: Arc<dyn Fn(u64, &Path) + Send + Sync>,
}

impl std::fmt::Debug for PublishHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishHook")
            .field("every", &self.every)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

/// The aggregates a resumed run starts from (all zero for a fresh run).
#[derive(Default)]
struct ResumeBase {
    start_epoch: usize,
    cache: CacheStats,
    max_staleness: u64,
    round_losses: Vec<f64>,
    traffic: (u64, u64, u64, u64),
    guard_trips: u64,
    guard_rollbacks: u64,
}

/// A full store snapshot — parameter rows plus Adagrad accumulators — the
/// guard's rollback target.
type StoreSnapshot = (Vec<(ParamKey, Vec<f32>)>, Vec<(ParamKey, Vec<f32>)>);

/// One server shard's runtime state: its store, its (possibly dead)
/// server, and the address clients reach it at.
struct ShardRt {
    ps: Arc<ParameterServer>,
    server: Option<PsServer>,
    addr: SocketAddr,
}

/// The networked PS–worker trainer: one or more loopback [`PsServer`]
/// shards plus N worker threads driving them through [`WorkerClient`]s,
/// under driver-side supervision.
pub struct DistributedTrainer {
    shards: Vec<ShardRt>,
    map: ShardMap,
    cfg: LoopbackConfig,
    metrics: Arc<MetricsRegistry>,
    resume_base: ResumeBase,
}

impl DistributedTrainer {
    /// Seeds fresh stores exactly like [`mamdr_ps::DistributedMamdr::new`]
    /// — one RNG stream, each row routed to its owning shard — and starts
    /// one loopback server per shard on an ephemeral port. With
    /// [`LoopbackConfig::resume`], the newest committed state is loaded on
    /// top: the legacy journal for single-server runs, the newest manifest
    /// for sharded ones (merged and re-routed, so the shard count may
    /// differ from the run that wrote it).
    pub fn new(
        ds: &MdrDataset,
        cfg: LoopbackConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, TrainerError> {
        if cfg.train.mode != SyncMode::Cached {
            return Err(TrainerError::Config(
                "the networked trainer implements the cached §IV-E protocol only".into(),
            ));
        }
        if (cfg.checkpoint_every > 0 || cfg.resume) && cfg.checkpoint_dir.is_none() {
            return Err(TrainerError::Config(
                "checkpoint_every / resume require a checkpoint directory".into(),
            ));
        }
        let n = cfg.shards;
        if n == 0 {
            return Err(TrainerError::Config("a deployment needs at least one shard".into()));
        }
        if let Some(plan) = &cfg.fault {
            if !plan.kill_shard.is_empty() {
                if n < 2 {
                    return Err(TrainerError::Config(
                        "kill_shard requires a sharded deployment (shards >= 2)".into(),
                    ));
                }
                if cfg.checkpoint_every != 1 {
                    return Err(TrainerError::Config(
                        "kill_shard recovery requires checkpoint_every = 1 (every round committed)"
                            .into(),
                    ));
                }
                for &(round, shard) in &plan.kill_shard {
                    if shard as usize >= n {
                        return Err(TrainerError::Config(format!(
                            "kill_shard {round}:{shard} targets a shard >= {n}"
                        )));
                    }
                }
            }
        }
        let stores: Vec<Arc<ParameterServer>> = (0..n)
            .map(|_| Arc::new(ParameterServer::new(cfg.train.n_shards, cfg.train.dim)))
            .collect();
        let mut map = ShardMap::new(n);
        {
            let refs: Vec<&ParameterServer> = stores.iter().map(|s| s.as_ref()).collect();
            seed_sharded_servers(&refs, &map, ds, cfg.train.dim, cfg.train.seed);
        }
        let resume_base = match (&cfg.checkpoint_dir, cfg.resume) {
            (Some(dir), true) if n == 1 => {
                // Prefer the legacy single-server journal; fall back to a
                // committed manifest so an N-shard run can shrink to one.
                match load_resume_state(&stores[0], dir, &cfg.train) {
                    Ok(base) => base,
                    Err(journal_err) => match load_sharded_resume_state(&stores, dir, &cfg.train) {
                        Ok((m, base)) => {
                            map = m;
                            base
                        }
                        Err(_) => return Err(journal_err),
                    },
                }
            }
            (Some(dir), true) => {
                let (m, base) = load_sharded_resume_state(&stores, dir, &cfg.train)?;
                map = m;
                base
            }
            _ => ResumeBase::default(),
        };
        let shards = stores
            .into_iter()
            .enumerate()
            .map(|(s, ps)| -> Result<ShardRt, TrainerError> {
                let ckpt_dir = cfg.checkpoint_dir.as_ref().map(|d| {
                    if n == 1 {
                        d.clone()
                    } else {
                        shard_dir(d, s)
                    }
                });
                let server = PsServer::bind_shard(
                    "127.0.0.1:0",
                    Arc::clone(&ps),
                    cfg.train.dim,
                    Arc::clone(&metrics),
                    ckpt_dir,
                    cfg.tracer.clone(),
                    (n > 1).then_some(s),
                )?;
                let addr = server.addr();
                Ok(ShardRt { ps, server: Some(server), addr })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let trainer = DistributedTrainer { shards, map, cfg, metrics, resume_base };
        if n > 1
            && trainer.cfg.checkpoint_every > 0
            && !trainer.cfg.resume
            && trainer.resume_base.start_epoch == 0
        {
            // Commit the seeded round-0 state up front so a shard killed in
            // the very first round has a committed recovery source.
            trainer.commit_sharded_round(
                0,
                CacheStats::default(),
                0,
                &[],
                &GuardRail::new(trainer.cfg.train.guard),
            )?;
        }
        Ok(trainer)
    }

    /// Shard 0's loopback address, or [`TrainerError::ServerStopped`] once
    /// the servers were drained.
    pub fn addr(&self) -> Result<SocketAddr, TrainerError> {
        if self.shards[0].server.is_some() {
            Ok(self.shards[0].addr)
        } else {
            Err(TrainerError::ServerStopped)
        }
    }

    /// Shard 0's store — *the* store of a single-shard run (evaluation and
    /// checkpoint comparison). Sharded callers want
    /// [`DistributedTrainer::merged_store`].
    pub fn store(&self) -> &Arc<ParameterServer> {
        &self.shards[0].ps
    }

    /// The routing map of this deployment.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// A fresh store holding every shard's rows, accumulators and row
    /// versions merged — byte-comparable (via `checkpoint::save`) against
    /// a single-server run's store.
    pub fn merged_store(&self) -> ParameterServer {
        let stores: Vec<&ParameterServer> = self.shards.iter().map(|rt| rt.ps.as_ref()).collect();
        merge_stores(&stores, self.cfg.train.n_shards, self.cfg.train.dim)
    }

    /// The round the next `train` call starts at (nonzero after a
    /// resume).
    pub fn start_epoch(&self) -> usize {
        self.resume_base.start_epoch
    }

    /// A client to shard `shard` with this run's retry policy and — when a
    /// fault plan is configured — a fault stream decorrelated by
    /// `(stream, client_id)` and, beyond one shard, by the shard index
    /// (single-shard runs keep the exact legacy stream).
    fn make_client(&self, client_id: u32, stream: u64, shard: usize) -> WorkerClient {
        let fault = self.cfg.fault.as_ref().map(|plan| {
            let mut p = plan.clone();
            p.seed = derive_seed(plan.seed, stream);
            if self.map.n_shards() > 1 {
                p.seed = derive_seed(p.seed, 0x5A + shard as u64);
            }
            FaultState::new(p, client_id)
        });
        WorkerClient::new(
            self.shards[shard].addr,
            client_id,
            self.cfg.retry,
            fault,
            Arc::clone(&self.metrics),
        )
        .with_tracer(self.cfg.tracer.clone())
    }

    /// One worker's round: scheduled-fault checks, the cached inner loop
    /// over sharded RPC reads, and the poison injection. Returns the round
    /// output plus the per-shard clients so the caller can run the barrier
    /// *after* reporting the result to the supervisor.
    fn worker_round(
        &self,
        ds: &MdrDataset,
        epoch: usize,
        w: usize,
        part: &[usize],
        is_replacement: bool,
        parent: Option<SpanContext>,
    ) -> Result<(CachedRoundOutput, Vec<WorkerClient>), WorkerFailure> {
        let cfg = self.cfg.train;
        if !is_replacement {
            if let Some(plan) = &self.cfg.fault {
                if plan.should_kill(epoch as u64, w as u32) {
                    // Simulated crash: no client, no reads, no barrier.
                    self.metrics.counter("rpc_faults_worker_kills_total").inc();
                    return Err(WorkerFailure::Killed { worker: w });
                }
                if plan.should_hang(epoch as u64, w as u32) {
                    self.metrics.counter("rpc_faults_worker_hangs_total").inc();
                    std::thread::sleep(Duration::from_micros(plan.hang_micros));
                }
            }
        }
        let tracer = self.cfg.tracer.clone();
        let worker_span = {
            let mut span = maybe_child(&tracer, "worker.round", parent);
            if let Some(s) = &mut span {
                s.attr("epoch", epoch as u64);
                s.attr("worker", w as u64);
                s.attr("replacement", is_replacement as u64);
            }
            span
        };
        let mut clients: Vec<WorkerClient> = (0..self.map.n_shards())
            .map(|s| self.make_client(w as u32 + 1, epoch as u64, s))
            .collect();
        for client in &mut clients {
            client.set_trace_parent(worker_span.as_ref().map(|s| s.ctx()));
        }
        let src = ShardedRowSource::new(clients, self.map, cfg.dim);
        let round_seed = worker_round_seed(cfg.seed, epoch, w);
        // With a tracer, split the worker's wall-clock into time spent in
        // row reads (the wire) vs everything else (local compute). The
        // decorated source only times calls; the training math it forwards
        // is byte-for-byte the untraced path.
        let mut out = match tracer.as_deref() {
            Some(t) => {
                let timed = TimedRowSource::new(&src);
                let t0 = std::time::Instant::now();
                let out = run_cached_round(&timed, ds, part, cfg.inner_lr, round_seed);
                let total = t0.elapsed();
                let pull = timed.elapsed();
                t.record_phase("round.pull", pull);
                t.record_phase("round.compute", total.saturating_sub(pull));
                out
            }
            None => run_cached_round(&src, ds, part, cfg.inner_lr, round_seed),
        };
        if let Some(e) = src.take_error() {
            // The round trained against zero-filled fallback rows after the
            // first failure; its output is garbage and must be re-run.
            return Err(WorkerFailure::Rpc { worker: w, error: e.to_string() });
        }
        if self.cfg.fault.as_ref().is_some_and(|p| p.should_poison(epoch as u64, w as u32)) {
            // Divergent-data injection: one NaN component is enough for the
            // guard's norm check to catch the whole update.
            if let Some(first) = out.grads.first_mut().and_then(|(_, g)| g.first_mut()) {
                *first = f32::NAN;
            }
        }
        Ok((out, src.into_clients()))
    }

    /// Runs one supervised round: spawns every worker, collects results
    /// (or typed failures) over a channel, restarts failed or hung
    /// partitions with the same client id and seed, and releases the
    /// barrier for workers the supervisor gave up on. Returns the round
    /// outputs in worker order.
    fn run_round(
        &self,
        ds: &MdrDataset,
        epoch: usize,
        partitions: &[Vec<usize>],
        parent: Option<SpanContext>,
    ) -> Result<Vec<CachedRoundOutput>, TrainerError> {
        let n = partitions.len();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, Result<CachedRoundOutput, WorkerFailure>)>();
            let launch = |w: usize, is_replacement: bool| {
                let tx = tx.clone();
                let part = &partitions[w];
                scope.spawn(move || {
                    let ran = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.worker_round(ds, epoch, w, part, is_replacement, parent)
                    }));
                    match ran {
                        Err(_) => {
                            let _ = tx.send((w, Err(WorkerFailure::Panicked { worker: w })));
                        }
                        Ok(Err(fail)) => {
                            let _ = tx.send((w, Err(fail)));
                        }
                        Ok(Ok((out, mut clients))) => {
                            // Result first, barrier second: the supervisor
                            // learns the outcome even while slower workers
                            // hold the barrier open. The barrier lives on
                            // shard 0 only — one rendezvous per round.
                            let _ = tx.send((w, Ok(out)));
                            if let Err(e) = clients[0].barrier(epoch as u64, n as u32) {
                                let fail =
                                    WorkerFailure::Barrier { worker: w, error: e.to_string() };
                                let _ = tx.send((w, Err(fail)));
                            }
                        }
                    }
                });
            };
            // Barrier arrival is a set insert keyed by client id, so a
            // stand-in arriving with a dead worker's id releases everyone
            // else. Rescue clients carry no fault plan: the recovery path
            // must be reliable even under an adversarial schedule.
            let release_barrier = |w: usize| {
                let mut client = WorkerClient::new(
                    self.shards[0].addr,
                    w as u32 + 1,
                    self.cfg.retry,
                    None,
                    Arc::clone(&self.metrics),
                );
                scope.spawn(move || {
                    let _ = client.barrier(epoch as u64, n as u32);
                });
            };
            for w in 0..n {
                launch(w, false);
            }
            let mut outputs: Vec<Option<CachedRoundOutput>> = (0..n).map(|_| None).collect();
            let mut retries = vec![0u32; n];
            let mut given_up = vec![false; n];
            let mut failures: Vec<WorkerFailure> = Vec::new();
            let mut outstanding = n;
            // One shared handler for "worker w failed with `fail`":
            // restart while the budget lasts, otherwise record the failure
            // and unblock the barrier in its place.
            let on_failure = |w: usize,
                              fail: WorkerFailure,
                              retries: &mut Vec<u32>,
                              given_up: &mut Vec<bool>,
                              failures: &mut Vec<WorkerFailure>,
                              outstanding: &mut usize| {
                self.metrics.counter("rpc_worker_failures_total").inc();
                if retries[w] < self.cfg.max_worker_retries {
                    retries[w] += 1;
                    self.metrics.counter("rpc_worker_restarts_total").inc();
                    launch(w, true);
                } else {
                    given_up[w] = true;
                    *outstanding -= 1;
                    failures.push(fail);
                    release_barrier(w);
                }
            };
            while outstanding > 0 {
                match rx.recv_timeout(self.cfg.worker_deadline) {
                    Ok((w, Ok(out))) => {
                        // A revived hung worker can race its replacement;
                        // both computed identical output (same seed,
                        // read-only server), so first-in wins safely.
                        if outputs[w].is_none() && !given_up[w] {
                            outputs[w] = Some(out);
                            outstanding -= 1;
                        }
                    }
                    Ok((w, Err(fail))) => {
                        if matches!(fail, WorkerFailure::Barrier { .. }) && outputs[w].is_some() {
                            // The work is done but the arrival never
                            // registered; arrive in its place so the other
                            // workers are not held hostage.
                            self.metrics.counter("rpc_barrier_rescues_total").inc();
                            release_barrier(w);
                        } else if outputs[w].is_none() && !given_up[w] {
                            on_failure(
                                w,
                                fail,
                                &mut retries,
                                &mut given_up,
                                &mut failures,
                                &mut outstanding,
                            );
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Nobody reported for a full deadline: every
                        // partition still outstanding is presumed hung.
                        for w in 0..n {
                            if outputs[w].is_none() && !given_up[w] {
                                on_failure(
                                    w,
                                    WorkerFailure::Hung { worker: w },
                                    &mut retries,
                                    &mut given_up,
                                    &mut failures,
                                    &mut outstanding,
                                );
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // Unreachable while the supervisor holds `tx`, but
                        // never hang on it: fail what is left.
                        for w in 0..n {
                            if outputs[w].is_none() && !given_up[w] {
                                given_up[w] = true;
                                outstanding -= 1;
                                failures.push(WorkerFailure::Panicked { worker: w });
                                release_barrier(w);
                            }
                        }
                    }
                }
            }
            if failures.is_empty() {
                let collected: Vec<CachedRoundOutput> = outputs.into_iter().flatten().collect();
                if collected.len() == n {
                    Ok(collected)
                } else {
                    Err(TrainerError::RoundFailed { epoch, failures: Vec::new() })
                }
            } else {
                Err(TrainerError::RoundFailed { epoch, failures })
            }
        })
    }

    /// A rollback snapshot of every shard store, in shard order.
    fn snapshot_stores(&self) -> Vec<StoreSnapshot> {
        self.shards.iter().map(|rt| (rt.ps.dump_rows(), rt.ps.dump_adagrad())).collect()
    }

    /// Runs the configured rounds over the wire and reports exactly like
    /// the in-process trainer. Recovers killed / hung / disconnected
    /// workers *and* killed server shards, skips or rolls back divergent
    /// updates when the guard is enabled, and journals every
    /// [`LoopbackConfig::checkpoint_every`] rounds.
    pub fn train(&mut self, ds: &MdrDataset) -> Result<DistributedReport, TrainerError> {
        let cfg = self.cfg.train;
        if cfg.kernel_threads > 0 {
            pool::set_threads(cfg.kernel_threads);
        }
        let n_sh = self.map.n_shards();
        let start_epoch = self.resume_base.start_epoch;
        let base_traffic = self.resume_base.traffic;
        let base_guard = (self.resume_base.guard_trips, self.resume_base.guard_rollbacks);
        let mut combined = self.resume_base.cache;
        let mut max_staleness = self.resume_base.max_staleness;
        let mut round_losses = self.resume_base.round_losses.clone();
        // The networked protocol is always synchronous (the driver is the
        // only writer), so the guard is active whenever it is enabled.
        let guard_active = cfg.guard.enabled;
        let mut guard = GuardRail::new(cfg.guard);
        let mut last_good: Option<Vec<StoreSnapshot>> =
            if guard_active { Some(self.snapshot_stores()) } else { None };
        // Client id 0 is the driver; workers are 1..=n. The driver's
        // pushes carry the fault plan too, so retries exercise the
        // server's exactly-once path where it matters most. One driver
        // client per shard: each holds its own monotonic sequence space.
        let mut drivers: Vec<WorkerClient> =
            (0..n_sh).map(|s| self.make_client(0, 0xD0, s)).collect();
        let tracer = self.cfg.tracer.clone();
        // The continual publisher: one per run, so its fault schedule and
        // counters span every round. Faults come from the same plan as the
        // wire faults but consume no RNG draws — scheduling a publisher
        // fault never shifts the wire fault stream.
        let publisher = match &self.cfg.publish {
            Some(hook) if hook.every > 0 => {
                let faults = self
                    .cfg
                    .fault
                    .as_ref()
                    .map(|p| PublisherFaults {
                        kill_at: p.kill_publish.clone(),
                        corrupt_at: p.corrupt_snapshot.clone(),
                    })
                    .unwrap_or_default();
                Some((hook.clone(), ContinualPublisher::new(&hook.dir, faults, &self.metrics)?))
            }
            _ => None,
        };
        for epoch in start_epoch..cfg.epochs {
            let round_span = {
                let mut span = maybe_span(&tracer, "round");
                if let Some(s) = &mut span {
                    s.attr("epoch", epoch as u64);
                }
                span
            };
            let round_ctx = round_span.as_ref().map(|s| s.ctx());
            let partitions = {
                let _span = maybe_child(&tracer, "round.partition", round_ctx);
                partition_domains(ds.n_domains(), cfg.seed, epoch, cfg.n_workers)
            };
            let kills: Vec<u32> =
                self.cfg.fault.as_ref().map(|p| p.shards_to_kill(epoch as u64)).unwrap_or_default();
            if !kills.is_empty() {
                for &s in &kills {
                    self.metrics.counter("rpc_faults_shard_kills_total").inc();
                    if let Some(server) = self.shards[s as usize].server.take() {
                        server.kill();
                    }
                }
                // The doomed attempt: workers run against the dead shard
                // until their retries exhaust and the round fails. Nothing
                // is applied — gradients only reach the stores after a
                // successful round — so the discarded attempt leaves every
                // parameter untouched.
                let _ = self.run_round(ds, epoch, &partitions, None);
                for &s in &kills {
                    self.restart_shard(s as usize)?;
                    // The dead server's address died with it: rebuild this
                    // shard's driver client against the restarted one (a
                    // fresh sequence space against a fresh dedup map).
                    drivers[s as usize] = self.make_client(0, 0xD0, s as usize);
                }
            }
            let outputs = {
                let workers_span = maybe_child(&tracer, "round.workers", round_ctx);
                let workers_ctx = workers_span.as_ref().map(|s| s.ctx());
                self.run_round(ds, epoch, &partitions, workers_ctx)?
            };
            let apply_span = maybe_child(&tracer, "round.apply", round_ctx);
            for driver in &mut drivers {
                driver.set_trace_parent(apply_span.as_ref().map(|s| s.ctx()));
            }
            let mut loss_sum = 0.0f64;
            let mut n_examples = 0u64;
            let mut round_tripped = false;
            let mut pending: Vec<Vec<Request>> = (0..n_sh).map(|_| Vec::new()).collect();
            for out in outputs {
                combined.hits += out.cache.hits;
                combined.misses += out.cache.misses;
                max_staleness = max_staleness.max(out.staleness.max);
                if guard_active {
                    let worker_loss = if out.n_examples == 0 {
                        0.0
                    } else {
                        out.loss_sum / out.n_examples as f64
                    };
                    match guard.check(worker_loss, outer_grad_norm(&out.grads)).0 {
                        GuardVerdict::Accept => {}
                        GuardVerdict::Skip => {
                            round_tripped = true;
                            continue;
                        }
                        GuardVerdict::Rollback => {
                            // Rewind values and accumulators to the last
                            // clean boundary, discarding whatever this
                            // round already applied. Direct store access:
                            // the driver owns the apply phase, so there is
                            // no concurrent writer to race.
                            round_tripped = true;
                            if let Some(snaps) = &last_good {
                                for (rt, (rows, acc)) in self.shards.iter().zip(snaps) {
                                    rt.ps.restore_state(rows, acc);
                                }
                            }
                            continue;
                        }
                    }
                }
                loss_sum += out.loss_sum;
                n_examples += out.n_examples;
                // Single writer, worker order, keys pre-sorted: the same
                // total order the in-process synchronous driver applies.
                // Each shard receives its key-sorted sub-sequence — Adagrad
                // updates on distinct keys commute, so per-shard order is
                // all that bit-identity needs.
                let shard_reqs = sharded_push_requests(&out.grads, cfg.outer_lr, &self.map);
                if guard_active {
                    // The guard interleaves verdicts with application (a
                    // rollback rewinds the store to the round boundary but
                    // never the traffic counters), so each accepted
                    // worker's update must hit the stores before the next
                    // verdict — flush immediately rather than batching
                    // across workers.
                    flush_sharded(&mut drivers, shard_reqs)?;
                } else {
                    for (s, reqs) in shard_reqs.into_iter().enumerate() {
                        pending[s].extend(reqs);
                    }
                }
            }
            // No guard: every accepted worker's chunks ride one pipelined
            // window per shard, all shards concurrently. Same requests,
            // same per-shard order, same sequence numbers as per-worker
            // flushing — only the wire scheduling differs.
            flush_sharded(&mut drivers, std::mem::take(&mut pending))?;
            drop(apply_span);
            round_losses.push(if n_examples == 0 { 0.0 } else { loss_sum / n_examples as f64 });
            if guard_active && !round_tripped {
                last_good = Some(self.snapshot_stores());
            }
            let rounds_done = epoch + 1;
            if self.cfg.checkpoint_every > 0 && rounds_done % self.cfg.checkpoint_every == 0 {
                let _span = maybe_child(&tracer, "round.journal", round_ctx);
                if n_sh == 1 {
                    self.write_journal(
                        rounds_done as u64,
                        combined,
                        max_staleness,
                        &round_losses,
                        &guard,
                    )?;
                } else {
                    self.commit_sharded_round(
                        rounds_done as u64,
                        combined,
                        max_staleness,
                        &round_losses,
                        &guard,
                    )?;
                }
            }
            if let Some((hook, publisher)) = &publisher {
                if rounds_done % hook.every == 0 {
                    let mut span = maybe_child(&tracer, "publish.build", round_ctx);
                    let round = rounds_done as u64;
                    // Reads only: the merged view is a fresh store, so
                    // encoding can never perturb training state.
                    let merged = self.merged_store();
                    let bytes = (hook.encode)(round, &merged).map_err(TrainerError::Driver)?;
                    if let Some(s) = &mut span {
                        s.attr("round", round);
                        s.attr("bytes", bytes.len() as u64);
                    }
                    match publisher.commit(round, &bytes)? {
                        PublishOutcome::Committed(path) => (hook.on_commit)(round, &path),
                        // A killed publisher left a half-written staging
                        // file and offered nothing; the next scheduled
                        // round is the "restart".
                        PublishOutcome::Killed(_) => {}
                    }
                }
            }
        }
        let mut traffic = (0u64, 0u64, 0u64, 0u64);
        for rt in &self.shards {
            let (p, q, bp, bs) = rt.ps.traffic().snapshot();
            traffic.0 += p;
            traffic.1 += q;
            traffic.2 += bp;
            traffic.3 += bs;
        }
        let mean_auc = if n_sh == 1 {
            self.shards[0].ps.export_kv_gauges(&self.metrics);
            let _span = maybe_span(&tracer, "round.evaluate");
            evaluate_server(&self.shards[0].ps, ds, Split::Test)
        } else {
            let merged = self.merged_store();
            merged.export_kv_gauges(&self.metrics);
            for (s, rt) in self.shards.iter().enumerate() {
                rt.ps.export_kv_gauges_for_shard(&self.metrics, s);
            }
            let _span = maybe_span(&tracer, "round.evaluate");
            evaluate_server(&merged, ds, Split::Test)
        };
        Ok(DistributedReport {
            mean_auc,
            pulls: base_traffic.0 + traffic.0,
            pushes: base_traffic.1 + traffic.1,
            total_bytes: base_traffic.2 + base_traffic.3 + traffic.2 + traffic.3,
            cache: combined,
            max_staleness,
            round_losses,
            guard_trips: base_guard.0 + guard.trips(),
            guard_rollbacks: base_guard.1 + guard.rollbacks(),
        })
    }

    /// Writes the round-boundary checkpoint (over RPC, so the server-side
    /// path is exercised) and then the journal that commits it — the
    /// single-server boundary protocol.
    fn write_journal(
        &self,
        rounds_done: u64,
        cache: CacheStats,
        max_staleness: u64,
        round_losses: &[f64],
        guard: &GuardRail,
    ) -> Result<(), TrainerError> {
        let Some(dir) = &self.cfg.checkpoint_dir else {
            return Err(TrainerError::Config("journaling requires a checkpoint directory".into()));
        };
        let ckpt_path = self.checkpoint(rounds_done)?;
        let checkpoint_file = file_name_of(&ckpt_path);
        let base = &self.resume_base;
        let (pulls, pushes, bp, bs) = self.shards[0].ps.traffic().snapshot();
        let journal = RoundJournal {
            rounds_done,
            checkpoint_file,
            cache,
            max_staleness,
            traffic: (
                base.traffic.0 + pulls,
                base.traffic.1 + pushes,
                base.traffic.2 + bp,
                base.traffic.3 + bs,
            ),
            guard_trips: base.guard_trips + guard.trips(),
            guard_rollbacks: base.guard_rollbacks + guard.rollbacks(),
            round_losses: round_losses.to_vec(),
            dim: self.cfg.train.dim as u32,
            adagrad: self.shards[0].ps.dump_adagrad(),
        };
        journal
            .write_to_dir(dir)
            .map_err(|e| TrainerError::Driver(format!("journal write: {e}")))?;
        self.metrics.counter("rpc_journal_writes_total").inc();
        Ok(())
    }

    /// The sharded round boundary: every shard's checkpoint RPC and
    /// journal write run shard-parallel on scoped threads, then one
    /// [`ShardManifest`] carrying each file's digest is written at the
    /// top level. The manifest rename is the *only* commit point — a crash
    /// at any earlier moment leaves the previous boundary committed.
    fn commit_sharded_round(
        &self,
        rounds_done: u64,
        cache: CacheStats,
        max_staleness: u64,
        round_losses: &[f64],
        guard: &GuardRail,
    ) -> Result<(), TrainerError> {
        let Some(dir) = &self.cfg.checkpoint_dir else {
            return Err(TrainerError::Config("journaling requires a checkpoint directory".into()));
        };
        let base = &self.resume_base;
        let guard_trips = base.guard_trips + guard.trips();
        let guard_rollbacks = base.guard_rollbacks + guard.rollbacks();
        let results: Vec<Result<ShardFiles, TrainerError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(s, rt)| {
                    scope.spawn(move || -> Result<ShardFiles, TrainerError> {
                        let ckpt_path =
                            self.make_client(u32::MAX, 0xCC, s).checkpoint(rounds_done).map_err(
                                |e| TrainerError::Driver(format!("shard {s} checkpoint rpc: {e}")),
                            )?;
                        let checkpoint_file = file_name_of(&ckpt_path);
                        // Each shard journals its own adagrad rows and its
                        // own store's traffic; the run-level aggregates
                        // (losses, cache, guard) are duplicated into every
                        // journal so any one shard carries the metadata.
                        let journal = RoundJournal {
                            rounds_done,
                            checkpoint_file: checkpoint_file.clone(),
                            cache,
                            max_staleness,
                            traffic: rt.ps.traffic().snapshot(),
                            guard_trips,
                            guard_rollbacks,
                            round_losses: round_losses.to_vec(),
                            dim: self.cfg.train.dim as u32,
                            adagrad: rt.ps.dump_adagrad(),
                        };
                        journal.write_to_dir(&shard_dir(dir, s)).map_err(|e| {
                            TrainerError::Driver(format!("shard {s} journal write: {e}"))
                        })?;
                        let digest = |rel: &str| -> Result<u64, TrainerError> {
                            let bytes = std::fs::read(dir.join(rel)).map_err(|e| {
                                TrainerError::Driver(format!("digest of {rel}: {e}"))
                            })?;
                            Ok(Checksum::of(&bytes))
                        };
                        let checkpoint = format!("shard-{s}/{checkpoint_file}");
                        let journal_rel = format!("shard-{s}/{}", journal.file_name());
                        Ok(ShardFiles {
                            checkpoint_fnv: digest(&checkpoint)?,
                            checkpoint,
                            journal_fnv: digest(&journal_rel)?,
                            journal: journal_rel,
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(TrainerError::Driver("shard commit thread panicked".into()))
                    })
                })
                .collect()
        });
        let shards: Vec<ShardFiles> = results.into_iter().collect::<Result<_, _>>()?;
        let manifest = ShardManifest { rounds_done, map_version: self.map.version(), shards };
        manifest
            .write_to_dir(dir)
            .map_err(|e| TrainerError::Driver(format!("manifest write: {e}")))?;
        self.metrics.counter("rpc_journal_writes_total").inc();
        self.metrics.counter("rpc_manifest_writes_total").inc();
        Ok(())
    }

    /// Brings a killed shard back: a fresh store is rebuilt from the last
    /// *committed* manifest's files for that shard (checkpoint rows,
    /// journal accumulators and traffic — honest disk-based recovery, no
    /// in-memory shortcuts), and a fresh server is bound on a new port.
    fn restart_shard(&mut self, s: usize) -> Result<(), TrainerError> {
        let n = self.map.n_shards();
        let dir = self.cfg.checkpoint_dir.clone().ok_or_else(|| {
            TrainerError::Config("shard recovery requires a checkpoint directory".into())
        })?;
        let (path, manifest) = latest_manifest(&dir, None)
            .map_err(|e| TrainerError::Resume(format!("restart discovery: {e}")))?
            .ok_or_else(|| {
                TrainerError::Resume(format!(
                    "no committed manifest in {} to restart shard {s} from",
                    dir.display()
                ))
            })?;
        let ps = Arc::new(ParameterServer::new(self.cfg.train.n_shards, self.cfg.train.dim));
        if manifest.n_shards() == n {
            let files = &manifest.shards[s];
            let loaded = checkpoint::load_from_path(&dir.join(&files.checkpoint), 1)
                .map_err(|e| TrainerError::Resume(format!("{}: {e}", files.checkpoint)))?;
            let journal = RoundJournal::read(&dir.join(&files.journal))
                .map_err(|e| TrainerError::Resume(format!("{}: {e}", files.journal)))?;
            ps.restore_state(&loaded.dump_rows(), &journal.adagrad);
            ps.traffic().restore(journal.traffic);
        } else {
            // Committed under a different topology (a rehash resumed this
            // run and no new-topology boundary has committed yet): rebuild
            // the shard's slice by re-routing the merged state. The dead
            // store's traffic share is unknowable under the old topology
            // and restarts at zero.
            let state = load_manifest_state(&dir, &manifest)
                .map_err(|e| TrainerError::Resume(format!("{}: {e}", path.display())))?;
            let rows: Vec<_> =
                state.rows.into_iter().filter(|(k, _)| self.map.owner(*k) == s).collect();
            let accs: Vec<_> =
                state.adagrad.into_iter().filter(|(k, _)| self.map.owner(*k) == s).collect();
            ps.restore_state(&rows, &accs);
        }
        let server = PsServer::bind_shard(
            "127.0.0.1:0",
            Arc::clone(&ps),
            self.cfg.train.dim,
            Arc::clone(&self.metrics),
            Some(shard_dir(&dir, s)),
            self.cfg.tracer.clone(),
            Some(s),
        )?;
        let addr = server.addr();
        self.shards[s] = ShardRt { ps, server: Some(server), addr };
        self.metrics.counter("rpc_shard_restarts_total").inc();
        Ok(())
    }

    /// Writes a server-side checkpoint via the `Checkpoint` RPC (shard 0
    /// of a sharded run — boundary commits go through
    /// `commit_sharded_round` instead) and returns its path. Requires
    /// [`LoopbackConfig::checkpoint_dir`].
    pub fn checkpoint(&self, round: u64) -> Result<String, TrainerError> {
        self.make_client(u32::MAX, 0xCC, 0)
            .checkpoint(round)
            .map_err(|e| TrainerError::Driver(format!("checkpoint rpc: {e}")))
    }

    /// Gracefully drains every shard's server: `Shutdown` RPC, then joins
    /// the accept loop and every connection thread. A failed drain request
    /// is non-fatal — the drain flag is set directly instead (counted as
    /// `rpc_drain_fallback_total`), so a dead wire can never wedge the
    /// join. Idempotent: a second call is a no-op.
    pub fn shutdown(&mut self) {
        for s in 0..self.shards.len() {
            let Some(server) = self.shards[s].server.take() else { continue };
            // The drain request itself must not be fault-injected away.
            let mut client = WorkerClient::new(
                self.shards[s].addr,
                u32::MAX - 1,
                self.cfg.retry,
                None,
                Arc::clone(&self.metrics),
            );
            if client.shutdown().is_err() {
                self.metrics.counter("rpc_drain_fallback_total").inc();
                server.begin_drain();
            }
            drop(client);
            server.join();
        }
    }
}

/// The file-name component of a checkpoint path the server returned.
fn file_name_of(path: &str) -> String {
    Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .map(str::to_owned)
        .unwrap_or_else(|| path.to_owned())
}

/// Packs one worker's drained outer gradients into `PushMany` requests,
/// one per [`WIRE_BATCH_KEYS`] chunk, preserving the pre-sorted key order.
fn push_many_requests(grads: &[(ParamKey, Vec<f32>)], lr: f32) -> Vec<Request> {
    grads
        .chunks(WIRE_BATCH_KEYS)
        .map(|chunk| {
            let mut keys = Vec::with_capacity(chunk.len());
            let mut flat = Vec::new();
            for (key, delta) in chunk {
                keys.push(*key);
                flat.extend_from_slice(delta);
            }
            Request::PushMany { lr, keys, grads: flat }
        })
        .collect()
}

/// Partitions one worker's key-sorted gradients over the shard map and
/// packs each shard's (still key-sorted) sub-sequence into `PushMany`
/// chunks. With one shard this is exactly [`push_many_requests`].
fn sharded_push_requests(
    grads: &[(ParamKey, Vec<f32>)],
    lr: f32,
    map: &ShardMap,
) -> Vec<Vec<Request>> {
    if map.n_shards() == 1 {
        return vec![push_many_requests(grads, lr)];
    }
    let keys: Vec<ParamKey> = grads.iter().map(|(k, _)| *k).collect();
    map.partition_indices(&keys)
        .into_iter()
        .map(|idxs| {
            idxs.chunks(WIRE_BATCH_KEYS)
                .map(|chunk| {
                    let mut keys = Vec::with_capacity(chunk.len());
                    let mut flat = Vec::new();
                    for &i in chunk {
                        keys.push(grads[i].0);
                        flat.extend_from_slice(&grads[i].1);
                    }
                    Request::PushMany { lr, keys, grads: flat }
                })
                .collect()
        })
        .collect()
}

/// Sends each shard's push batch through its own pipelined window — all
/// shards concurrently when more than one has work — and fails the round
/// on the first request that exhausts its retries (first shard in shard
/// order wins, so the error is deterministic).
fn flush_sharded(
    drivers: &mut [WorkerClient],
    mut reqs: Vec<Vec<Request>>,
) -> Result<(), TrainerError> {
    let push_err =
        |e: crate::client::RpcError| TrainerError::Driver(format!("gradient push batch: {e}"));
    let live = reqs.iter().filter(|r| !r.is_empty()).count();
    if live == 0 {
        return Ok(());
    }
    if live == 1 {
        for (driver, shard_reqs) in drivers.iter_mut().zip(reqs) {
            if !shard_reqs.is_empty() {
                driver.call_many(shard_reqs).map_err(push_err)?;
            }
        }
        return Ok(());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = drivers
            .iter_mut()
            .zip(reqs.drain(..))
            .enumerate()
            .filter(|(_, (_, r))| !r.is_empty())
            .map(|(s, (driver, shard_reqs))| {
                (s, scope.spawn(move || driver.call_many(shard_reqs).map(|_| ())))
            })
            .collect();
        let mut first_err: Option<TrainerError> = None;
        for (_, h) in handles {
            let joined = match h.join() {
                Ok(r) => r.map_err(push_err),
                Err(_) => Err(TrainerError::Driver("shard push thread panicked".into())),
            };
            if let Err(e) = joined {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    })
}

/// Restores a resumed run's store and aggregates from the newest valid
/// journal in `dir`: parameter rows from the journal's checkpoint file,
/// Adagrad accumulators and report aggregates from the journal itself.
fn load_resume_state(
    ps: &ParameterServer,
    dir: &Path,
    train: &DistributedConfig,
) -> Result<ResumeBase, TrainerError> {
    let (journal_path, journal) = latest_journal(dir, None)
        .map_err(|e| TrainerError::Resume(format!("journal discovery: {e}")))?
        .ok_or_else(|| TrainerError::Resume(format!("no valid journal in {}", dir.display())))?;
    if journal.dim as usize != train.dim {
        return Err(TrainerError::Resume(format!(
            "journal {} has dim {}, config wants {}",
            journal_path.display(),
            journal.dim,
            train.dim
        )));
    }
    let ckpt_path = dir.join(&journal.checkpoint_file);
    let loaded = checkpoint::load_from_path(&ckpt_path, train.n_shards)
        .map_err(|e| TrainerError::Resume(format!("{}: {e}", ckpt_path.display())))?;
    ps.restore_state(&loaded.dump_rows(), &journal.adagrad);
    Ok(ResumeBase {
        start_epoch: journal.rounds_done as usize,
        cache: journal.cache,
        max_staleness: journal.max_staleness,
        round_losses: journal.round_losses,
        traffic: journal.traffic,
        guard_trips: journal.guard_trips,
        guard_rollbacks: journal.guard_rollbacks,
    })
}

/// Restores a resumed *sharded* run from the newest committed manifest in
/// `dir`: the per-shard checkpoints and journals are merged, the merged
/// key-sorted rows and accumulators are re-routed through a map for the
/// *new* shard count (the N→M rehash — the map generation is bumped when
/// the topology changed), and the dead run's summed wire traffic rides
/// shard 0's counters so the final report still reaches the global figure.
fn load_sharded_resume_state(
    stores: &[Arc<ParameterServer>],
    dir: &Path,
    train: &DistributedConfig,
) -> Result<(ShardMap, ResumeBase), TrainerError> {
    let n = stores.len();
    let (path, manifest) = latest_manifest(dir, None)
        .map_err(|e| TrainerError::Resume(format!("manifest discovery: {e}")))?
        .ok_or_else(|| {
            TrainerError::Resume(format!("no committed manifest in {}", dir.display()))
        })?;
    let state = load_manifest_state(dir, &manifest)
        .map_err(|e| TrainerError::Resume(format!("{}: {e}", path.display())))?;
    if state.meta.dim as usize != train.dim {
        return Err(TrainerError::Resume(format!(
            "manifest {} has dim {}, config wants {}",
            path.display(),
            state.meta.dim,
            train.dim
        )));
    }
    let map = if manifest.n_shards() == n {
        ShardMap::with_version(n, manifest.map_version)
    } else {
        ShardMap::with_version(n, manifest.map_version + 1)
    };
    let mut rows: Vec<Vec<(ParamKey, Vec<f32>)>> = vec![Vec::new(); n];
    for (key, value) in state.rows {
        rows[map.owner(key)].push((key, value));
    }
    let mut accs: Vec<Vec<(ParamKey, Vec<f32>)>> = vec![Vec::new(); n];
    for (key, acc) in state.adagrad {
        accs[map.owner(key)].push((key, acc));
    }
    for (s, store) in stores.iter().enumerate() {
        store.restore_state(&rows[s], &accs[s]);
    }
    stores[0].traffic().restore(state.traffic);
    let meta = &state.meta;
    Ok((
        map,
        ResumeBase {
            start_epoch: meta.rounds_done as usize,
            cache: meta.cache,
            max_staleness: meta.max_staleness,
            round_losses: meta.round_losses.clone(),
            traffic: (0, 0, 0, 0),
            guard_trips: meta.guard_trips,
            guard_rollbacks: meta.guard_rollbacks,
        },
    ))
}
